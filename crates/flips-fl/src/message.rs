//! The FL wire protocol, with exact byte accounting.
//!
//! The paper's headline cost metric is communication: rounds saved
//! translate directly into model-update bytes not sent. This module
//! defines the messages of a synchronization round with a compact
//! little-endian binary codec so byte counts are exact and stable.
//!
//! A round exchanges five message kinds:
//!
//! - [`WireMessage::SelectionNotice`] — aggregator → party: "you are in
//!   round `round` of job `job`" (and announces the job's negotiated
//!   model-payload codec);
//! - [`WireMessage::GlobalModel`] — aggregator → party: the round's
//!   global parameters;
//! - [`WireMessage::LocalUpdate`] — party → aggregator: the trained
//!   local update;
//! - [`WireMessage::Heartbeat`] — party → aggregator: liveness ack;
//! - [`WireMessage::Abort`] — either direction: abandon the round/job.
//!
//! Every message carries the `(job, round)` pair so a transport can
//! multiplex concurrent jobs and the coordinator can reject stale or
//! foreign traffic. Update statistics (`mean_loss`, `duration`) travel as
//! `f64` so an in-process round trip through the protocol is bit-exact.
//!
//! Model parameter payloads travel through the job's negotiated
//! [`ModelCodec`] (see [`crate::codec`]): [`WireMessage::encode`] /
//! [`WireMessage::decode`] are the raw-codec compatibility pair, while
//! the hot wire path uses [`WireMessage::encode_into`] (writing into a
//! caller-owned, reused scratch buffer — no allocation per message) and
//! [`WireMessage::decode_with`] (resolving the per-job payload codec).
//!
//! The byte-accounting helpers ([`WireMessage::wire_size`],
//! [`global_model_bytes`], …) report the **raw-codec canonical size**:
//! the paper's communication metric stays codec-independent (and seeded
//! histories stay bit-identical whichever codec the wire negotiates);
//! the actually-transmitted bytes per codec are counted by the driver
//! ([`crate::DriverStats`]).
//!
//! (Only the `serde` *traits* are permitted in this workspace — no format
//! crate — so the codec is hand-rolled on `bytes`.)

use crate::codec::{CodecMap, ModelCodec, PayloadCodec, Role};
use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Protocol magic, guards against decoding foreign buffers.
const MAGIC: u32 = 0xF11F_5002;

const TAG_GLOBAL: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_NOTICE: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_PARTIAL: u8 = 6;

/// Fixed bytes of one [`PartialEntry`] on the wire (party, num_samples,
/// mean_loss, duration, sketch length prefix), before the sketch floats.
const PARTIAL_ENTRY_HEAD: usize = 8 + 8 + 8 + 8 + 4;

/// magic + tag.
const HEADER: usize = 4 + 1;

/// Codec tag + parameter count prefixing every params block.
const PARAMS_HEAD: usize = 1 + 8;

/// A message on the aggregator ↔ party wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// Aggregator → party: selection announcement for a round.
    SelectionNotice {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// The selected party.
        party: u64,
        /// The model-payload codec this party's link speaks (negotiated
        /// once per link; a later notice carrying a different codec is
        /// refused). Usually the job-wide codec, but a per-link override
        /// on the sender rewrites it (see
        /// [`crate::MultiJobDriver::set_link_codec`]).
        codec: ModelCodec,
    },
    /// Aggregator → party: the round's global model.
    GlobalModel {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Flat global-model parameters, shared — one broadcast round
        /// clones the `Arc`, never the floats.
        params: Arc<[f32]>,
    },
    /// Party → aggregator: a trained local update.
    LocalUpdate {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Sender party.
        party: u64,
        /// Local sample count `n_i` (the FedAvg weight).
        num_samples: u64,
        /// Mean local training loss (Oort's utility signal).
        mean_loss: f64,
        /// Simulated training duration, seconds.
        duration: f64,
        /// Flat trained parameters `x_i^(r,τ)`.
        params: Vec<f32>,
    },
    /// Party → aggregator: liveness ack for an open round.
    Heartbeat {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Sender party.
        party: u64,
    },
    /// Inner node → aggregator: a pre-folded partial aggregate covering
    /// several parties' local updates (the aggregation-tree uplink).
    ///
    /// The parameter payload is the **exact fixed-point weighted sum**
    /// of the covered updates ([`crate::aggtree::ExactWeightedSum`] raw
    /// limbs), so the coordinator can merge partials in any arrival
    /// order or grouping and recover the bit-exact flat fold. Per-party
    /// metadata (FedAvg weight, loss, duration, selector-feedback
    /// sketch) travels per entry; only the trained parameters are
    /// pre-folded away.
    ///
    /// Partials always travel under the raw payload codec: the limb
    /// payload is already a dense integer block, and delta/top-k model
    /// codecs are keyed to f32 parameter vectors.
    PartialUpdate {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Sum of the covered entries' `num_samples` (the fold's total
        /// FedAvg weight).
        total_weight: u64,
        /// Per-party metadata for every update folded into `limbs`.
        entries: Vec<PartialEntry>,
        /// Model dimension (parameters per update).
        dim: u32,
        /// `4 × dim` little-endian `u64` limbs — one signed 256-bit
        /// fixed-point accumulator per parameter, in parameter order
        /// (see [`crate::aggtree::ExactWeightedSum::raw_limbs`]).
        limbs: Vec<u64>,
    },
    /// Either direction: abandon the round (aggregator → party) or
    /// withdraw from it (party → aggregator).
    Abort {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// The party the abort concerns (sender when party-originated,
        /// addressee otherwise).
        party: u64,
        /// Human-readable cause.
        reason: String,
    },
}

/// One party's contribution inside a [`WireMessage::PartialUpdate`]:
/// everything the coordinator needs from that party's local update
/// *except* the trained parameters, which the inner node has already
/// folded into the partial's exact weighted sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialEntry {
    /// The covered party.
    pub party: u64,
    /// That party's local sample count `n_i` (its FedAvg weight inside
    /// the fold).
    pub num_samples: u64,
    /// Mean local training loss (Oort's utility signal).
    pub mean_loss: f64,
    /// Simulated training duration, seconds.
    pub duration: f64,
    /// The selector-feedback sketch of this party's update delta,
    /// computed by the inner node against the round's dispatched global
    /// (the coordinator can no longer derive it once parameters are
    /// folded away).
    pub sketch: Vec<f32>,
}

impl WireMessage {
    /// The job identifier every message carries.
    pub fn job(&self) -> u64 {
        match self {
            WireMessage::SelectionNotice { job, .. }
            | WireMessage::GlobalModel { job, .. }
            | WireMessage::LocalUpdate { job, .. }
            | WireMessage::PartialUpdate { job, .. }
            | WireMessage::Heartbeat { job, .. }
            | WireMessage::Abort { job, .. } => *job,
        }
    }

    /// The round number every message carries.
    pub fn round(&self) -> u64 {
        match self {
            WireMessage::SelectionNotice { round, .. }
            | WireMessage::GlobalModel { round, .. }
            | WireMessage::LocalUpdate { round, .. }
            | WireMessage::PartialUpdate { round, .. }
            | WireMessage::Heartbeat { round, .. }
            | WireMessage::Abort { round, .. } => *round,
        }
    }

    /// Encodes to the binary wire format with the raw payload codec
    /// (compatibility convenience; the wire path uses
    /// [`WireMessage::encode_into`] with the job's negotiated codec and
    /// a reused scratch buffer).
    pub fn encode(&self) -> Bytes {
        let mut codec = PayloadCodec::new(ModelCodec::Raw, Role::Sender);
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_into(&mut codec, &mut buf);
        buf.freeze()
    }

    /// Appends the binary wire format to `buf`, encoding model payloads
    /// through `codec`. The buffer is reserved ahead, so with a reused
    /// (grow-only) scratch the steady-state encode performs **no heap
    /// allocation** — the symmetric fix to the decode path's
    /// allocation-free scalar reads.
    pub fn encode_into(&self, codec: &mut PayloadCodec, buf: &mut BytesMut) {
        buf.reserve(self.max_encoded_size(codec.codec()));
        buf.put_u32_le(MAGIC);
        match self {
            WireMessage::SelectionNotice { job, round, party, codec: announced } => {
                buf.put_u8(TAG_NOTICE);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                announced.encode_announcement(buf);
            }
            WireMessage::GlobalModel { job, round, params } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                codec.encode_global(*round, params, buf);
            }
            WireMessage::LocalUpdate {
                job,
                round,
                party,
                num_samples,
                mean_loss,
                duration,
                params,
            } => {
                buf.put_u8(TAG_UPDATE);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                buf.put_u64_le(*num_samples);
                buf.put_f64_le(*mean_loss);
                buf.put_f64_le(*duration);
                codec.encode_update(params, buf);
            }
            WireMessage::PartialUpdate { job, round, total_weight, entries, dim, limbs } => {
                debug_assert_eq!(limbs.len(), *dim as usize * 4, "limb block / dim mismatch");
                buf.put_u8(TAG_PARTIAL);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*total_weight);
                buf.put_u32_le(entries.len() as u32);
                for e in entries {
                    buf.put_u64_le(e.party);
                    buf.put_u64_le(e.num_samples);
                    buf.put_f64_le(e.mean_loss);
                    buf.put_f64_le(e.duration);
                    buf.put_u32_le(e.sketch.len() as u32);
                    for x in &e.sketch {
                        buf.put_f32_le(*x);
                    }
                }
                // Raw always: the limb block is already a dense integer
                // payload, not an f32 vector a model codec understands.
                buf.put_u32_le(*dim);
                for limb in limbs {
                    buf.put_u64_le(*limb);
                }
            }
            WireMessage::Heartbeat { job, round, party } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
            }
            WireMessage::Abort { job, round, party, reason } => {
                buf.put_u8(TAG_ABORT);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                buf.put_u32_le(reason.len() as u32);
                buf.put_slice(reason.as_bytes());
            }
        }
    }

    /// Decodes from the binary wire format, resolving model payloads
    /// with the raw codec (compatibility convenience for single-job
    /// raw-wire callers; the multiplexed drivers use
    /// [`WireMessage::decode_with`]).
    ///
    /// Decoding never panics: bad magic, unknown tags, truncation,
    /// overlong length prefixes and invalid UTF-8 all surface as
    /// [`FlError::Codec`]; a non-raw payload codec tag surfaces as
    /// [`FlError::CodecMismatch`].
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Codec`] / [`FlError::CodecMismatch`] on any
    /// malformed buffer.
    pub fn decode(buf: Bytes) -> Result<Self, FlError> {
        let mut map = CodecMap::new(Role::Receiver);
        Self::decode_with(buf, &mut map)
    }

    /// Decodes from the binary wire format, resolving each model payload
    /// through the per-job codec state in `codecs` (jobs not registered
    /// there decode with the raw fallback).
    ///
    /// # Errors
    ///
    /// [`FlError::Codec`] on any malformed buffer;
    /// [`FlError::CodecMismatch`] when a model payload's codec tag is
    /// corrupt or disagrees with the job's negotiated codec. Neither
    /// touches any round state — drivers count and drop.
    pub fn decode_with(mut buf: Bytes, codecs: &mut CodecMap) -> Result<Self, FlError> {
        let need = |buf: &Bytes, n: usize| -> Result<(), FlError> {
            if buf.remaining() < n {
                Err(FlError::Codec(format!("truncated: need {n}, have {}", buf.remaining())))
            } else {
                Ok(())
            }
        };
        // A length prefix is only plausible if that many payload bytes
        // are actually present — checked with overflow-safe arithmetic so
        // a hostile prefix cannot trigger a huge allocation or a panic.
        let need_elems = |buf: &Bytes, len: u64, elem: usize| -> Result<usize, FlError> {
            let len =
                usize::try_from(len).ok().and_then(|l| l.checked_mul(elem).map(|bytes| (l, bytes)));
            match len {
                Some((l, bytes)) if buf.remaining() >= bytes => Ok(l),
                _ => Err(FlError::Codec("length prefix exceeds buffer".into())),
            }
        };
        need(&buf, HEADER)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(FlError::Codec(format!("bad magic {magic:#x}")));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_NOTICE => {
                need(&buf, 8 * 3 + 1)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let codec = ModelCodec::decode_announcement(&mut buf).map_err(|e| {
                    FlError::CodecMismatch(format!(
                        "selection notice carries a corrupt codec announcement: {e}"
                    ))
                })?;
                Ok(WireMessage::SelectionNotice { job, round, party, codec })
            }
            TAG_GLOBAL => {
                need(&buf, 8 * 2)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let params = codecs.for_job(job).decode_global(round, &mut buf)?;
                Ok(WireMessage::GlobalModel { job, round, params })
            }
            TAG_UPDATE => {
                need(&buf, 8 * 6)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let num_samples = buf.get_u64_le();
                let mean_loss = buf.get_f64_le();
                let duration = buf.get_f64_le();
                let params = codecs.for_job(job).decode_update(&mut buf)?;
                Ok(WireMessage::LocalUpdate {
                    job,
                    round,
                    party,
                    num_samples,
                    mean_loss,
                    duration,
                    params,
                })
            }
            TAG_PARTIAL => {
                need(&buf, 8 * 3 + 4)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let total_weight = buf.get_u64_le();
                let raw_count = u64::from(buf.get_u32_le());
                // Each entry occupies at least its fixed head, so a
                // hostile count cannot force a huge allocation.
                let count = need_elems(&buf, raw_count, PARTIAL_ENTRY_HEAD)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    need(&buf, PARTIAL_ENTRY_HEAD)?;
                    let party = buf.get_u64_le();
                    let num_samples = buf.get_u64_le();
                    let mean_loss = buf.get_f64_le();
                    let duration = buf.get_f64_le();
                    let raw_len = u64::from(buf.get_u32_le());
                    let len = need_elems(&buf, raw_len, 4)?;
                    let mut sketch = Vec::with_capacity(len);
                    for _ in 0..len {
                        sketch.push(buf.get_f32_le());
                    }
                    entries.push(PartialEntry { party, num_samples, mean_loss, duration, sketch });
                }
                need(&buf, 4)?;
                let dim = buf.get_u32_le();
                let num_limbs = need_elems(&buf, u64::from(dim), 4 * 8)?
                    .checked_mul(4)
                    .ok_or_else(|| FlError::Codec("limb count overflows".into()))?;
                let mut limbs = Vec::with_capacity(num_limbs);
                for _ in 0..num_limbs {
                    limbs.push(buf.get_u64_le());
                }
                Ok(WireMessage::PartialUpdate { job, round, total_weight, entries, dim, limbs })
            }
            TAG_HEARTBEAT => {
                need(&buf, 8 * 3)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                Ok(WireMessage::Heartbeat { job, round, party })
            }
            TAG_ABORT => {
                need(&buf, 8 * 3 + 4)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let raw_len = u64::from(buf.get_u32_le());
                let len = need_elems(&buf, raw_len, 1)?;
                let reason = String::from_utf8(buf.copy_take(len))
                    .map_err(|_| FlError::Codec("abort reason is not UTF-8".into()))?;
                Ok(WireMessage::Abort { job, round, party, reason })
            }
            other => Err(FlError::Codec(format!("unknown tag {other}"))),
        }?;
        // A message is exactly one frame: trailing bytes mean the tag and
        // payload disagree (e.g. a corrupted tag re-parsing a longer
        // variant's prefix) and must not decode silently.
        if buf.remaining() != 0 {
            return Err(FlError::Codec(format!(
                "{} trailing bytes after message",
                buf.remaining()
            )));
        }
        Ok(msg)
    }

    /// Exact encoded size in bytes **under the raw payload codec** — the
    /// canonical byte-accounting size (codec-independent, so histories
    /// stay comparable across wire codecs). For the raw codec this is
    /// exactly `encode().len()`.
    pub fn wire_size(&self) -> usize {
        match self {
            // The announcement is part of the notice itself, so its
            // (codec-dependent) length is canonical, not a payload
            // encoding artifact: top-k notices carry 4 extra bytes for
            // `k`, every other codec exactly the tag byte.
            WireMessage::SelectionNotice { codec, .. } => {
                HEADER + 8 * 3 + codec.announcement_bytes()
            }
            WireMessage::GlobalModel { params, .. } => global_model_bytes(params.len()),
            WireMessage::LocalUpdate { params, .. } => local_update_bytes(params.len()),
            WireMessage::PartialUpdate { entries, limbs, .. } => {
                HEADER
                    + 8 * 3
                    + 4
                    + entries.iter().map(|e| PARTIAL_ENTRY_HEAD + e.sketch.len() * 4).sum::<usize>()
                    + 4
                    + limbs.len() * 8
            }
            WireMessage::Heartbeat { .. } => heartbeat_bytes(),
            WireMessage::Abort { reason, .. } => HEADER + 8 * 3 + 4 + reason.len(),
        }
    }

    /// Worst-case encoded size under `codec` (what [`Self::encode_into`]
    /// reserves ahead).
    fn max_encoded_size(&self, codec: ModelCodec) -> usize {
        match self {
            WireMessage::GlobalModel { params, .. } => {
                HEADER + 8 * 2 + codec.max_params_block_bytes(params.len())
            }
            WireMessage::LocalUpdate { params, .. } => {
                HEADER + 8 * 3 + 8 + 8 + 8 + codec.max_params_block_bytes(params.len())
            }
            other => other.wire_size(),
        }
    }
}

/// Frame destination of aggregator-bound (uplink) traffic.
///
/// Downlink frames carry the destination party id; party ids live in
/// `0..roster`, so the all-ones sentinel can never collide with one.
pub const AGGREGATOR_DEST: u64 = u64::MAX;

/// Bytes a frame adds in front of the encoded message (the destination).
pub const FRAME_HEADER: usize = 8;

/// Wraps an encoded message into a transport frame: an 8-byte
/// little-endian destination followed by the [`WireMessage::encode`]
/// bytes (raw payload codec). The destination is a party id on the
/// downlink and [`AGGREGATOR_DEST`] on the uplink; the *source* needs no
/// header field because every uplink message kind already carries its
/// sender.
pub fn frame(dest: u64, msg: &WireMessage) -> Bytes {
    let mut codec = PayloadCodec::new(ModelCodec::Raw, Role::Sender);
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + msg.wire_size());
    frame_into(dest, msg, &mut codec, &mut buf);
    buf.freeze()
}

/// Builds a transport frame into a caller-owned scratch buffer,
/// encoding model payloads through the job's `codec`. Clears `out`
/// first; the scratch is grow-only, so the steady-state frame path
/// allocates nothing.
pub fn frame_into(dest: u64, msg: &WireMessage, codec: &mut PayloadCodec, out: &mut BytesMut) {
    out.clear();
    out.reserve(FRAME_HEADER);
    out.put_u64_le(dest);
    msg.encode_into(codec, out);
}

/// Peeks the job id of a framed message without decoding it: every
/// message kind carries its job at the same fixed offset
/// (`dest ‖ magic ‖ tag ‖ job`). Returns `None` for frames too short to
/// hold one. Drivers use this to attribute an undecodable frame (e.g. a
/// codec mismatch) to the right counter — unknown job vs bad payload.
pub fn frame_job(frame: &Bytes) -> Option<u64> {
    frame_job_of(frame.as_slice())
}

/// Slice-level twin of [`frame_job`], for senders that hold the frame
/// as raw bytes (the sharded runtime's router peeks before routing).
pub fn frame_job_of(frame: &[u8]) -> Option<u64> {
    let job = frame.get(FRAME_HEADER + HEADER..FRAME_HEADER + HEADER + 8)?;
    Some(u64::from_le_bytes(job.try_into().expect("8 bytes")))
}

/// Peeks the claimed sender of a framed party-bearing message without
/// decoding it: selection notices, local updates, heartbeats and aborts
/// all carry their party at the same fixed offset
/// (`dest ‖ magic ‖ tag ‖ job ‖ round ‖ party`). Returns `None` for
/// global models (which carry no party) and for frames too short to
/// hold the field. The guard plane uses this to attribute an
/// *undecodable* frame (corrupt payload, codec mismatch) to the sender
/// its header claims — the claim is untrusted, which is exactly why it
/// feeds a circuit breaker rather than any round state.
pub fn frame_party_of(frame: &[u8]) -> Option<u64> {
    let tag = *frame.get(FRAME_HEADER + 4)?;
    if !matches!(tag, TAG_NOTICE | TAG_UPDATE | TAG_HEARTBEAT | TAG_ABORT) {
        return None;
    }
    let off = FRAME_HEADER + HEADER + 16;
    let party = frame.get(off..off + 8)?;
    Some(u64::from_le_bytes(party.try_into().expect("8 bytes")))
}

/// Peeks whether a framed message is a party's local update — the one
/// frame kind whose delivery order within a round is provably
/// irrelevant (accepted updates are re-sorted by party id at round
/// close). [`crate::chaos`] scopes its delay action to these frames:
/// reordering a *control* frame can push a heartbeat past its round's
/// eager close, which legitimately changes observed byte accounting.
pub fn frame_is_update(frame: &[u8]) -> bool {
    frame.get(FRAME_HEADER + 4) == Some(&TAG_UPDATE)
}

/// Peeks the destination of a transport frame (the first header field):
/// a party id on the downlink, [`AGGREGATOR_DEST`] on the uplink.
/// Returns `None` for frames too short to hold one.
pub fn frame_dest(frame: &[u8]) -> Option<u64> {
    let dest = frame.get(..FRAME_HEADER)?;
    Some(u64::from_le_bytes(dest.try_into().expect("8 bytes")))
}

/// Splits a transport frame into its destination and decoded message
/// (raw payload codec; the multiplexed drivers use [`deframe_with`]).
///
/// # Errors
///
/// Returns [`FlError::Codec`] on a frame too short for its header or on
/// any payload the message decoder rejects.
pub fn deframe(frame: Bytes) -> Result<(u64, WireMessage), FlError> {
    let mut map = CodecMap::new(Role::Receiver);
    deframe_with(frame, &mut map)
}

/// Splits a transport frame into its destination and decoded message,
/// resolving model payloads through the per-job codec state in `codecs`.
///
/// # Errors
///
/// As [`WireMessage::decode_with`], plus [`FlError::Codec`] on a frame
/// shorter than its header.
pub fn deframe_with(
    mut frame: Bytes,
    codecs: &mut CodecMap,
) -> Result<(u64, WireMessage), FlError> {
    if frame.remaining() < FRAME_HEADER {
        return Err(FlError::Codec(format!(
            "frame of {} bytes is shorter than its header",
            frame.remaining()
        )));
    }
    let dest = frame.get_u64_le();
    Ok((dest, WireMessage::decode_with(frame, codecs)?))
}

/// Wire size of one selection notice whose codec announcement is a bare
/// tag byte (every codec except [`ModelCodec::TopK`], whose notices add
/// a u32 `k` — use [`WireMessage::wire_size`] on a built notice for the
/// general answer).
pub fn selection_notice_bytes() -> usize {
    HEADER + 8 * 3 + 1
}

/// Raw-codec wire size of one global-model broadcast for a model of
/// `num_params` parameters (for communication accounting without
/// building messages).
pub fn global_model_bytes(num_params: usize) -> usize {
    HEADER + 8 * 2 + PARAMS_HEAD + num_params * 4
}

/// Raw-codec wire size of one local update for a model of `num_params`
/// parameters.
pub fn local_update_bytes(num_params: usize) -> usize {
    HEADER + 8 * 3 + 8 + 8 + 8 + PARAMS_HEAD + num_params * 4
}

/// Wire size of one heartbeat.
pub fn heartbeat_bytes() -> usize {
    HEADER + 8 * 3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> WireMessage {
        WireMessage::LocalUpdate {
            job: 99,
            round: 12,
            party: 7,
            num_samples: 250,
            mean_loss: 0.42,
            duration: 1.5,
            params: vec![1.0, -2.5, 3.25, 0.0],
        }
    }

    fn sample_partial() -> WireMessage {
        let mut sum = crate::aggtree::ExactWeightedSum::new(3);
        sum.fold(&[1.0, -2.0, 0.5], 10).unwrap();
        sum.fold(&[0.25, 4.0, -1.5], 30).unwrap();
        WireMessage::PartialUpdate {
            job: 99,
            round: 12,
            total_weight: sum.total_weight(),
            entries: vec![
                PartialEntry {
                    party: 3,
                    num_samples: 10,
                    mean_loss: 0.5,
                    duration: 1.0,
                    sketch: vec![0.125, -0.5],
                },
                PartialEntry {
                    party: 8,
                    num_samples: 30,
                    mean_loss: 0.25,
                    duration: 2.0,
                    sketch: Vec::new(),
                },
            ],
            dim: 3,
            limbs: sum.raw_limbs(),
        }
    }

    fn one_of_each() -> [WireMessage; 6] {
        [
            WireMessage::SelectionNotice {
                job: 1,
                round: 2,
                party: 3,
                codec: ModelCodec::DeltaLossless,
            },
            WireMessage::GlobalModel { job: 1, round: 2, params: vec![0.5; 10].into() },
            sample_update(),
            sample_partial(),
            WireMessage::Heartbeat { job: 1, round: 2, party: 3 },
            WireMessage::Abort { job: 1, round: 2, party: 3, reason: "deadline".into() },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in one_of_each() {
            assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        let mut msgs = one_of_each().to_vec();
        msgs.push(WireMessage::GlobalModel { job: 0, round: 9, params: Vec::new().into() });
        msgs.push(WireMessage::Abort { job: 0, round: 0, party: 0, reason: String::new() });
        for msg in msgs {
            assert_eq!(msg.encode().len(), msg.wire_size(), "{msg:?}");
        }
    }

    #[test]
    fn size_helpers_match_messages() {
        let msg = WireMessage::GlobalModel { job: 4, round: 0, params: vec![0.0; 17].into() };
        assert_eq!(global_model_bytes(17), msg.wire_size());
        assert_eq!(local_update_bytes(4), sample_update().wire_size());
        let msg =
            WireMessage::SelectionNotice { job: 1, round: 1, party: 1, codec: ModelCodec::Raw };
        assert_eq!(selection_notice_bytes(), msg.wire_size());
        let msg = WireMessage::Heartbeat { job: 1, round: 1, party: 1 };
        assert_eq!(heartbeat_bytes(), msg.wire_size());
    }

    #[test]
    fn notice_codec_survives_the_wire() {
        for codec in [
            ModelCodec::Raw,
            ModelCodec::DeltaLossless,
            ModelCodec::F16,
            ModelCodec::DeltaEntropy,
            ModelCodec::TopK { k: 64 },
        ] {
            let msg = WireMessage::SelectionNotice { job: 1, round: 0, party: 2, codec };
            assert_eq!(msg.encode().len(), msg.wire_size(), "{codec}");
            match WireMessage::decode(msg.encode()).unwrap() {
                WireMessage::SelectionNotice { codec: got, .. } => assert_eq!(got, codec),
                other => panic!("wrong variant {other:?}"),
            }
        }
        // Only top-k widens the notice: its `k` parameter travels.
        let base = WireMessage::SelectionNotice {
            job: 1,
            round: 0,
            party: 2,
            codec: ModelCodec::DeltaEntropy,
        };
        let topk = WireMessage::SelectionNotice {
            job: 1,
            round: 0,
            party: 2,
            codec: ModelCodec::TopK { k: 64 },
        };
        assert_eq!(base.wire_size(), selection_notice_bytes());
        assert_eq!(topk.wire_size(), selection_notice_bytes() + 4);
    }

    #[test]
    fn notice_with_corrupt_codec_tag_is_rejected() {
        let msg =
            WireMessage::SelectionNotice { job: 1, round: 0, party: 2, codec: ModelCodec::Raw };
        let mut bytes = msg.encode().to_vec();
        let n = bytes.len();
        bytes[n - 1] = 0x5A;
        assert!(matches!(WireMessage::decode(Bytes::from(bytes)), Err(FlError::CodecMismatch(_))));
    }

    #[test]
    fn non_raw_payload_needs_negotiated_context() {
        // A delta-encoded model frame cannot decode through the
        // raw-compatibility path — it must surface as a codec mismatch,
        // not as garbage parameters.
        let msg = WireMessage::GlobalModel { job: 7, round: 0, params: vec![1.0; 8].into() };
        let mut codec = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
        let mut buf = BytesMut::new();
        msg.encode_into(&mut codec, &mut buf);
        assert!(matches!(WireMessage::decode(buf.freeze()), Err(FlError::CodecMismatch(_))));
    }

    #[test]
    fn negotiated_delta_wire_round_trips_bit_exactly() {
        let mut tx = CodecMap::new(Role::Sender);
        let mut rx = CodecMap::new(Role::Receiver);
        tx.register(7, ModelCodec::DeltaLossless);
        rx.register(7, ModelCodec::DeltaLossless);
        let r0 = WireMessage::GlobalModel {
            job: 7,
            round: 0,
            params: vec![1.0, f32::NAN, -0.0, 3.5].into(),
        };
        let r1 = WireMessage::GlobalModel {
            job: 7,
            round: 1,
            params: vec![1.0625, f32::NAN, 0.0, 3.4375].into(),
        };
        for msg in [&r0, &r1] {
            let mut buf = BytesMut::new();
            frame_into(5, msg, tx.for_job(7), &mut buf);
            let (dest, decoded) = deframe_with(buf.freeze(), &mut rx).unwrap();
            assert_eq!(dest, 5);
            let (
                WireMessage::GlobalModel { params: want, .. },
                WireMessage::GlobalModel { params: got, .. },
            ) = (msg, &decoded)
            else {
                panic!("wrong variant {decoded:?}")
            };
            let want: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(want, got);
        }
    }

    #[test]
    fn job_and_round_accessors_cover_every_variant() {
        for msg in one_of_each() {
            assert_eq!(msg.job(), msg.clone().job());
            assert!(msg.round() <= 12);
        }
        assert_eq!(sample_update().job(), 99);
        assert_eq!(sample_update().round(), 12);
    }

    #[test]
    fn frame_party_peek_covers_party_bearing_variants() {
        for msg in one_of_each() {
            let framed = frame(1, &msg);
            let expected = match &msg {
                WireMessage::GlobalModel { .. } | WireMessage::PartialUpdate { .. } => None,
                WireMessage::SelectionNotice { party, .. }
                | WireMessage::LocalUpdate { party, .. }
                | WireMessage::Heartbeat { party, .. }
                | WireMessage::Abort { party, .. } => Some(*party),
            };
            assert_eq!(frame_party_of(framed.as_slice()), expected, "{msg:?}");
        }
        assert_eq!(frame_party_of(&[0u8; 5]), None, "too short for a tag");
        assert_eq!(frame_party_of(&[0u8; 20]), None, "unknown tag");
    }

    #[test]
    fn update_statistics_survive_exactly() {
        // f64 on the wire: the coordinator's aggregation sees bit-exact
        // loss/duration, so an in-process protocol round trip cannot
        // perturb the job history.
        let loss = 0.1f64 + 0.2;
        let duration = 1.0 / 3.0;
        let msg = WireMessage::LocalUpdate {
            job: 1,
            round: 1,
            party: 1,
            num_samples: 10,
            mean_loss: loss,
            duration,
            params: vec![],
        };
        match WireMessage::decode(msg.encode()).unwrap() {
            WireMessage::LocalUpdate { mean_loss, duration: d, .. } => {
                assert_eq!(mean_loss.to_bits(), loss.to_bits());
                assert_eq!(d.to_bits(), duration.to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn tag_corruption_cannot_reparse_payload_bearing_messages() {
        // The decoder rejects trailing bytes, so a flipped tag cannot
        // silently re-parse a params-carrying message as a shorter
        // fixed-size variant (e.g. LocalUpdate → SelectionNotice).
        let payload_bearing = [
            sample_update(),
            WireMessage::GlobalModel { job: 1, round: 2, params: vec![1.0; 8].into() },
        ];
        for msg in payload_bearing {
            let bytes = msg.encode().to_vec();
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[4] ^= 1 << bit;
                assert!(
                    WireMessage::decode(Bytes::from(corrupted)).is_err(),
                    "{msg:?} decoded with tag bit {bit} flipped"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        for msg in one_of_each() {
            let mut bytes = msg.encode().to_vec();
            bytes.push(0);
            assert!(
                WireMessage::decode(Bytes::from(bytes)).is_err(),
                "{msg:?} decoded with a trailing byte"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(WireMessage::decode(Bytes::from(bytes)), Err(FlError::Codec(_))));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[4] = 99;
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for msg in one_of_each() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let truncated = bytes.slice(0..cut);
                assert!(
                    WireMessage::decode(truncated).is_err(),
                    "decode succeeded on {cut}-byte prefix of {msg:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_hostile_length_prefix_without_allocation() {
        // A params count of u64::MAX must fail cleanly (no overflow, no
        // attempted 64 EiB allocation).
        let mut bytes = WireMessage::GlobalModel { job: 1, round: 1, params: Vec::new().into() }
            .encode()
            .to_vec();
        let len_off = bytes.len() - 8;
        bytes[len_off..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_non_utf8_abort_reason() {
        let mut bytes = WireMessage::Abort { job: 1, round: 1, party: 1, reason: "xx".into() }
            .encode()
            .to_vec();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn empty_params_are_legal() {
        let msg = WireMessage::GlobalModel { job: 0, round: 1, params: Vec::new().into() };
        assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn frame_into_reuses_the_scratch_without_reallocating() {
        // The zero-copy contract on the hot path: after the first
        // (warm-up) frame, re-framing messages of the same shape moves
        // neither the scratch buffer nor its capacity.
        let mut codec = PayloadCodec::new(ModelCodec::Raw, Role::Sender);
        let mut scratch = BytesMut::new();
        let msg = WireMessage::GlobalModel { job: 3, round: 0, params: vec![0.5; 4096].into() };
        frame_into(1, &msg, &mut codec, &mut scratch);
        let cap = scratch.capacity();
        let ptr = scratch.as_slice().as_ptr();
        for round in 1..5u64 {
            let msg = WireMessage::GlobalModel { job: 3, round, params: vec![0.25; 4096].into() };
            frame_into(1, &msg, &mut codec, &mut scratch);
            assert_eq!(scratch.capacity(), cap, "scratch grew on a same-shape message");
            assert_eq!(scratch.as_slice().as_ptr(), ptr, "scratch moved");
            assert_eq!(scratch.len(), FRAME_HEADER + msg.wire_size());
        }
    }
}
