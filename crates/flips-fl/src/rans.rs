//! A static-model range asymmetric numeral system (rANS) coder over
//! byte streams — the entropy stage behind
//! [`ModelCodec::DeltaEntropy`](crate::codec::ModelCodec::DeltaEntropy).
//!
//! PR 4's zero-RLE removes the all-zero runs of the shuffled XOR-delta
//! planes but transmits every literal byte at full width; the literals
//! are heavily skewed (low-mantissa churn concentrates a few byte
//! values), which is exactly the regime a static entropy coder wins in.
//! This module is a from-scratch byte-wise rANS (the build environment
//! has no compression crates): one frequency model per encoded block,
//! 12-bit quantization, 32-bit state with byte renormalization.
//!
//! ## Stream layout
//!
//! ```text
//! ┌────────────┬──────────────────────┬────────────┬────────────┐
//! │ bitmap: 32 │ u16 freq × present   │ state: u32 │ renorm …   │
//! └────────────┴──────────────────────┴────────────┴────────────┘
//! ```
//!
//! - `bitmap` — 256-bit presence map (bit `s` of byte `s / 8` set iff
//!   symbol `s` occurs); the frequency list that follows covers present
//!   symbols in ascending order.
//! - `freq` — quantized frequencies, each ≥ 1, summing to exactly
//!   `M = 4096` (validated on decode; any other sum is rejected before
//!   a single symbol is decoded).
//! - `state` — the encoder's final state, which is the decoder's
//!   *initial* state (rANS runs the two directions in opposite symbol
//!   order; the encoder walks the input backwards so the decoder emits
//!   forwards).
//! - `renorm` — the renormalization bytes, already reversed into decode
//!   order.
//!
//! ## Hostile-input posture
//!
//! Decoding never panics and never loops: the caller states the exact
//! expected output length, byte exhaustion mid-renormalization is an
//! error, and a decode must end with the stream fully consumed and the
//! state back at `RANS_L` (the encoder's start state) — a cheap
//! integrity check that catches most truncations and bit flips outright.
//! A corruption that survives all checks decodes to *some* byte string,
//! exactly like a corrupted RLE stream: payload bits are not
//! self-describing, and the protocol layers above decide what a decoded
//! model is allowed to touch.

use crate::FlError;

/// Frequency quantization: all symbol frequencies sum to `1 << SCALE_BITS`.
pub(crate) const SCALE_BITS: u32 = 12;
/// The quantization total `M`.
pub(crate) const M: u32 = 1 << SCALE_BITS;
/// Lower bound of the normalized state interval `[L, 256·L)`.
pub(crate) const RANS_L: u32 = 1 << 23;
/// Bytes of the presence bitmap.
const BITMAP_BYTES: usize = 32;

/// Builds the quantized frequency table of `src`: `freq[s] ≥ 1` for
/// every occurring symbol, 0 otherwise, summing to exactly [`M`].
///
/// Deterministic: quantize proportionally (clamped up to 1), then repair
/// the rounding drift against the most frequent symbols, ties broken by
/// ascending symbol value.
fn build_freqs(src: &[u8]) -> [u16; 256] {
    let mut counts = [0u64; 256];
    for &b in src {
        counts[b as usize] += 1;
    }
    let total = src.len() as u64;
    let mut freqs = [0u16; 256];
    let mut sum: i64 = 0;
    for s in 0..256 {
        if counts[s] == 0 {
            continue;
        }
        let f = ((counts[s] * u64::from(M)) / total).clamp(1, u64::from(M) - 1) as u16;
        freqs[s] = f;
        sum += i64::from(f);
    }
    // Repair drift. Underflow goes to the single most frequent symbol;
    // overflow is shaved off the largest quantized frequencies (each can
    // give up `f - 1`, and 256 symbols at freq 1 sum to 256 < M, so the
    // loop always terminates).
    while sum != i64::from(M) {
        let (s, _) = freqs
            .iter()
            .enumerate()
            .max_by_key(|&(s, &f)| (f, std::cmp::Reverse(s)))
            .expect("non-empty table");
        if sum < i64::from(M) {
            let add = i64::from(M) - sum;
            freqs[s] = (i64::from(freqs[s]) + add) as u16;
            sum += add;
        } else {
            let give = (sum - i64::from(M)).min(i64::from(freqs[s]) - 1);
            freqs[s] = (i64::from(freqs[s]) - give) as u16;
            sum -= give;
        }
    }
    freqs
}

/// Appends the rANS encoding of `src` (header + state + renorm bytes,
/// see the [module docs](self)) to `out`. `src` must be non-empty — the
/// codec layer falls back to its inline mode before ever encoding an
/// empty plane buffer.
pub(crate) fn encode(src: &[u8], out: &mut Vec<u8>) {
    debug_assert!(!src.is_empty(), "rANS blocks are never empty");
    let freqs = build_freqs(src);
    let mut starts = [0u32; 256];
    let mut acc = 0u32;
    for s in 0..256 {
        starts[s] = acc;
        acc += u32::from(freqs[s]);
    }

    // Header: presence bitmap, then the present symbols' frequencies.
    let mut bitmap = [0u8; BITMAP_BYTES];
    for s in 0..256 {
        if freqs[s] != 0 {
            bitmap[s / 8] |= 1 << (s % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for &f in freqs.iter().filter(|&&f| f != 0) {
        out.extend_from_slice(&f.to_le_bytes());
    }

    // Encode backwards so the decoder emits forwards. Renorm bytes come
    // out in reverse decode order; they are reversed into place below.
    let mut x: u32 = RANS_L;
    let renorm_from = out.len() + 4; // state goes first, bytes after
    let mut rev = Vec::new();
    for &b in src.iter().rev() {
        let f = u32::from(freqs[b as usize]);
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while x >= x_max {
            rev.push(x as u8);
            x >>= 8;
        }
        x = ((x / f) << SCALE_BITS) + (x % f) + starts[b as usize];
    }
    out.extend_from_slice(&x.to_le_bytes());
    out.extend(rev.iter().rev());
    debug_assert!(out.len() >= renorm_from);
}

/// Per-plane container kind: rANS-coded body.
const KIND_RANS: u8 = 0;
/// Per-plane container kind: raw body (the rANS stream would have been
/// at least as large — near-uniform planes).
const KIND_RAW: u8 = 1;

/// Encodes the four byte-shuffled delta planes of `planes` (4·n bytes)
/// as four independent `(kind: u8, len: u32, body)` blocks appended to
/// `out`.
///
/// One frequency model per plane is the load-bearing choice: the
/// sign/exponent planes of an SGD-scale delta are almost entirely zero
/// while the low-mantissa plane is near-uniform, and a shared model
/// would charge every literal for the zeros' probability mass. A plane
/// whose rANS stream does not beat its raw size ships raw (`KIND_RAW`),
/// so the whole container is bounded by `4·n + 20` bytes — the codec
/// layer's inline fallback triggers before that ever reaches the wire.
pub(crate) fn encode_planes(planes: &[u8], n: usize, out: &mut Vec<u8>) {
    debug_assert_eq!(planes.len(), 4 * n);
    for p in 0..4 {
        let plane = &planes[p * n..(p + 1) * n];
        let start = out.len();
        out.push(KIND_RANS);
        out.extend_from_slice(&[0; 4]); // length, patched below
        encode(plane, out);
        let len = out.len() - start - 5;
        if len >= plane.len() {
            out.truncate(start);
            out.push(KIND_RAW);
            out.extend_from_slice(&(plane.len() as u32).to_le_bytes());
            out.extend_from_slice(plane);
        } else {
            out[start + 1..start + 5].copy_from_slice(&(len as u32).to_le_bytes());
        }
    }
}

/// Decodes a container produced by [`encode_planes`] into exactly
/// `4·n` bytes, replacing `out`.
///
/// # Errors
///
/// [`FlError::Codec`] on truncation, an unknown plane kind, a
/// wrong-length raw plane, trailing bytes, or any per-plane rANS
/// failure.
pub(crate) fn decode_planes(mut src: &[u8], n: usize, out: &mut Vec<u8>) -> Result<(), FlError> {
    out.clear();
    for _ in 0..4 {
        if src.len() < 5 {
            return Err(FlError::Codec("truncated plane header".into()));
        }
        let kind = src[0];
        let len = u32::from_le_bytes(src[1..5].try_into().expect("4 bytes")) as usize;
        if len > src.len() - 5 {
            return Err(FlError::Codec("plane body exceeds the stream".into()));
        }
        let body = &src[5..5 + len];
        match kind {
            KIND_RAW => {
                if len != n {
                    return Err(FlError::Codec(format!("raw plane of {len} bytes, need {n}")));
                }
                out.extend_from_slice(body);
            }
            KIND_RANS => decode(body, n, out)?,
            other => return Err(FlError::Codec(format!("unknown plane kind {other}"))),
        }
        src = &src[5 + len..];
    }
    if !src.is_empty() {
        return Err(FlError::Codec("trailing bytes after the plane container".into()));
    }
    Ok(())
}

/// Decodes a stream produced by [`encode`] into exactly `expect` bytes,
/// appended to `out` (not cleared — plane decoding accumulates).
///
/// # Errors
///
/// [`FlError::Codec`] on a malformed header (truncation, frequency sum
/// ≠ `M`), a state below the normalized interval, byte exhaustion
/// mid-stream, trailing bytes, or a final state other than the
/// encoder's start state.
pub(crate) fn decode(src: &[u8], expect: usize, out: &mut Vec<u8>) -> Result<(), FlError> {
    if src.len() < BITMAP_BYTES {
        return Err(FlError::Codec("rANS header shorter than its bitmap".into()));
    }
    let (bitmap, rest) = src.split_at(BITMAP_BYTES);
    let present: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    if present == 0 || rest.len() < 2 * present + 4 {
        return Err(FlError::Codec("truncated rANS frequency table".into()));
    }
    let (freq_bytes, stream) = rest.split_at(2 * present);
    let mut freqs = [0u16; 256];
    let mut starts = [0u32; 256];
    let mut slot_sym = [0u8; M as usize];
    let mut acc: u32 = 0;
    let mut fi = 0;
    for s in 0..256usize {
        if bitmap[s / 8] & (1 << (s % 8)) == 0 {
            continue;
        }
        let f = u16::from_le_bytes([freq_bytes[fi], freq_bytes[fi + 1]]);
        fi += 2;
        if f == 0 || u32::from(f) > M - acc {
            return Err(FlError::Codec("rANS frequencies exceed the quantization total".into()));
        }
        freqs[s] = f;
        starts[s] = acc;
        for slot in acc..acc + u32::from(f) {
            slot_sym[slot as usize] = s as u8;
        }
        acc += u32::from(f);
    }
    if acc != M {
        return Err(FlError::Codec(format!("rANS frequencies sum to {acc}, need {M}")));
    }

    let mut x = u32::from_le_bytes(stream[..4].try_into().expect("4 bytes"));
    if x < RANS_L {
        return Err(FlError::Codec("rANS state below the normalized interval".into()));
    }
    let mut bytes = stream[4..].iter();
    out.reserve(expect);
    for _ in 0..expect {
        let slot = x & (M - 1);
        let s = slot_sym[slot as usize];
        out.push(s);
        x = u32::from(freqs[s as usize]) * (x >> SCALE_BITS) + slot - starts[s as usize];
        while x < RANS_L {
            let Some(&b) = bytes.next() else {
                return Err(FlError::Codec("rANS stream exhausted mid-symbol".into()));
            };
            x = (x << 8) | u32::from(b);
        }
    }
    if bytes.next().is_some() {
        return Err(FlError::Codec("trailing bytes after the rANS stream".into()));
    }
    if x != RANS_L {
        return Err(FlError::Codec("rANS stream did not end at the start state".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &[u8]) -> Vec<u8> {
        let mut enc = Vec::new();
        encode(src, &mut enc);
        let mut dec = Vec::new();
        decode(&enc, src.len(), &mut dec).unwrap();
        dec
    }

    #[test]
    fn roundtrips_skewed_and_uniform_streams() {
        let skewed: Vec<u8> =
            (0..10_000).map(|i| if i % 7 == 0 { (i % 11) as u8 } else { 0 }).collect();
        assert_eq!(roundtrip(&skewed), skewed);
        let uniform: Vec<u8> = (0..=255).cycle().take(4096).collect();
        assert_eq!(roundtrip(&uniform), uniform);
        let single = vec![42u8; 1];
        assert_eq!(roundtrip(&single), single);
    }

    #[test]
    fn all_zero_planes_collapse_to_the_header() {
        // A same-round rebroadcast's delta planes: one symbol, freq M.
        // Encoding M-aligned symbols never moves the state, so the
        // stream is header + state only — O(1) in the plane size.
        let zeros = vec![0u8; 1 << 20];
        let mut enc = Vec::new();
        encode(&zeros, &mut enc);
        assert_eq!(enc.len(), BITMAP_BYTES + 2 + 4, "got {} bytes", enc.len());
        let mut dec = Vec::new();
        decode(&enc, zeros.len(), &mut dec).unwrap();
        assert_eq!(dec, zeros);
    }

    #[test]
    fn skewed_streams_compress_below_raw() {
        // 90% zeros, the rest drawn from a few values: the shape of a
        // real delta plane. rANS must clearly beat 1 byte/symbol.
        let src: Vec<u8> =
            (0u32..50_000).map(|i| if i % 10 == 0 { (1 + i % 4) as u8 } else { 0 }).collect();
        let mut enc = Vec::new();
        encode(&src, &mut enc);
        assert!(enc.len() < src.len() / 2, "{} bytes for {} input", enc.len(), src.len());
    }

    #[test]
    fn freq_table_is_exact_and_deterministic() {
        let src: Vec<u8> = (0..1000).map(|i| (i % 3) as u8).collect();
        let f1 = build_freqs(&src);
        let f2 = build_freqs(&src);
        assert_eq!(f1, f2);
        assert_eq!(f1.iter().map(|&f| u32::from(f)).sum::<u32>(), M);
        assert!(f1[..3].iter().all(|&f| f >= 1));
        assert!(f1[3..].iter().all(|&f| f == 0));
    }

    #[test]
    fn worst_case_expansion_is_bounded() {
        // An adversarial stream touching all 256 symbols: header is 544
        // bytes and rANS approaches 1 byte/symbol, so total stays within
        // input + header + state + one renorm slop byte. (The codec
        // layer falls back to inline mode before ever shipping a stream
        // at or above the raw plane size.)
        let src: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(0x9E37_79B9) >> 13) as u8).collect();
        let mut enc = Vec::new();
        encode(&src, &mut enc);
        assert!(
            enc.len() <= src.len() + BITMAP_BYTES + 512 + 4 + 8,
            "{} bytes for {} hostile input",
            enc.len(),
            src.len()
        );
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        let src: Vec<u8> = (0..2048).map(|i| (i % 5) as u8).collect();
        let mut enc = Vec::new();
        encode(&src, &mut enc);
        let mut out = Vec::new();
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut], src.len(), &mut out).is_err(), "decoded at cut {cut}");
        }
        // Claiming more output than the stream carries must fail (the
        // stream runs dry or the end-state check trips).
        assert!(decode(&enc, src.len() + 1, &mut out).is_err());
        assert!(decode(&enc, src.len() - 1, &mut out).is_err(), "short decode leaves residue");
        // A corrupt frequency table is rejected before any symbol work.
        let mut bad = enc.clone();
        bad[BITMAP_BYTES] ^= 0xFF;
        assert!(decode(&bad, src.len(), &mut out).is_err());
    }

    #[test]
    fn plane_container_roundtrips_and_escapes_uniform_planes() {
        // Plane 0 near-uniform (raw escape), plane 1 skewed (rANS),
        // planes 2–3 all-zero (header-sized rANS) — the shape of a real
        // shuffled delta.
        let n = 4096usize;
        let mut planes = vec![0u8; 4 * n];
        for i in 0..n {
            planes[i] = (i as u32).wrapping_mul(0x9E37_79B9) as u8;
            planes[n + i] = if i % 11 == 0 { 3 } else { 0 };
        }
        let mut enc = Vec::new();
        encode_planes(&planes, n, &mut enc);
        assert!(enc.len() < 4 * n / 2, "container must beat raw: {} bytes", enc.len());
        assert_eq!(enc[0], KIND_RAW, "uniform plane escapes to raw");
        let mut dec = Vec::new();
        decode_planes(&enc, n, &mut dec).unwrap();
        assert_eq!(dec, planes);
        // Truncations and a forged plane kind all fail cleanly.
        let mut out = Vec::new();
        for cut in 0..enc.len() {
            assert!(decode_planes(&enc[..cut], n, &mut out).is_err(), "decoded at cut {cut}");
        }
        let mut bad = enc.clone();
        bad[0] = 9;
        assert!(decode_planes(&bad, n, &mut out).is_err());
        assert!(decode_planes(&enc, n - 1, &mut out).is_err(), "wrong plane size is rejected");
    }

    #[test]
    fn bit_flips_never_panic() {
        let src: Vec<u8> = (0..512).map(|i| (i % 9) as u8).collect();
        let mut enc = Vec::new();
        encode(&src, &mut enc);
        let mut out = Vec::new();
        for i in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[i] ^= 1 << bit;
                // Err or a wrong decode are both acceptable; not panicking
                // (and not looping) is the property.
                let _ = decode(&bad, src.len(), &mut out);
            }
        }
    }
}
