//! The roster store — bounded-memory party metadata at million-party
//! scale.
//!
//! Selector construction used to require the caller to materialize the
//! whole roster (sample counts, latency profiles, label distributions)
//! as dense vectors. At 10⁶ registered parties that is hundreds of
//! megabytes of mostly-cold descriptors held for the lifetime of the
//! job. [`RosterStore`] keeps those descriptors in fixed-size
//! *segments* ([`SEGMENT_PARTIES`] records each) and, in spill mode,
//! pages them through a bounded LRU cache of resident segments backed
//! by sealed files on disk — the same FLCK integrity envelope
//! checkpoints use ([`crate::checkpoint`]), so a truncated or bit-
//! flipped segment is rejected, never silently misread.
//!
//! The store implements [`CandidateSource`], which is how the five
//! selection policies consume it: streamed per-party reads for Oort and
//! TiFL, a single ordered pass for FLIPS's clustering pool, and nothing
//! at all for Random and GradClus. Selection over a spilled roster is
//! *bit-identical* to selection over the same records held flat — the
//! scale-equivalence suite pins this.
//!
//! Spill/load traffic is observable: [`RosterStore::spilled`] and
//! [`RosterStore::loaded`] feed `DriverStats::{roster_spilled,
//! roster_loaded}` (via [`crate::MultiJobDriver::attach_roster`]) and
//! the flips-net Prometheus gauges.

use crate::checkpoint::{seal_segment, unseal_segment};
use crate::FlError;
use flips_selection::streaming::CandidateSource;
use flips_selection::PartyId;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Records per segment. 4096 keeps a segment's encoded size in the
/// hundreds-of-kilobytes range for typical label schemas — large enough
/// to amortize a file read, small enough that a handful of resident
/// segments stays far under any realistic budget.
pub const SEGMENT_PARTIES: usize = 4096;

/// One registered party's selection-relevant metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartyRecord {
    /// Local sample count (Oort's public metadata, the FedAvg weight).
    pub data_size: u64,
    /// Profiled training latency, seconds (TiFL tiering, Oort's
    /// preferred-duration calibration).
    pub latency_hint: f64,
    /// Raw per-label datapoint counts (FLIPS's clustering descriptor;
    /// may be empty when no semantic policy runs).
    pub label_counts: Vec<u64>,
}

/// Where a store keeps its segments.
enum Backing {
    /// Every segment resident — the flat path, zero I/O.
    Memory(Vec<Vec<PartyRecord>>),
    /// Sealed segment files under `dir`, paged through a bounded LRU.
    Spill { dir: PathBuf, budget: usize, cache: Mutex<SegmentCache> },
}

/// The resident-segment LRU (spill mode only).
struct SegmentCache {
    /// Resident segments by index.
    resident: HashMap<usize, Vec<PartyRecord>>,
    /// Access order, least-recent first.
    order: VecDeque<usize>,
}

/// A bounded-memory, integrity-checked store of party records.
///
/// `Send + Sync`: the LRU sits behind a `Mutex`, the counters are
/// atomics — the epoll runtime reads rosters from its metrics thread
/// while the driver thread selects from them.
pub struct RosterStore {
    backing: Backing,
    num_parties: usize,
    /// Records per segment (the build-time geometry; addressing needs
    /// it without touching any segment).
    cap: usize,
    /// Segments written to disk (spill mode: every segment, once, at
    /// build time).
    spilled: AtomicU64,
    /// Segment files read back into residency.
    loaded: AtomicU64,
}

impl std::fmt::Debug for RosterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RosterStore")
            .field("parties", &self.num_parties)
            .field("spilled", &self.spilled.load(Ordering::Relaxed))
            .field("loaded", &self.loaded.load(Ordering::Relaxed))
            .finish()
    }
}

/// Incrementally builds a [`RosterStore`] without ever holding more
/// than one segment of pending records — the only way to assemble a
/// million-party roster under a memory budget.
pub struct RosterBuilder {
    /// `None` → in-memory store; `Some` → spill directory and resident
    /// budget.
    spill: Option<(PathBuf, usize)>,
    segment_cap: usize,
    pending: Vec<PartyRecord>,
    /// Completed segments (in-memory mode) — spill mode flushes to disk
    /// instead.
    done: Vec<Vec<PartyRecord>>,
    written: u64,
    count: usize,
}

impl RosterBuilder {
    /// A builder whose store keeps every segment resident.
    pub fn in_memory() -> Self {
        RosterBuilder {
            spill: None,
            segment_cap: SEGMENT_PARTIES,
            pending: Vec::new(),
            done: Vec::new(),
            written: 0,
            count: 0,
        }
    }

    /// A builder that seals each full segment to a file under `dir` and
    /// whose store keeps at most `budget` segments resident (minimum 1).
    ///
    /// # Errors
    ///
    /// Fails if `dir` cannot be created.
    pub fn spilling(dir: impl Into<PathBuf>, budget: usize) -> Result<Self, FlError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| FlError::Codec(format!("cannot create roster dir {dir:?}: {e}")))?;
        Ok(RosterBuilder { spill: Some((dir, budget.max(1))), ..RosterBuilder::in_memory() })
    }

    /// Overrides the records-per-segment cap (tests exercise paging
    /// with small segments; production uses [`SEGMENT_PARTIES`]).
    pub fn segment_cap(mut self, cap: usize) -> Self {
        self.segment_cap = cap.max(1);
        self
    }

    /// Appends the next party's record (party ids are assigned densely
    /// in push order).
    ///
    /// # Errors
    ///
    /// Propagates segment-file write failures (spill mode).
    pub fn push(&mut self, record: PartyRecord) -> Result<(), FlError> {
        self.pending.push(record);
        self.count += 1;
        if self.pending.len() >= self.segment_cap {
            self.flush()?;
        }
        Ok(())
    }

    /// Finishes the roster and returns the store.
    ///
    /// # Errors
    ///
    /// Propagates segment-file write failures (spill mode).
    pub fn finish(mut self) -> Result<RosterStore, FlError> {
        if !self.pending.is_empty() {
            self.flush()?;
        }
        let backing = match self.spill {
            None => Backing::Memory(self.done),
            Some((dir, budget)) => Backing::Spill {
                dir,
                budget,
                cache: Mutex::new(SegmentCache {
                    resident: HashMap::new(),
                    order: VecDeque::new(),
                }),
            },
        };
        Ok(RosterStore {
            backing,
            num_parties: self.count,
            cap: self.segment_cap,
            spilled: AtomicU64::new(self.written),
            loaded: AtomicU64::new(0),
        })
    }

    fn flush(&mut self) -> Result<(), FlError> {
        let segment = std::mem::take(&mut self.pending);
        match &self.spill {
            None => self.done.push(segment),
            Some((dir, _)) => {
                let sealed = seal_segment(&encode_segment(&segment));
                let path = segment_path(dir, self.done.len() + self.written as usize);
                std::fs::write(&path, sealed)
                    .map_err(|e| FlError::Codec(format!("cannot write segment {path:?}: {e}")))?;
                self.written += 1;
            }
        }
        Ok(())
    }
}

fn segment_path(dir: &std::path::Path, index: usize) -> PathBuf {
    dir.join(format!("seg-{index:08}.flrs"))
}

impl RosterStore {
    /// Convenience: an in-memory store over pre-built records.
    pub fn from_records(records: Vec<PartyRecord>) -> Self {
        let mut b = RosterBuilder::in_memory();
        for r in records {
            b.push(r).expect("in-memory push cannot fail");
        }
        b.finish().expect("in-memory finish cannot fail")
    }

    /// Registered parties.
    pub fn num_parties(&self) -> usize {
        self.num_parties
    }

    /// Segments written to disk so far.
    pub fn spilled(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Segment files read back into residency so far.
    pub fn loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Segments currently resident in memory. In-memory stores report
    /// their full segment count; spill stores never exceed their
    /// budget — the memory-ceiling smoke asserts this at 10⁶ parties.
    pub fn resident_segments(&self) -> usize {
        match &self.backing {
            Backing::Memory(segments) => segments.len(),
            Backing::Spill { cache, .. } => cache.lock().expect("roster lock").resident.len(),
        }
    }

    /// Reads one party's record through the cache.
    ///
    /// # Errors
    ///
    /// Out-of-range ids, unreadable or tampered segment files.
    pub fn record(&self, party: PartyId) -> Result<PartyRecord, FlError> {
        self.with_record(party, |r| r.clone())
    }

    /// Runs `f` over one party's record without cloning its label
    /// vector.
    ///
    /// # Errors
    ///
    /// Out-of-range ids, unreadable or tampered segment files.
    pub fn with_record<R>(
        &self,
        party: PartyId,
        f: impl FnOnce(&PartyRecord) -> R,
    ) -> Result<R, FlError> {
        if party >= self.num_parties {
            return Err(FlError::Codec(format!(
                "party {party} out of range for roster of {}",
                self.num_parties
            )));
        }
        let (seg, off) = (party / self.segment_cap(), party % self.segment_cap());
        match &self.backing {
            Backing::Memory(segments) => Ok(f(&segments[seg][off])),
            Backing::Spill { dir, budget, cache } => {
                let mut cache = cache.lock().expect("roster lock");
                if let Some(records) = cache.resident.get(&seg) {
                    let out = f(&records[off]);
                    cache.touch(seg);
                    return Ok(out);
                }
                let records = self.load_segment(dir, seg)?;
                let out = f(&records[off]);
                cache.insert(seg, records, *budget);
                Ok(out)
            }
        }
    }

    /// Streams every segment (and record) in party-id order through
    /// `visit`. Spill mode reads each segment file once, touching the
    /// cache for none of them — a full scan must not evict the working
    /// set the per-party path has warmed.
    ///
    /// # Errors
    ///
    /// Unreadable or tampered segment files.
    pub fn visit_all(&self, visit: &mut dyn FnMut(PartyId, &PartyRecord)) -> Result<(), FlError> {
        let cap = self.segment_cap();
        match &self.backing {
            Backing::Memory(segments) => {
                for (s, records) in segments.iter().enumerate() {
                    for (i, r) in records.iter().enumerate() {
                        visit(s * cap + i, r);
                    }
                }
                Ok(())
            }
            Backing::Spill { dir, .. } => {
                let segments = self.num_parties.div_ceil(cap);
                for s in 0..segments {
                    let records = self.load_segment(dir, s)?;
                    for (i, r) in records.iter().enumerate() {
                        visit(s * cap + i, r);
                    }
                }
                Ok(())
            }
        }
    }

    /// The records-per-segment geometry this store was built with.
    fn segment_cap(&self) -> usize {
        self.cap
    }

    fn load_segment(&self, dir: &std::path::Path, seg: usize) -> Result<Vec<PartyRecord>, FlError> {
        let path = segment_path(dir, seg);
        let bytes = std::fs::read(&path)
            .map_err(|e| FlError::Codec(format!("cannot read segment {path:?}: {e}")))?;
        let records = decode_segment(unseal_segment(&bytes)?)?;
        self.loaded.fetch_add(1, Ordering::Relaxed);
        Ok(records)
    }
}

impl SegmentCache {
    /// Marks `seg` most-recently used.
    fn touch(&mut self, seg: usize) {
        if let Some(pos) = self.order.iter().position(|&s| s == seg) {
            self.order.remove(pos);
        }
        self.order.push_back(seg);
    }

    /// Inserts a freshly loaded segment, evicting least-recently used
    /// residents down to `budget`.
    fn insert(&mut self, seg: usize, records: Vec<PartyRecord>, budget: usize) {
        self.resident.insert(seg, records);
        self.touch(seg);
        while self.resident.len() > budget {
            let Some(victim) = self.order.pop_front() else { break };
            self.resident.remove(&victim);
        }
    }
}

// ---------------------------------------------------------------------
// Segment codec (sealed by crate::checkpoint's FLCK envelope).
// ---------------------------------------------------------------------

fn encode_segment(records: &[PartyRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.data_size.to_le_bytes());
        out.extend_from_slice(&r.latency_hint.to_bits().to_le_bytes());
        out.extend_from_slice(&(r.label_counts.len() as u64).to_le_bytes());
        for &c in &r.label_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out
}

fn decode_segment(payload: &[u8]) -> Result<Vec<PartyRecord>, FlError> {
    fn u64_at(buf: &[u8], pos: &mut usize) -> Result<u64, FlError> {
        let Some(end) = pos.checked_add(8).filter(|&e| e <= buf.len()) else {
            return Err(FlError::Codec("roster segment truncated".into()));
        };
        let v = u64::from_le_bytes(buf[*pos..end].try_into().expect("8 bytes"));
        *pos = end;
        Ok(v)
    }
    let mut pos = 0usize;
    let count = u64_at(payload, &mut pos)?;
    // A hostile count that cannot possibly fit the payload is rejected
    // before any allocation (each record is at least 24 bytes).
    if count.checked_mul(24).is_none_or(|need| need > (payload.len() - pos) as u64) {
        return Err(FlError::Codec(format!("roster segment count {count} impossible")));
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let data_size = u64_at(payload, &mut pos)?;
        let latency_hint = f64::from_bits(u64_at(payload, &mut pos)?);
        let labels = u64_at(payload, &mut pos)?;
        if labels.checked_mul(8).is_none_or(|need| need > (payload.len() - pos) as u64) {
            return Err(FlError::Codec(format!("roster label count {labels} impossible")));
        }
        let mut label_counts = Vec::with_capacity(labels as usize);
        for _ in 0..labels {
            label_counts.push(u64_at(payload, &mut pos)?);
        }
        records.push(PartyRecord { data_size, latency_hint, label_counts });
    }
    if pos != payload.len() {
        return Err(FlError::Codec("roster segment has trailing bytes".into()));
    }
    Ok(records)
}

impl CandidateSource for RosterStore {
    fn num_parties(&self) -> usize {
        self.num_parties
    }

    fn data_size(&self, party: PartyId) -> u64 {
        self.with_record(party, |r| r.data_size).expect("roster read")
    }

    fn latency_hint(&self, party: PartyId) -> f64 {
        self.with_record(party, |r| r.latency_hint).expect("roster read")
    }

    fn visit_label_distributions(&self, visit: &mut dyn FnMut(PartyId, &[u64])) {
        self.visit_all(&mut |p, r| visit(p, &r.label_counts)).expect("roster scan");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flips-roster-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records(n: usize) -> Vec<PartyRecord> {
        (0..n)
            .map(|p| PartyRecord {
                data_size: 10 + p as u64,
                latency_hint: 0.25 + p as f64 * 0.01,
                label_counts: vec![p as u64 % 5, 3, p as u64],
            })
            .collect()
    }

    #[test]
    fn spilled_store_reads_back_identically() {
        let dir = test_dir("roundtrip");
        let records = sample_records(25);
        let flat = RosterStore::from_records(records.clone());
        let mut b = RosterBuilder::spilling(&dir, 2).unwrap().segment_cap(4);
        for r in records.clone() {
            b.push(r).unwrap();
        }
        let spill = b.finish().unwrap();
        assert_eq!(spill.num_parties(), 25);
        assert_eq!(spill.spilled(), 7, "ceil(25/4) segments written");
        for (p, want) in records.iter().enumerate() {
            assert_eq!(&spill.record(p).unwrap(), want);
            assert_eq!(spill.data_size(p), flat.data_size(p));
            assert_eq!(spill.latency_hint(p), flat.latency_hint(p));
        }
        let mut a = Vec::new();
        let mut bb = Vec::new();
        flat.visit_label_distributions(&mut |p, c| a.push((p, c.to_vec())));
        spill.visit_label_distributions(&mut |p, c| bb.push((p, c.to_vec())));
        assert_eq!(a, bb);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_respects_budget_and_counts_loads() {
        let dir = test_dir("lru");
        let mut b = RosterBuilder::spilling(&dir, 2).unwrap().segment_cap(2);
        for r in sample_records(10) {
            b.push(r).unwrap();
        }
        let store = b.finish().unwrap();
        assert_eq!(store.resident_segments(), 0, "nothing resident before first read");
        for p in 0..10 {
            let _ = store.record(p).unwrap();
            assert!(store.resident_segments() <= 2, "budget violated at party {p}");
        }
        assert_eq!(store.loaded(), 5, "each of the 5 segments paged in once");
        // Re-reading an evicted segment pages it in again.
        let _ = store.record(0).unwrap();
        assert_eq!(store.loaded(), 6);
        // Re-reading a resident one does not.
        let _ = store.record(1).unwrap();
        assert_eq!(store.loaded(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_scan_does_not_disturb_the_cache() {
        let dir = test_dir("scan");
        let mut b = RosterBuilder::spilling(&dir, 1).unwrap().segment_cap(2);
        for r in sample_records(8) {
            b.push(r).unwrap();
        }
        let store = b.finish().unwrap();
        let _ = store.record(0).unwrap();
        let mut n = 0;
        store.visit_all(&mut |_, _| n += 1).unwrap();
        assert_eq!(n, 8);
        assert_eq!(store.resident_segments(), 1);
        // Segment 0 is still the resident one: no page-in on re-read.
        let before = store.loaded();
        let _ = store.record(1).unwrap();
        assert_eq!(store.loaded(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let records = sample_records(3);
        let sealed = crate::checkpoint::seal_segment(&encode_segment(&records));
        // Sanity: the intact envelope opens.
        assert!(decode_segment(crate::checkpoint::unseal_segment(&sealed).unwrap()).is_ok());
        for len in 0..sealed.len() {
            let truncated = &sealed[..len];
            assert!(
                crate::checkpoint::unseal_segment(truncated).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
        for byte in 0..sealed.len() {
            let mut damaged = sealed.clone();
            damaged[byte] ^= 0x01;
            let verdict = crate::checkpoint::unseal_segment(&damaged)
                .and_then(|p| decode_segment(p).map(|_| ()));
            assert!(verdict.is_err(), "bit flip at byte {byte} accepted");
        }
    }

    #[test]
    fn decoder_rejects_hostile_counts_and_trailing_bytes() {
        // Impossible record count.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_segment(&payload).is_err());
        // Impossible label count inside a record.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_segment(&payload).is_err());
        // Trailing garbage after a valid record stream.
        let mut ok = encode_segment(&sample_records(2));
        ok.push(0);
        assert!(decode_segment(&ok).is_err());
    }

    #[test]
    fn out_of_range_party_errors() {
        let store = RosterStore::from_records(sample_records(3));
        assert!(store.record(3).is_err());
        assert!(store.record(2).is_ok());
    }

    #[test]
    fn empty_roster_is_valid() {
        let store = RosterBuilder::in_memory().finish().unwrap();
        assert_eq!(store.num_parties(), 0);
        assert_eq!(store.resident_segments(), 0);
        let mut n = 0;
        store.visit_all(&mut |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }
}
