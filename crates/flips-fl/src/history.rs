//! Per-round records and the summary metrics the paper's tables report.

use flips_selection::PartyId;
use serde::{Deserialize, Serialize};

/// Everything the aggregator records about one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number (0-based).
    pub round: usize,
    /// Parties selected (including overprovisioned extras).
    pub selected: Vec<PartyId>,
    /// Parties whose updates were aggregated.
    pub completed: Vec<PartyId>,
    /// Parties that straggled.
    pub stragglers: Vec<PartyId>,
    /// Balanced accuracy of the global model on the global test set after
    /// this round (the paper's §4.4 metric).
    pub accuracy: f64,
    /// Per-label recall on the test set (Figure 13's series); `None` for
    /// labels absent from the test set.
    pub per_label_recall: Vec<Option<f64>>,
    /// Mean local training loss across completed parties.
    pub mean_train_loss: f64,
    /// Bytes sent aggregator → parties this round.
    pub bytes_down: u64,
    /// Bytes sent parties → aggregator this round.
    pub bytes_up: u64,
    /// Simulated wall-clock duration of the round (slowest completed
    /// party), seconds.
    pub round_duration: f64,
}

/// The full trajectory of one FL job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    rounds: Vec<RoundRecord>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.rounds.push(record);
    }

    /// All records in round order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The accuracy trajectory (the convergence curves of Figures 5–12).
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.accuracy).collect()
    }

    /// The recall trajectory of one label (Figure 13).
    pub fn label_recall_series(&self, label: usize) -> Vec<Option<f64>> {
        self.rounds.iter().map(|r| r.per_label_recall.get(label).copied().flatten()).collect()
    }

    /// Rounds needed to first reach `target` balanced accuracy, 1-based —
    /// the paper's "rounds required to attain target accuracy". `None`
    /// means the budget ran out (reported as "> budget" in the tables).
    pub fn rounds_to_target(&self, target: f64) -> Option<usize> {
        self.rounds.iter().position(|r| r.accuracy >= target).map(|i| i + 1)
    }

    /// Highest accuracy attained within the recorded rounds — the paper's
    /// "highest accuracy attained within the rounds threshold".
    pub fn peak_accuracy(&self) -> f64 {
        self.rounds.iter().map(|r| r.accuracy).fold(0.0, f64::max)
    }

    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.accuracy)
    }

    /// Total bytes on the wire across all rounds (both directions) — the
    /// communication-cost metric.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_down + r.bytes_up).sum()
    }

    /// Bytes on the wire up to (and including) first reaching `target`
    /// accuracy; `None` if never reached. Lower is better — the paper's
    /// "lower communication costs" claim quantified.
    pub fn bytes_to_target(&self, target: f64) -> Option<u64> {
        let upto = self.rounds_to_target(target)?;
        Some(self.rounds[..upto].iter().map(|r| r.bytes_down + r.bytes_up).sum())
    }

    /// Total simulated wall-clock time, seconds.
    pub fn total_duration(&self) -> f64 {
        self.rounds.iter().map(|r| r.round_duration).sum()
    }

    /// Total straggler events observed.
    pub fn total_stragglers(&self) -> usize {
        self.rounds.iter().map(|r| r.stragglers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, accuracy: f64) -> RoundRecord {
        RoundRecord {
            round,
            selected: vec![0, 1],
            completed: vec![0, 1],
            stragglers: vec![],
            accuracy,
            per_label_recall: vec![Some(accuracy), None],
            mean_train_loss: 1.0 - accuracy,
            bytes_down: 100,
            bytes_up: 80,
            round_duration: 0.5,
        }
    }

    fn rising() -> History {
        let mut h = History::new();
        for (i, acc) in [0.2, 0.4, 0.55, 0.61, 0.58, 0.72].iter().enumerate() {
            h.push(record(i, *acc));
        }
        h
    }

    #[test]
    fn rounds_to_target_is_first_crossing_one_based() {
        let h = rising();
        assert_eq!(h.rounds_to_target(0.60), Some(4));
        assert_eq!(h.rounds_to_target(0.2), Some(1));
        assert_eq!(h.rounds_to_target(0.9), None);
    }

    #[test]
    fn peak_and_final_accuracy() {
        let h = rising();
        assert_eq!(h.peak_accuracy(), 0.72);
        assert_eq!(h.final_accuracy(), 0.72);
        let mut h2 = rising();
        h2.push(record(6, 0.1));
        assert_eq!(h2.peak_accuracy(), 0.72);
        assert_eq!(h2.final_accuracy(), 0.1);
    }

    #[test]
    fn byte_accounting() {
        let h = rising();
        assert_eq!(h.total_bytes(), 6 * 180);
        assert_eq!(h.bytes_to_target(0.60), Some(4 * 180));
        assert_eq!(h.bytes_to_target(0.99), None);
    }

    #[test]
    fn series_extraction() {
        let h = rising();
        assert_eq!(h.accuracy_series().len(), 6);
        let recalls = h.label_recall_series(0);
        assert_eq!(recalls[2], Some(0.55));
        let missing = h.label_recall_series(1);
        assert!(missing.iter().all(Option::is_none));
        let out_of_range = h.label_recall_series(9);
        assert!(out_of_range.iter().all(Option::is_none));
    }

    #[test]
    fn empty_history_defaults() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.peak_accuracy(), 0.0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.rounds_to_target(0.1), None);
        assert_eq!(h.total_bytes(), 0);
    }

    #[test]
    fn durations_and_stragglers_accumulate() {
        let mut h = rising();
        let mut r = record(6, 0.5);
        r.stragglers = vec![3, 4];
        h.push(r);
        assert!((h.total_duration() - 3.5).abs() < 1e-9);
        assert_eq!(h.total_stragglers(), 2);
    }
}
