//! The sans-IO round coordinator — selection/aggregation *policy* as a
//! pure state machine (paper §2, Figure 1).
//!
//! [`Coordinator`] owns everything the aggregator side of the protocol
//! *decides*: which parties join a round, which updates are accepted,
//! when a round closes, how updates aggregate into the global model, and
//! what the selector learns from the outcome. It owns nothing the
//! aggregator side *does*: no sockets, no threads, no clocks, no local
//! training. Drivers feed [`Event`]s and execute the returned
//! [`Effect`]s; see [`crate::events`] for the vocabulary and
//! [`crate::FlJob`] for the in-process simulation driver.
//!
//! A round's lifecycle:
//!
//! ```text
//!  Idle ──open_round()──▶ Open ──UpdateReceived*──▶ Open
//!                          │  ▲                      │
//!                          │  └──── Heartbeat ───────┘
//!                          │
//!            DeadlineExpired │ (or cohort complete)
//!                          ▼
//!            close: aggregate → evaluate → selector feedback
//!                          │
//!          RoundClosed(record) [+ JobFinished(history)]
//! ```
//!
//! Rounds have real open/close semantics: duplicate updates are rejected
//! (never double-aggregated), late updates for closed rounds bounce with
//! [`RejectReason::WrongRound`], and parties that miss the deadline close
//! as stragglers — the deadline *is* the straggler mechanism, there is no
//! separate injection path inside the protocol.

use crate::aggtree::ExactWeightedSum;
use crate::codec::ModelCodec;
use crate::config::FlAlgorithm;
use crate::events::{Effect, Event, RejectReason};
use crate::history::{History, RoundRecord};
use crate::message::WireMessage;
use crate::party::LocalUpdate;
use crate::server::ServerState;
use crate::FlError;
use flips_data::Dataset;
use flips_ml::metrics::ConfusionMatrix;
use flips_ml::model::{Model, ModelSpec};
use flips_ml::rng::{derive_seed, seeded};
use flips_selection::gradclus::sketch_update;
use flips_selection::{ParticipantSelector, PartyId, RoundFeedback};
use std::collections::{HashMap, HashSet};

/// Static configuration of one coordinator.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Job identifier stamped on every message (rejects foreign traffic).
    pub job_id: u64,
    /// The agreed model architecture.
    pub model: ModelSpec,
    /// The FL algorithm (server-side optimizer).
    pub algorithm: FlAlgorithm,
    /// Round budget.
    pub rounds: usize,
    /// Parties per round (`Nr`; selectors may overprovision beyond it).
    pub parties_per_round: usize,
    /// Dimension of the update sketches reported to GradClus.
    pub sketch_dim: usize,
    /// The model-payload wire codec announced in every selection notice
    /// (negotiated once per job; serialized drivers encode model frames
    /// with it). Byte *accounting* stays raw-canonical regardless.
    pub codec: ModelCodec,
    /// Master seed; the global-model initialization stream derives from
    /// it.
    pub seed: u64,
}

/// Book-keeping of the currently open round.
#[derive(Debug)]
struct OpenRound {
    round: u64,
    /// Selection order, as the policy returned it.
    selected: Vec<PartyId>,
    selected_set: HashSet<PartyId>,
    /// Parties whose update has not arrived (and are not dropped).
    pending: HashSet<PartyId>,
    /// Accepted updates, insertion order (sorted at close).
    updates: Vec<(PartyId, LocalUpdate)>,
    /// Parties the driver reported gone.
    dropped: HashSet<PartyId>,
    /// Parties that acked their selection notice.
    heartbeats: HashSet<PartyId>,
    /// Merged aggregation-tree partials received this round (exact-fold
    /// mode only; the flat updates' fold joins it at close).
    partial: Option<ExactWeightedSum>,
    /// Selector-feedback sketches shipped inside partials, keyed by
    /// covered party (their parameters were folded away upstream, so the
    /// coordinator can no longer compute these itself).
    shipped_sketches: HashMap<PartyId, Vec<f32>>,
    bytes_down: u64,
    bytes_up: u64,
}

/// The aggregator-side protocol state machine.
///
/// See the [module docs](self) for the event/effect contract.
///
/// # Example
///
/// Drive one round by hand — open it, then expire the deadline; every
/// side effect a real deployment would need (sends, closes) comes back
/// as an [`Effect`] for the driver to execute:
///
/// ```
/// use flips_data::dataset::balanced_test_set;
/// use flips_data::DatasetProfile;
/// use flips_fl::{Coordinator, CoordinatorConfig, Effect, Event, FlAlgorithm, ModelCodec};
/// use flips_selection::RandomSelector;
///
/// let profile = DatasetProfile::femnist();
/// let config = CoordinatorConfig {
///     job_id: 0xF11F,
///     model: profile.model.clone(),
///     algorithm: FlAlgorithm::fedyogi(),
///     rounds: 1,
///     parties_per_round: 2,
///     sketch_dim: 8,
///     codec: ModelCodec::Raw,
///     seed: 7,
/// };
/// let selector = Box::new(RandomSelector::new(6, 7));
/// let test_set = balanced_test_set(&profile, 4, 7);
/// let mut coordinator = Coordinator::new(config, 6, test_set, selector).unwrap();
///
/// let effects = coordinator.open_round().unwrap();
/// assert_eq!(effects.len(), 4, "2 selected parties × (notice + model)");
///
/// // No update arrived before the driver's deadline: the round closes
/// // with every selected party a straggler, and the job (budget 1) ends.
/// let closed = coordinator.handle(Event::DeadlineExpired).unwrap();
/// assert!(closed.iter().any(|e| matches!(e, Effect::RoundClosed(_))));
/// assert!(coordinator.is_finished());
/// ```
pub struct Coordinator {
    config: CoordinatorConfig,
    num_parties: usize,
    selector: Box<dyn ParticipantSelector>,
    server: ServerState,
    global: Vec<f32>,
    eval_model: Box<dyn Model>,
    test_set: Dataset,
    history: History,
    /// Completed rounds.
    round: usize,
    open: Option<OpenRound>,
    finished: bool,
    /// Reused per-update delta buffer for selector sketches.
    delta_buf: Vec<f32>,
    /// Roster availability mask: `active[p]` is flipped by
    /// [`Event::PartyLeft`] / [`Event::PartyJoined`] and filters every
    /// selection (the policy keeps drawing from the full roster so its
    /// random stream — and therefore every seeded history — is
    /// churn-independent).
    active: Vec<bool>,
    /// Every [`RoundFeedback`] delivered to the selector, in order — the
    /// replay tape a checkpoint restore uses to rebuild selector state
    /// deterministically.
    feedback_log: Vec<RoundFeedback>,
    /// Aggregate through the exact fixed-point fold
    /// ([`crate::aggtree`]) instead of the default per-update f64 fold —
    /// the mode that accepts [`WireMessage::PartialUpdate`] tree
    /// partials. See [`Coordinator::set_exact_fold`].
    exact_fold: bool,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("job_id", &self.config.job_id)
            .field("algorithm", &self.config.algorithm)
            .field("selector", &self.selector.name())
            .field("round", &self.round)
            .field("open", &self.open.is_some())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Coordinator {
    /// Creates a coordinator for a roster of `num_parties` parties.
    ///
    /// The global model is initialized from the job seed (paper §2:
    /// agreed at job start), exactly as every party initializes its local
    /// architecture.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for inconsistent inputs (zero
    /// rounds, round size exceeding the roster, selector sized for a
    /// different roster, test set not matching the architecture).
    pub fn new(
        config: CoordinatorConfig,
        num_parties: usize,
        test_set: Dataset,
        selector: Box<dyn ParticipantSelector>,
    ) -> Result<Self, FlError> {
        if num_parties == 0 {
            return Err(FlError::InvalidConfig("no parties".into()));
        }
        if config.parties_per_round == 0 || config.parties_per_round > num_parties {
            return Err(FlError::InvalidConfig(format!(
                "parties_per_round {} must be in 1..={num_parties}",
                config.parties_per_round,
            )));
        }
        if config.rounds == 0 {
            return Err(FlError::InvalidConfig("zero rounds".into()));
        }
        if config.sketch_dim == 0 {
            return Err(FlError::InvalidConfig("sketch_dim must be positive".into()));
        }
        if selector.num_parties() != num_parties {
            return Err(FlError::InvalidConfig(format!(
                "selector sized for {} parties, roster has {num_parties}",
                selector.num_parties(),
            )));
        }
        if test_set.classes != config.model.num_classes()
            || test_set.x.cols() != config.model.input_dim()
        {
            return Err(FlError::InvalidConfig(
                "test set does not match the model architecture".into(),
            ));
        }
        let init_model = config.model.build(&mut seeded(derive_seed(config.seed, 0x6106A1)));
        let global = init_model.params();
        Ok(Coordinator {
            server: ServerState::new(config.algorithm),
            eval_model: init_model,
            selector,
            num_parties,
            test_set,
            global,
            history: History::new(),
            round: 0,
            open: None,
            finished: false,
            delta_buf: Vec::new(),
            active: vec![true; num_parties],
            feedback_log: Vec::new(),
            exact_fold: false,
            config,
        })
    }

    /// Switches this coordinator between the default aggregation path
    /// (per-update f64 weighted fold, sketches against the
    /// *post*-aggregation global) and the **exact-fold** path: every
    /// update folds into one 256-bit fixed-point sum
    /// ([`crate::aggtree::ExactWeightedSum`]) with a single rounding at
    /// close, and feedback sketches are taken against the round's
    /// *dispatched* (pre-aggregation) global.
    ///
    /// Exact mode is what makes aggregation trees pinnable: partials
    /// folded at [`crate::PartyPool`] inner nodes
    /// ([`WireMessage::PartialUpdate`]) merge into the same bits as a
    /// flat exact run regardless of how updates were partitioned — so a
    /// flat exact-fold run is the equivalence oracle for every tree
    /// topology. Default mode ignores tree partials (rejected as
    /// [`RejectReason::WrongDirection`]) and its histories are **not**
    /// comparable to exact-mode histories: the two paths round
    /// differently and sketch against different reference models.
    ///
    /// Flip only between jobs (or before the first round opens) — the
    /// mode is not per-round state and is not checkpointed; a restoring
    /// runtime re-applies it.
    pub fn set_exact_fold(&mut self, on: bool) {
        self.exact_fold = on;
    }

    /// Whether the exact-fold aggregation path is active.
    pub fn exact_fold(&self) -> bool {
        self.exact_fold
    }

    /// The dimension of the update sketches reported to the selector —
    /// tree inner nodes must compute shipped sketches at exactly this
    /// width.
    pub fn sketch_dim(&self) -> usize {
        self.config.sketch_dim
    }

    /// The job identifier stamped on every outbound message.
    pub fn job_id(&self) -> u64 {
        self.config.job_id
    }

    /// The model-payload wire codec this job announces in its selection
    /// notices.
    pub fn codec(&self) -> ModelCodec {
        self.config.codec
    }

    /// Number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether the round budget is exhausted.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The current global model parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// The job history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The open round's cohort in selection order, if a round is open.
    pub fn open_cohort(&self) -> Option<&[PartyId]> {
        self.open.as_ref().map(|o| o.selected.as_slice())
    }

    /// Parties that have acked their selection notice this round.
    pub fn heartbeats_this_round(&self) -> usize {
        self.open.as_ref().map_or(0, |o| o.heartbeats.len())
    }

    /// The roster availability mask — `false` entries have
    /// [left](Event::PartyLeft) and are excluded from selection.
    pub fn active_mask(&self) -> &[bool] {
        &self.active
    }

    /// The selector feedback delivered so far, one entry per closed
    /// round — the checkpoint replay tape.
    pub fn feedback_log(&self) -> &[RoundFeedback] {
        &self.feedback_log
    }

    /// The server optimizer's persistent words (empty for
    /// FedAvg/FedProx) — see [`ServerState::export_optimizer`].
    pub fn export_optimizer(&self) -> Vec<f32> {
        self.server.export_optimizer()
    }

    /// Restores a freshly-constructed coordinator to the state it had
    /// after its last closed round: the history and feedback tapes, the
    /// global model, the server optimizer words and the availability
    /// mask, with the selector rebuilt by *replaying* its event stream
    /// (one `select` + one `report` per closed round) — selectors are
    /// deterministic given seed + feedback, so replay reproduces their
    /// internal state bit-exactly without serializing it.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] when this coordinator already made progress
    /// (restore targets a fresh twin of the crashed instance);
    /// [`FlError::InvalidConfig`] on tape/model/mask shapes that do not
    /// fit this job's configuration. On error the coordinator must be
    /// discarded — the selector may be partially replayed.
    pub fn restore(
        &mut self,
        history: Vec<RoundRecord>,
        feedback: Vec<RoundFeedback>,
        global: Vec<f32>,
        optimizer_state: &[f32],
        active: &[bool],
    ) -> Result<(), FlError> {
        if self.round != 0 || self.open.is_some() || !self.history.is_empty() {
            return Err(FlError::Protocol("restore requires a fresh coordinator".into()));
        }
        if history.len() != feedback.len() {
            return Err(FlError::InvalidConfig(format!(
                "history has {} rounds but feedback has {}",
                history.len(),
                feedback.len()
            )));
        }
        if history.len() > self.config.rounds {
            return Err(FlError::InvalidConfig(format!(
                "snapshot has {} closed rounds, job budget is {}",
                history.len(),
                self.config.rounds
            )));
        }
        if global.len() != self.global.len() {
            return Err(FlError::InvalidConfig(format!(
                "snapshot model has {} params, architecture has {}",
                global.len(),
                self.global.len()
            )));
        }
        if active.len() != self.num_parties {
            return Err(FlError::InvalidConfig(format!(
                "snapshot mask covers {} parties, roster has {}",
                active.len(),
                self.num_parties
            )));
        }
        for (r, fb) in feedback.iter().enumerate() {
            if fb.round != r {
                return Err(FlError::InvalidConfig(format!(
                    "feedback tape out of order: entry {r} is for round {}",
                    fb.round
                )));
            }
        }
        if !self.server.import_optimizer(optimizer_state) {
            return Err(FlError::InvalidConfig(
                "snapshot optimizer state does not fit the algorithm".into(),
            ));
        }
        // Replay the selector's whole life: the pick of each closed
        // round (discarded — the outcome is already on the tape) and the
        // feedback it learned from.
        for (r, fb) in feedback.iter().enumerate() {
            let _ = self.selector.select(r, self.config.parties_per_round)?;
            self.selector.report(fb);
        }
        // Availability is re-announced after replay so a policy that
        // listens sees the roster as it stood at the checkpoint.
        for (p, &a) in active.iter().enumerate() {
            if !a {
                self.selector.set_available(p, false);
            }
        }
        self.global = global;
        self.eval_model.set_params(&self.global)?;
        self.round = history.len();
        self.finished = self.round == self.config.rounds;
        self.history = History::new();
        for record in history {
            self.history.push(record);
        }
        self.feedback_log = feedback;
        self.active = active.to_vec();
        Ok(())
    }

    /// Opens the next round: runs the selection policy and emits one
    /// [`WireMessage::SelectionNotice`] and one
    /// [`WireMessage::GlobalModel`] per selected party.
    ///
    /// The selector's output is guarded: duplicate ids are dropped
    /// (keeping first occurrence, preserving selection order) and
    /// out-of-roster ids are a hard error — a policy bug must not corrupt
    /// the round.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] if a round is already open or the job
    /// finished; [`FlError::InvalidConfig`] for out-of-roster selections;
    /// selection failures propagate.
    pub fn open_round(&mut self) -> Result<Vec<Effect>, FlError> {
        if self.finished {
            return Err(FlError::Protocol("job finished: no more rounds to open".into()));
        }
        if let Some(open) = &self.open {
            return Err(FlError::Protocol(format!("round {} is already open", open.round)));
        }
        let raw = self.selector.select(self.round, self.config.parties_per_round)?;
        let mut seen = HashSet::with_capacity(raw.len());
        let mut selected = Vec::with_capacity(raw.len());
        for p in raw {
            if p >= self.num_parties {
                return Err(FlError::InvalidConfig(format!(
                    "selector returned party {p}, roster has {}",
                    self.num_parties
                )));
            }
            if seen.insert(p) {
                selected.push(p);
            }
        }
        if selected.is_empty() {
            return Err(FlError::InvalidConfig("selector returned no parties".into()));
        }
        // Churn filter: departed parties drop out of the pick (selection
        // order preserved; the policy's stream is never perturbed). If
        // churn emptied the pick entirely, fall back to the first `Nr`
        // available slots in index order so the job keeps making
        // progress as long as anyone is left.
        if self.active.iter().any(|&a| !a) {
            selected.retain(|&p| self.active[p]);
            if selected.is_empty() {
                selected = (0..self.num_parties)
                    .filter(|&p| self.active[p])
                    .take(self.config.parties_per_round)
                    .collect();
            }
            if selected.is_empty() {
                return Err(FlError::Protocol(
                    "no parties available: the whole roster left".into(),
                ));
            }
        }

        let round = self.round as u64;
        let job = self.config.job_id;
        let mut effects = Vec::with_capacity(2 * selected.len());
        let mut bytes_down = 0u64;
        // ONE shared copy of the round's parameters: every dispatched
        // model clones the `Arc`, not the floats (the per-dispatch
        // `Vec<f32>` clone was the protocol layer's last hot-path
        // allocation — see PERFORMANCE.md).
        let params: std::sync::Arc<[f32]> = std::sync::Arc::from(self.global.as_slice());
        for &p in &selected {
            let notice = WireMessage::SelectionNotice {
                job,
                round,
                party: p as u64,
                codec: self.config.codec,
            };
            let model =
                WireMessage::GlobalModel { job, round, params: std::sync::Arc::clone(&params) };
            bytes_down += (notice.wire_size() + model.wire_size()) as u64;
            effects.push(Effect::Send { to: p, msg: notice });
            effects.push(Effect::Send { to: p, msg: model });
        }
        self.open = Some(OpenRound {
            round,
            selected_set: selected.iter().copied().collect(),
            pending: selected.iter().copied().collect(),
            selected,
            updates: Vec::new(),
            dropped: HashSet::new(),
            heartbeats: HashSet::new(),
            partial: None,
            shipped_sketches: HashMap::new(),
            bytes_down,
            bytes_up: 0,
        });
        Ok(effects)
    }

    /// Feeds one event into the state machine.
    ///
    /// Invalid inbound messages never corrupt state — they surface as
    /// [`Effect::Rejected`] and the round continues. A deadline with no
    /// open round is a benign no-op (timers may fire late).
    ///
    /// # Errors
    ///
    /// Only aggregation/evaluation failures at round close propagate.
    pub fn handle(&mut self, event: Event) -> Result<Vec<Effect>, FlError> {
        match event {
            Event::UpdateReceived(msg) => self.handle_message(msg),
            Event::PartyDropped(party) => {
                let Some(open) = &mut self.open else { return Ok(Vec::new()) };
                if open.selected_set.contains(&party) && open.pending.remove(&party) {
                    open.dropped.insert(party);
                    if open.pending.is_empty() {
                        return self.close_round();
                    }
                }
                Ok(Vec::new())
            }
            Event::DeadlineExpired => {
                if self.open.is_some() {
                    self.close_round()
                } else {
                    Ok(Vec::new())
                }
            }
            Event::PartyJoined(party) => {
                // Only a known roster slot can (re)join; an unknown id is
                // a benign no-op, as is a join of an already-active slot.
                if party < self.num_parties && !self.active[party] {
                    self.active[party] = true;
                    self.selector.set_available(party, true);
                }
                Ok(Vec::new())
            }
            Event::PartyLeft(party) => {
                if party < self.num_parties && self.active[party] {
                    self.active[party] = false;
                    self.selector.set_available(party, false);
                    // Departure mid-round doubles as a drop: the open
                    // round stops waiting and closes it out as a
                    // straggler.
                    return self.handle(Event::PartyDropped(party));
                }
                Ok(Vec::new())
            }
        }
    }

    fn handle_message(&mut self, msg: WireMessage) -> Result<Vec<Effect>, FlError> {
        let reject = |party: Option<PartyId>, round: u64, reason: RejectReason| {
            Ok(vec![Effect::Rejected { party, round, reason }])
        };
        match msg {
            WireMessage::LocalUpdate {
                job,
                round,
                party,
                num_samples,
                mean_loss,
                duration,
                params,
            } => {
                let pid = party as PartyId;
                let some = Some(pid);
                if job != self.config.job_id {
                    return reject(some, round, RejectReason::WrongJob);
                }
                let Some(open) = &mut self.open else {
                    return reject(some, round, RejectReason::NoOpenRound);
                };
                if round != open.round {
                    return reject(some, round, RejectReason::WrongRound);
                }
                if party >= self.num_parties as u64 || !open.selected_set.contains(&pid) {
                    return reject(some, round, RejectReason::NotSelected);
                }
                if open.dropped.contains(&pid) {
                    return reject(some, round, RejectReason::PartyDropped);
                }
                if open.updates.iter().any(|(p, _)| *p == pid) {
                    return reject(some, round, RejectReason::DuplicateUpdate);
                }
                if params.len() != self.global.len() {
                    return reject(some, round, RejectReason::WrongModelSize);
                }
                // The exact fold's domain is narrower than f32: a
                // non-finite or astronomically-scaled parameter (or a
                // weight outside 1..2³²) must bounce at the door, not
                // error the whole round at close. (Default mode keeps
                // its historical tolerance — goldens are pinned on it.)
                if self.exact_fold
                    && (num_samples == 0
                        || num_samples >= 1 << 32
                        || params.iter().any(|x| !crate::aggtree::param_in_domain(*x)))
                {
                    return reject(some, round, RejectReason::WrongModelSize);
                }
                open.bytes_up += crate::message::local_update_bytes(params.len()) as u64;
                open.pending.remove(&pid);
                open.updates.push((
                    pid,
                    LocalUpdate { params, num_samples: num_samples as usize, mean_loss, duration },
                ));
                if open.pending.is_empty() {
                    return self.close_round();
                }
                Ok(Vec::new())
            }
            WireMessage::PartialUpdate { job, round, total_weight, entries, dim, limbs } => {
                // The aggregation-tree uplink: a pre-folded partial
                // covering several parties. Container-level problems
                // reject once with no sender (the frame is the inner
                // node's, not any one party's); entry-level problems
                // reject per covered party and discard the whole partial
                // unmerged — a folded sum cannot exclude one bad entry,
                // and an inner-node bug must not corrupt the aggregate.
                if job != self.config.job_id {
                    return reject(None, round, RejectReason::WrongJob);
                }
                if !self.exact_fold {
                    // Only the exact-fold path can merge partials; on a
                    // default-mode coordinator the frame is a protocol-
                    // shape violation, not data.
                    return reject(None, round, RejectReason::WrongDirection);
                }
                let Some(open) = &mut self.open else {
                    return reject(None, round, RejectReason::NoOpenRound);
                };
                if round != open.round {
                    return reject(None, round, RejectReason::WrongRound);
                }
                if dim as usize != self.global.len() || limbs.len() != dim as usize * 4 {
                    return reject(None, round, RejectReason::WrongModelSize);
                }
                if entries.is_empty() {
                    // Nothing folded in: benign no-op (an inner node may
                    // flush an empty cycle).
                    return Ok(Vec::new());
                }
                let mut effects = Vec::new();
                let mut weight_sum = 0u64;
                let mut seen = HashSet::with_capacity(entries.len());
                for e in &entries {
                    let pid = e.party as PartyId;
                    let bad = if e.party >= self.num_parties as u64
                        || !open.selected_set.contains(&pid)
                    {
                        Some(RejectReason::NotSelected)
                    } else if open.dropped.contains(&pid) {
                        Some(RejectReason::PartyDropped)
                    } else if !seen.insert(pid) || open.updates.iter().any(|(p, _)| *p == pid) {
                        Some(RejectReason::DuplicateUpdate)
                    } else if e.sketch.len() != self.config.sketch_dim {
                        Some(RejectReason::WrongModelSize)
                    } else {
                        None
                    };
                    if let Some(reason) = bad {
                        effects.push(Effect::Rejected { party: Some(pid), round, reason });
                    }
                    weight_sum = weight_sum.saturating_add(e.num_samples);
                }
                if !effects.is_empty() {
                    return Ok(effects);
                }
                // The declared fold weight must equal the entries' sum
                // (a skewed weight would silently bias the mean), and
                // the limb block must rebuild into a mergeable sum.
                let partial = if total_weight == weight_sum {
                    ExactWeightedSum::from_raw(&limbs, total_weight, entries.len() as u64).ok()
                } else {
                    None
                };
                let Some(partial) = partial else {
                    return reject(None, round, RejectReason::WrongModelSize);
                };
                match &mut open.partial {
                    Some(sum) => {
                        if sum.merge(&partial).is_err() {
                            return reject(None, round, RejectReason::WrongModelSize);
                        }
                    }
                    None => open.partial = Some(partial),
                }
                for e in entries {
                    let pid = e.party as PartyId;
                    // Byte accounting stays raw-canonical: each covered
                    // update counts as if it had traveled flat, so tree
                    // and flat histories agree on bytes_up.
                    open.bytes_up += crate::message::local_update_bytes(dim as usize) as u64;
                    open.pending.remove(&pid);
                    open.updates.push((
                        pid,
                        LocalUpdate {
                            params: Vec::new(),
                            num_samples: e.num_samples as usize,
                            mean_loss: e.mean_loss,
                            duration: e.duration,
                        },
                    ));
                    open.shipped_sketches.insert(pid, e.sketch);
                }
                if open.pending.is_empty() {
                    return self.close_round();
                }
                Ok(Vec::new())
            }
            WireMessage::Heartbeat { job, round, party } => {
                let pid = party as PartyId;
                if job != self.config.job_id {
                    return reject(Some(pid), round, RejectReason::WrongJob);
                }
                let Some(open) = &mut self.open else {
                    return reject(Some(pid), round, RejectReason::NoOpenRound);
                };
                if round != open.round {
                    return reject(Some(pid), round, RejectReason::WrongRound);
                }
                if !open.selected_set.contains(&pid) {
                    return reject(Some(pid), round, RejectReason::NotSelected);
                }
                // Idempotent: an at-least-once transport may redeliver
                // the ack within the deadline window, and a duplicate
                // must not inflate the round's byte accounting (the
                // transport suite pins histories bit-identical under
                // duplicate delivery).
                if open.heartbeats.insert(pid) {
                    open.bytes_up += crate::message::heartbeat_bytes() as u64;
                }
                Ok(Vec::new())
            }
            WireMessage::Abort { job, round, party, .. } => {
                // A party withdrawing is equivalent to the transport
                // losing it — but only a *this-job* abort may mutate
                // round state; foreign traffic bounces like any other
                // message.
                let pid = party as PartyId;
                if job != self.config.job_id {
                    return reject(Some(pid), round, RejectReason::WrongJob);
                }
                let Some(open_round) = self.open.as_ref().map(|o| o.round) else {
                    return reject(Some(pid), round, RejectReason::NoOpenRound);
                };
                if round == open_round {
                    self.handle(Event::PartyDropped(pid))
                } else {
                    reject(Some(pid), round, RejectReason::WrongRound)
                }
            }
            WireMessage::SelectionNotice { round, party, .. } => {
                reject(Some(party as PartyId), round, RejectReason::WrongDirection)
            }
            WireMessage::GlobalModel { round, .. } => {
                reject(None, round, RejectReason::WrongDirection)
            }
        }
    }

    /// Closes the open round: aggregates accepted updates in party-id
    /// order, evaluates on the aggregator-held balanced test set, feeds
    /// the selector, records the round and tells stragglers to abort.
    fn close_round(&mut self) -> Result<Vec<Effect>, FlError> {
        let mut open = self.open.take().expect("close_round requires an open round");
        let round = self.round;

        // Deterministic aggregation order, independent of arrival order.
        open.updates.sort_by_key(|(p, _)| *p);
        let completed: Vec<PartyId> = open.updates.iter().map(|(p, _)| *p).collect();
        let completed_set: HashSet<PartyId> = completed.iter().copied().collect();
        let stragglers: Vec<PartyId> =
            open.selected.iter().copied().filter(|p| !completed_set.contains(p)).collect();

        // Aggregate and advance the global model (a fully-straggled round
        // leaves the model unchanged, as a real aggregator would
        // resample). Updates are aggregated by reference — no
        // parameter-vector clones.
        let mean_train_loss = if open.updates.is_empty() {
            0.0
        } else if self.exact_fold {
            // Exact-fold path: flat updates and tree partials meet in one
            // associative 256-bit sum, so any partition of the cohort
            // across inner nodes lands on the same bits. Feedback
            // sketches are taken against the *dispatched* global before
            // it advances — the same reference a tree inner node used
            // for the shipped ones.
            for (p, u) in &open.updates {
                if !u.params.is_empty() {
                    self.delta_buf.clear();
                    self.delta_buf.extend(u.params.iter().zip(&self.global).map(|(x, g)| x - g));
                    open.shipped_sketches
                        .insert(*p, sketch_update(&self.delta_buf, self.config.sketch_dim));
                }
            }
            let mut sum = ExactWeightedSum::new(self.global.len());
            for (_, u) in &open.updates {
                if !u.params.is_empty() {
                    sum.fold(&u.params, u.num_samples as u64)?;
                }
            }
            if let Some(partial) = &open.partial {
                sum.merge(partial)?;
            }
            let mut accum = Vec::with_capacity(self.global.len());
            sum.finish_into(&mut accum)?;
            self.server.apply_aggregate(&mut self.global, &accum)?;
            open.updates.iter().map(|(_, u)| u.mean_loss).sum::<f64>() / open.updates.len() as f64
        } else {
            let locals: Vec<&LocalUpdate> = open.updates.iter().map(|(_, u)| u).collect();
            self.server.apply_round_refs(&mut self.global, &locals)?;
            locals.iter().map(|u| u.mean_loss).sum::<f64>() / locals.len() as f64
        };

        // Evaluate on the aggregator-held balanced test set (§4.4).
        self.eval_model.set_params(&self.global)?;
        let predictions = flips_ml::model::predict(self.eval_model.as_ref(), &self.test_set.x);
        let cm = ConfusionMatrix::from_predictions(
            self.test_set.classes,
            &self.test_set.y,
            &predictions,
        );
        let accuracy = cm.balanced_accuracy();

        let round_duration = open.updates.iter().map(|(_, u)| u.duration).fold(0.0, f64::max);

        // Selector feedback — the round-close event is the only channel
        // through which policies learn.
        let mut feedback = RoundFeedback::for_round(
            round,
            open.selected.clone(),
            completed.clone(),
            stragglers.clone(),
            accuracy,
        );
        for (p, u) in &open.updates {
            feedback.train_loss.insert(*p, u.mean_loss);
            feedback.duration.insert(*p, u.duration);
            if self.exact_fold {
                // Pre-aggregation sketches: computed above for flat
                // updates, shipped inside the partial for tree-covered
                // parties — the two sources are bitwise interchangeable.
                let sketch = open
                    .shipped_sketches
                    .remove(p)
                    .unwrap_or_else(|| sketch_update(&[], self.config.sketch_dim));
                feedback.update_sketch.insert(*p, sketch);
            } else {
                // Reusable delta buffer — the sketch is the only per-party
                // allocation left, and it is handed to the selector.
                self.delta_buf.clear();
                self.delta_buf.extend(u.params.iter().zip(&self.global).map(|(x, g)| x - g));
                feedback
                    .update_sketch
                    .insert(*p, sketch_update(&self.delta_buf, self.config.sketch_dim));
            }
        }
        self.feedback_log.push(feedback.clone());
        self.selector.report(&feedback);

        // Stragglers are told to stop working on the now-closed round.
        let mut effects: Vec<Effect> = Vec::with_capacity(stragglers.len() + 2);
        for &p in &stragglers {
            let msg = WireMessage::Abort {
                job: self.config.job_id,
                round: open.round,
                party: p as u64,
                reason: "deadline expired".into(),
            };
            open.bytes_down += msg.wire_size() as u64;
            effects.push(Effect::Send { to: p, msg });
        }

        let record = RoundRecord {
            round,
            selected: open.selected,
            completed,
            stragglers,
            accuracy,
            per_label_recall: cm.recalls(),
            mean_train_loss,
            bytes_down: open.bytes_down,
            bytes_up: open.bytes_up,
            round_duration,
        };
        self.history.push(record.clone());
        self.round += 1;
        effects.push(Effect::RoundClosed(record));
        if self.round == self.config.rounds {
            self.finished = true;
            effects.push(Effect::JobFinished(self.history.clone()));
        }
        Ok(effects)
    }
}
