//! The platform-heterogeneity model.
//!
//! Real FL deployments span devices of wildly different capability (paper
//! §2.3). This model assigns each party a multiplicative **speed factor**
//! drawn log-normally — a standard heavy-tailed fit for device populations
//! — and derives a simulated round duration from the party's sample count.
//! Oort's system utility and TiFL's tiers both consume these durations.
//!
//! The model is consumed from two directions:
//!
//! - *a priori* by selectors that profile device speed (TiFL's tiers,
//!   Oort's system utility) and by the legacy straggler injector's
//!   slow-biased victim draw;
//! - *a posteriori* through [`ObservedLatency`]: drivers feed every
//!   round-trip duration a party actually reports back into a per-job
//!   sample set, and the [`crate::config::DeadlinePolicy`] derives the
//!   next round's deadline from those observations — the straggler model
//!   the paper injects synthetically becomes an emergent property of the
//!   measured population.

use flips_ml::rng::{derive_seed, normal, seeded};
use serde::{Deserialize, Serialize};

/// Per-party simulated compute latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Seconds of compute per training sample per epoch on a speed-1
    /// device.
    pub per_sample_cost: f64,
    /// Fixed per-round overhead (startup + network), seconds.
    pub fixed_cost: f64,
    /// Speed factor per party (1.0 = reference device; larger = slower).
    speed: Vec<f64>,
}

impl LatencyModel {
    /// Samples a heterogeneity model for `num_parties` parties.
    ///
    /// `sigma` is the log-normal shape parameter; 0 makes all parties
    /// identical, 0.5 gives a realistic ~5× spread between fast and slow
    /// devices.
    pub fn sample(num_parties: usize, sigma: f64, seed: u64) -> Self {
        let mut rng = seeded(derive_seed(seed, 0x01A7_E9C7));
        let speed = (0..num_parties).map(|_| normal(&mut rng, 0.0, sigma).exp()).collect();
        LatencyModel { per_sample_cost: 1e-4, fixed_cost: 0.05, speed }
    }

    /// A homogeneous model (all parties speed 1).
    pub fn uniform(num_parties: usize) -> Self {
        LatencyModel { per_sample_cost: 1e-4, fixed_cost: 0.05, speed: vec![1.0; num_parties] }
    }

    /// A model with explicitly given per-party speed factors.
    ///
    /// # Panics
    ///
    /// Panics if any speed factor is non-positive.
    pub fn with_speeds(speed: Vec<f64>) -> Self {
        assert!(speed.iter().all(|&s| s > 0.0), "speed factors must be positive");
        LatencyModel { per_sample_cost: 1e-4, fixed_cost: 0.05, speed }
    }

    /// Number of parties covered.
    pub fn num_parties(&self) -> usize {
        self.speed.len()
    }

    /// The speed factor of a party.
    pub fn speed_factor(&self, party: usize) -> f64 {
        self.speed[party]
    }

    /// Simulated duration of `epochs` local epochs over `num_samples`
    /// samples at `party`.
    pub fn duration(&self, party: usize, num_samples: usize, epochs: usize) -> f64 {
        self.fixed_cost + self.speed[party] * self.per_sample_cost * (num_samples * epochs) as f64
    }

    /// Per-party durations for a fixed workload — TiFL's profiling pass.
    pub fn profile(&self, samples_per_party: &[usize], epochs: usize) -> Vec<f64> {
        assert_eq!(samples_per_party.len(), self.speed.len(), "profile length mismatch");
        (0..self.speed.len()).map(|p| self.duration(p, samples_per_party[p], epochs)).collect()
    }
}

/// Round-trip latency samples observed on a live job.
///
/// Every [`crate::WireMessage::LocalUpdate`] reports the simulated
/// duration of the round trip that produced it (dispatch → local
/// training → reply). Drivers record each one here, and the
/// [`crate::config::DeadlinePolicy`] turns the accumulated sample set
/// into the next round's deadline.
///
/// Order independence is load-bearing: sharded drivers observe the same
/// *multiset* of samples in a nondeterministic *order*, so every derived
/// statistic must be a pure function of the multiset. [`quantile`]
/// guarantees that by sorting internally.
///
/// [`quantile`]: ObservedLatency::quantile
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservedLatency {
    /// All samples, in arrival order (never consulted in that order).
    samples: Vec<f64>,
    /// Scratch for quantile extraction, sorted on demand.
    sorted: Vec<f64>,
    /// Samples appended since `sorted` was last rebuilt.
    dirty: bool,
    /// Batch boundaries (end indices into `samples`), sealed by
    /// [`ObservedLatency::seal_batch`] at round opens. The EWMA policy
    /// smooths over per-batch means, so the boundaries — not arrival
    /// order — are what must be deterministic.
    batches: Vec<usize>,
}

impl ObservedLatency {
    /// An empty sample set.
    pub fn new() -> Self {
        ObservedLatency::default()
    }

    /// Records one observed round-trip duration (seconds).
    ///
    /// Non-finite or negative samples are ignored — a corrupt wire
    /// message must not be able to poison the deadline statistics.
    pub fn record(&mut self, duration: f64) {
        if duration.is_finite() && duration >= 0.0 {
            self.samples.push(duration);
            self.dirty = true;
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples in arrival order plus the sealed batch
    /// boundaries — everything a checkpoint needs to rebuild this
    /// sample set bit-exactly via [`ObservedLatency::from_parts`].
    pub fn parts(&self) -> (&[f64], &[usize]) {
        (&self.samples, &self.batches)
    }

    /// Rebuilds a sample set from [`ObservedLatency::parts`] output.
    /// Returns `None` when the boundaries are not ascending end indices
    /// into `samples` — a corrupt snapshot must not produce a sample
    /// set the policies would misread.
    pub fn from_parts(samples: Vec<f64>, batches: Vec<usize>) -> Option<Self> {
        let ascending = batches.windows(2).all(|w| w[0] <= w[1])
            && batches.last().is_none_or(|&b| b <= samples.len());
        if !ascending || samples.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return None;
        }
        Some(ObservedLatency { dirty: !samples.is_empty(), samples, sorted: Vec::new(), batches })
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the observed samples, or `None`
    /// while no sample exists. Uses the nearest-rank method on the
    /// sorted multiset, so the result is independent of arrival order —
    /// the property that lets sharded and single-threaded drivers derive
    /// identical deadlines.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if self.dirty {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
            self.dirty = false;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Seals the samples recorded since the last seal into one batch
    /// (a no-op when nothing new arrived, so replaying a policy query
    /// never perturbs the batch structure). Drivers call this once per
    /// round open — a deterministic point — giving every execution mode
    /// identical batch boundaries.
    pub fn seal_batch(&mut self) {
        let end = self.samples.len();
        if self.batches.last().copied().unwrap_or(0) < end {
            self.batches.push(end);
        }
    }

    /// Batches sealed so far.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// The exponentially weighted moving average of the per-batch mean
    /// durations (`alpha` = weight of the newest batch), or `None`
    /// while no batch holds a sample. Unsealed tail samples count as
    /// one provisional batch.
    ///
    /// Bit-exact order independence is load-bearing here exactly as in
    /// [`ObservedLatency::quantile`]: each batch mean is summed over the
    /// batch's samples in *sorted* order (f64 addition does not
    /// associate), so sharded drivers — which observe a batch's multiset
    /// in nondeterministic order — derive the identical deadline.
    pub fn ewma(&self, alpha: f64) -> Option<f64> {
        let mut scratch = Vec::new();
        let mut start = 0usize;
        let mut smoothed: Option<f64> = None;
        let ends = self.batches.iter().copied().chain(
            (self.batches.last().copied().unwrap_or(0) < self.samples.len())
                .then_some(self.samples.len()),
        );
        for end in ends {
            scratch.clear();
            scratch.extend_from_slice(&self.samples[start..end]);
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
            let mean = scratch.iter().sum::<f64>() / scratch.len() as f64;
            smoothed = Some(match smoothed {
                None => mean,
                Some(prev) => alpha * mean + (1.0 - alpha) * prev,
            });
            start = end;
        }
        smoothed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_parties_have_identical_durations() {
        let m = LatencyModel::uniform(5);
        let d: Vec<f64> = (0..5).map(|p| m.duration(p, 100, 2)).collect();
        assert!(d.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    }

    #[test]
    fn duration_scales_with_work() {
        let m = LatencyModel::uniform(1);
        assert!(m.duration(0, 200, 2) > m.duration(0, 100, 2));
        assert!(m.duration(0, 100, 4) > m.duration(0, 100, 2));
    }

    #[test]
    fn sampled_model_is_heterogeneous_and_positive() {
        let m = LatencyModel::sample(100, 0.5, 42);
        let speeds: Vec<f64> = (0..100).map(|p| m.speed_factor(p)).collect();
        assert!(speeds.iter().all(|&s| s > 0.0));
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "spread {max}/{min} too small for sigma 0.5");
    }

    #[test]
    fn sigma_zero_degenerates_to_uniform() {
        let m = LatencyModel::sample(10, 0.0, 1);
        for p in 0..10 {
            assert!((m.speed_factor(p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        assert_eq!(LatencyModel::sample(20, 0.5, 7), LatencyModel::sample(20, 0.5, 7));
        assert_ne!(LatencyModel::sample(20, 0.5, 7), LatencyModel::sample(20, 0.5, 8));
    }

    #[test]
    fn profile_covers_all_parties() {
        let m = LatencyModel::sample(4, 0.3, 3);
        let prof = m.profile(&[10, 20, 30, 40], 2);
        assert_eq!(prof.len(), 4);
        assert!(prof.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn observed_quantiles_are_order_independent() {
        let mut forward = ObservedLatency::new();
        let mut backward = ObservedLatency::new();
        let samples = [0.5, 0.1, 0.9, 0.3, 0.7];
        for &s in &samples {
            forward.record(s);
        }
        for &s in samples.iter().rev() {
            backward.record(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(forward.quantile(q), backward.quantile(q), "q = {q}");
        }
        assert_eq!(forward.quantile(0.5), Some(0.5));
        assert_eq!(forward.quantile(1.0), Some(0.9));
        assert_eq!(forward.quantile(0.0), Some(0.1));
    }

    #[test]
    fn observed_is_empty_until_a_sample_arrives() {
        let mut obs = ObservedLatency::new();
        assert!(obs.is_empty());
        assert_eq!(obs.quantile(0.5), None);
        obs.record(0.2);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.quantile(0.5), Some(0.2));
    }

    #[test]
    fn hostile_samples_are_ignored() {
        let mut obs = ObservedLatency::new();
        obs.record(f64::NAN);
        obs.record(f64::INFINITY);
        obs.record(-1.0);
        assert!(obs.is_empty(), "non-finite/negative samples must not poison the stats");
        obs.record(0.4);
        obs.record(f64::NAN);
        assert_eq!(obs.quantile(1.0), Some(0.4));
    }

    #[test]
    fn ewma_is_order_independent_within_batches() {
        // Same batches, different arrival order inside each — the bit
        // pattern of the smoothed mean must not move.
        let mut forward = ObservedLatency::new();
        let mut backward = ObservedLatency::new();
        for batch in [[0.5, 0.1, 0.9], [0.3, 0.7, 0.2]] {
            for &s in &batch {
                forward.record(s);
            }
            for &s in batch.iter().rev() {
                backward.record(s);
            }
            forward.seal_batch();
            backward.seal_batch();
        }
        let (a, b) = (forward.ewma(0.3).unwrap(), backward.ewma(0.3).unwrap());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn ewma_weights_recent_batches_by_alpha() {
        let mut obs = ObservedLatency::new();
        assert_eq!(obs.ewma(0.5), None, "no samples, no average");
        obs.record(0.2);
        obs.seal_batch();
        assert_eq!(obs.ewma(0.5), Some(0.2), "one batch: its mean");
        obs.record(1.0);
        obs.seal_batch();
        assert_eq!(obs.ewma(0.5), Some(0.6), "0.5·1.0 + 0.5·0.2");
        assert_eq!(obs.ewma(1.0), Some(1.0), "alpha 1 tracks only the newest batch");
    }

    #[test]
    fn unsealed_tail_counts_as_a_provisional_batch() {
        let mut obs = ObservedLatency::new();
        obs.record(0.2);
        obs.seal_batch();
        obs.record(0.8);
        assert_eq!(obs.ewma(0.5), Some(0.5), "tail batch participates");
        obs.seal_batch();
        assert_eq!(obs.ewma(0.5), Some(0.5), "sealing the tail changes nothing");
        assert_eq!(obs.num_batches(), 2);
    }

    #[test]
    fn sealing_with_no_new_samples_is_a_no_op() {
        let mut obs = ObservedLatency::new();
        obs.seal_batch();
        assert_eq!(obs.num_batches(), 0, "an empty set seals nothing");
        obs.record(0.4);
        obs.seal_batch();
        obs.seal_batch();
        obs.seal_batch();
        assert_eq!(obs.num_batches(), 1, "replayed seals must not split batches");
    }

    #[test]
    fn quantile_tracks_samples_recorded_after_a_query() {
        // The sorted cache must invalidate on new samples.
        let mut obs = ObservedLatency::new();
        obs.record(0.1);
        assert_eq!(obs.quantile(1.0), Some(0.1));
        obs.record(0.9);
        assert_eq!(obs.quantile(1.0), Some(0.9));
    }
}
