//! Frame-oriented byte transports for the FL wire protocol.
//!
//! A [`Transport`] moves opaque frames — [`crate::message::frame`]d,
//! [`crate::WireMessage::encode`]d bytes — between the aggregator driver
//! and the party side. Unlike the in-process [`crate::FlJob`] path, **every**
//! message that crosses a transport exists as serialized bytes, so the
//! codec (and its rejection of corrupt traffic) is exercised end to end.
//!
//! Two implementations are provided:
//!
//! - [`MemoryTransport`] — a pair of in-memory frame queues. Frames stay
//!   intact (the queue is the framing); handles are cloneable so tests
//!   can inject or observe traffic on a live link.
//! - [`StreamTransport`] — length-prefix framing over any
//!   `Read + Write` byte stream: a `std::net::TcpStream` in nonblocking
//!   mode, or the in-process [`duplex`] pipe for deterministic tests.
//!
//! All transports here are *polled*: [`Transport::try_recv`] returns
//! `Ok(None)` when no complete frame is available instead of blocking.
//! That keeps drivers lock-step-schedulable (the
//! [`crate::driver::MultiJobDriver`] advances its timer wheel only when
//! the wire is quiet), which is what makes serialized runs bit-exactly
//! reproducible.

use crate::FlError;
use bytes::Bytes;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::sync::{Arc, Mutex};

/// Frames larger than this are rejected before allocation — no legal
/// message in this workspace approaches 256 MiB, so a corrupt length
/// prefix cannot make a receiver balloon.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// A bidirectional, frame-oriented byte channel.
///
/// # Example
///
/// The in-memory pair is the simplest implementation — frames travel
/// intact and in order, and an empty queue reads as `None` rather than
/// blocking:
///
/// ```
/// use flips_fl::{MemoryTransport, Transport};
///
/// let (mut a, mut b) = MemoryTransport::pair();
/// a.send(b"frame-1").unwrap();
/// let frame = b.try_recv().unwrap().expect("one frame queued");
/// assert_eq!(frame.as_slice(), b"frame-1");
/// assert!(b.try_recv().unwrap().is_none(), "polled, never blocks");
/// ```
///
/// A transport is usually one point-to-point link, but it may
/// *multiplex several independent links* behind one interface — the
/// sharded runtime's [`crate::runtime::ShardRouter`] fans one logical
/// wire out across N worker-shard links. Stateful payload codecs (the
/// delta reference of [`crate::ModelCodec::DeltaLossless`]) are
/// per-link state, so multi-link transports must expose their topology:
/// [`Transport::links`] declares how many links exist,
/// [`Transport::link_for`] routes an outbound `(job, destination)` to
/// its link, and [`Transport::try_recv_tagged`] attributes each inbound
/// frame to the link it arrived on. Point-to-point transports keep the
/// defaults (a single link `0`).
pub trait Transport {
    /// Queues one frame for the peer.
    ///
    /// Takes a borrowed frame so senders can encode into a reused
    /// scratch buffer: a transport that must own the bytes (the
    /// in-memory queue) copies once here, while a stream transport
    /// writes them straight through with no allocation at all.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] when the underlying channel cannot
    /// accept the frame (closed pipe, I/O error).
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError>;

    /// Receives the next complete frame, or `None` when nothing is
    /// currently available (never blocks).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] on I/O failure or a frame whose
    /// length prefix exceeds [`MAX_FRAME_BYTES`].
    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError>;

    /// Number of independent links this transport multiplexes (1 for a
    /// point-to-point channel). Senders keep per-link codec state sized
    /// by this.
    fn links(&self) -> usize {
        1
    }

    /// The link that will carry an outbound frame for `(job, dest)`.
    /// Must be below [`Transport::links`].
    fn link_for(&self, _job: u64, _dest: u64) -> usize {
        0
    }

    /// Receives the next complete frame together with the link it
    /// arrived on. The default wraps [`Transport::try_recv`] with link
    /// `0`; multi-link transports must override it.
    ///
    /// # Errors
    ///
    /// As [`Transport::try_recv`].
    fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
        Ok(self.try_recv()?.map(|frame| (0, frame)))
    }
}

/// Shared queue of one direction of a memory link.
type FrameQueue = Arc<Mutex<VecDeque<Bytes>>>;

/// An in-memory transport endpoint: what this end sends, the peer
/// receives, in order, intact.
///
/// Cloning an endpoint yields another handle onto the *same* queues —
/// the fault-injection tests use a clone to slip corrupt or duplicate
/// frames onto a live link without disturbing the real endpoints.
#[derive(Clone)]
pub struct MemoryTransport {
    outbound: FrameQueue,
    inbound: FrameQueue,
}

impl std::fmt::Debug for MemoryTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryTransport")
            .field("queued_in", &self.inbound.lock().map(|q| q.len()).unwrap_or(0))
            .finish()
    }
}

impl MemoryTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (MemoryTransport, MemoryTransport) {
        let a_to_b: FrameQueue = Arc::new(Mutex::new(VecDeque::new()));
        let b_to_a: FrameQueue = Arc::new(Mutex::new(VecDeque::new()));
        (
            MemoryTransport { outbound: Arc::clone(&a_to_b), inbound: Arc::clone(&b_to_a) },
            MemoryTransport { outbound: b_to_a, inbound: a_to_b },
        )
    }

    /// Frames waiting to be received on this end.
    pub fn pending(&self) -> usize {
        self.inbound.lock().map(|q| q.len()).unwrap_or(0)
    }
}

impl Transport for MemoryTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.outbound
            .lock()
            .map_err(|_| FlError::Transport("memory channel poisoned".into()))?
            .push_back(Bytes::from(frame.to_vec()));
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        Ok(self
            .inbound
            .lock()
            .map_err(|_| FlError::Transport("memory channel poisoned".into()))?
            .pop_front())
    }
}

/// Length-prefix framing over a byte stream: each frame travels as a
/// little-endian `u32` length followed by that many payload bytes.
///
/// The stream must be *nonblocking* (reads return
/// [`ErrorKind::WouldBlock`] when no bytes are available) — both the
/// in-process [`duplex`] pipe and a `TcpStream` after
/// `set_nonblocking(true)` qualify. Partial frames are reassembled
/// across calls, so a frame split by the kernel's socket buffering
/// decodes exactly once, whole.
pub struct StreamTransport<S> {
    stream: S,
    /// Reassembly buffer; consumed frames advance `cursor` instead of
    /// shifting the buffer, so a burst of frames is extracted in O(n)
    /// total (the buffer compacts once fully drained).
    pending: Vec<u8>,
    cursor: usize,
    /// The stream reported end-of-file: the peer is gone for good.
    eof: bool,
    /// Scratch buffer for `read` calls.
    chunk: Box<[u8; 16 * 1024]>,
    /// Receive-side frame cap (≤ [`MAX_FRAME_BYTES`]). A frame between
    /// this and the hard ceiling is *skipped* (counted, stream
    /// resynchronized); only a length above the hard ceiling is fatal.
    max_frame: usize,
    /// Frames skipped by the configurable cap.
    oversized: u64,
    /// Payload bytes of an over-cap frame still to be discarded before
    /// the next length prefix.
    skip: usize,
    /// Send-side staging for bytes the kernel would not take: when a
    /// nonblocking write returns [`ErrorKind::WouldBlock`] mid-frame,
    /// the unwritten tail lands here and [`StreamTransport::flush`]
    /// resumes it — a frame is never torn on the wire. Consumed bytes
    /// advance `out_cursor`; the buffer compacts once drained.
    outbox: Vec<u8>,
    out_cursor: usize,
}

impl<S: std::fmt::Debug> std::fmt::Debug for StreamTransport<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamTransport")
            .field("stream", &self.stream)
            .field("buffered", &(self.pending.len() - self.cursor))
            .field("eof", &self.eof)
            .finish()
    }
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps a nonblocking byte stream (frame cap at the hard ceiling,
    /// [`MAX_FRAME_BYTES`]).
    pub fn new(stream: S) -> Self {
        Self::with_frame_cap(stream, MAX_FRAME_BYTES)
    }

    /// Wraps a nonblocking byte stream with a configurable receive-side
    /// frame cap (clamped to [`MAX_FRAME_BYTES`]) — wire it to
    /// [`crate::GuardConfig::max_frame_bytes`] so the transport enforces
    /// the same bound the guard plane does, *before* an oversized
    /// payload is ever assembled in memory.
    ///
    /// A frame longer than `cap` but within the hard ceiling is not
    /// fatal: it is counted ([`StreamTransport::oversized_frames`]) and
    /// its payload is discarded as it streams in, leaving the transport
    /// resynchronized on the next length prefix. Only a length prefix
    /// above [`MAX_FRAME_BYTES`] — which no conformant sender can
    /// produce — still poisons the stream.
    pub fn with_frame_cap(stream: S, cap: usize) -> Self {
        StreamTransport {
            stream,
            pending: Vec::new(),
            cursor: 0,
            eof: false,
            chunk: Box::new([0u8; 16 * 1024]),
            max_frame: cap.min(MAX_FRAME_BYTES),
            oversized: 0,
            skip: 0,
            outbox: Vec::new(),
            out_cursor: 0,
        }
    }

    /// Whether send-side bytes are waiting for the stream to accept
    /// them ([`StreamTransport::flush`] has work to do). An event loop
    /// registers write interest exactly while this holds.
    pub fn wants_write(&self) -> bool {
        self.out_cursor < self.outbox.len()
    }

    /// Bytes currently staged in the send buffer.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len() - self.out_cursor
    }

    /// Pushes staged send-side bytes into the stream until it reports
    /// [`ErrorKind::WouldBlock`] or the buffer drains. Returns whether
    /// the buffer is now empty (`true` = nothing left to write; an
    /// event loop drops write interest on `true`).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Transport`] on any I/O failure other than
    /// `WouldBlock`.
    pub fn flush(&mut self) -> Result<bool, FlError> {
        while self.out_cursor < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_cursor..]) {
                Ok(0) => {
                    return Err(FlError::Transport(
                        "stream refused buffered bytes (peer closed?)".into(),
                    ))
                }
                Ok(n) => self.out_cursor += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(FlError::Transport(format!("stream write failed: {e}"))),
            }
        }
        self.outbox.clear();
        self.out_cursor = 0;
        let _ = self.stream.flush();
        Ok(true)
    }

    /// Writes `bytes` through the stream, staging whatever the kernel
    /// refuses in the outbox (order-preserving: if bytes are already
    /// staged, the new ones queue behind them).
    fn write_or_stage(&mut self, bytes: &[u8]) -> Result<(), FlError> {
        // Anything already staged must go first, or frames interleave.
        if self.wants_write() {
            self.flush()?;
            if self.wants_write() {
                self.outbox.extend_from_slice(bytes);
                return Ok(());
            }
        }
        let mut written = 0;
        while written < bytes.len() {
            match self.stream.write(&bytes[written..]) {
                Ok(0) => {
                    return Err(FlError::Transport("stream refused bytes (peer closed?)".into()))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.outbox.extend_from_slice(&bytes[written..]);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(FlError::Transport(format!("stream write failed: {e}"))),
            }
        }
        Ok(())
    }

    /// Frames skipped by the configurable cap (see
    /// [`StreamTransport::with_frame_cap`]).
    pub fn oversized_frames(&self) -> u64 {
        self.oversized
    }

    /// Consumes the transport, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// The underlying stream (e.g. to half-close a socket while the
    /// transport's counters stay alive).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Whether the stream reported end-of-file (the peer closed its
    /// write side).
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Pulls whatever the stream has ready into the reassembly buffer.
    fn fill(&mut self) -> Result<(), FlError> {
        if self.eof {
            return Ok(());
        }
        loop {
            match self.stream.read(&mut self.chunk[..]) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.pending.extend_from_slice(&self.chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(FlError::Transport(format!("stream read failed: {e}"))),
            }
        }
    }

    /// Reclaims the consumed prefix of the reassembly buffer when it
    /// outweighs the live tail (each byte is memmoved at most once).
    fn compact(&mut self) {
        if self.cursor == self.pending.len() {
            self.pending.clear();
            self.cursor = 0;
        } else if self.cursor > self.pending.len() - self.cursor {
            // A busy stream may never hit a fully-drained instant, so
            // the buffer must track in-flight bytes, not bytes-ever-seen.
            self.pending.drain(..self.cursor);
            self.cursor = 0;
        }
    }
}

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        // Mirror the receive-side cap before anything hits the wire: an
        // oversized frame would otherwise be fatal on the *peer's*
        // try_recv (poisoning every multiplexed job from the wrong side
        // of the link), and ≥ 4 GiB would silently wrap the u32 prefix
        // and desync the stream.
        if frame.len() > MAX_FRAME_BYTES {
            return Err(FlError::Transport(format!(
                "refusing to send a {}-byte frame (cap {MAX_FRAME_BYTES})",
                frame.len()
            )));
        }
        // A nonblocking stream may take only part of the frame (a full
        // kernel socket buffer reads as `WouldBlock` mid-write): the
        // unwritten tail is staged in the outbox rather than erroring,
        // and [`StreamTransport::flush`] resumes it on write readiness.
        self.write_or_stage(&(frame.len() as u32).to_le_bytes())?;
        self.write_or_stage(frame)?;
        if !self.wants_write() {
            let _ = self.stream.flush();
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        self.fill()?;
        loop {
            // Finish discarding an over-cap frame's payload before
            // looking for the next length prefix — the discard happens
            // as the bytes stream in, so the oversized payload is never
            // held in memory whole.
            if self.skip > 0 {
                let n = self.skip.min(self.pending.len() - self.cursor);
                self.cursor += n;
                self.skip -= n;
                self.compact();
                if self.skip > 0 {
                    return if self.eof {
                        Err(FlError::Transport("stream closed mid-frame by the peer".into()))
                    } else {
                        Ok(None) // rest of the skipped frame still in flight
                    };
                }
            }
            let buffered = &self.pending[self.cursor..];
            if buffered.len() < 4 {
                // A dead peer must not look like a quiet wire: a stream
                // that ended mid-frame is an error, a cleanly drained one
                // is distinguishable from idle via `is_eof`.
                return if self.eof && !buffered.is_empty() {
                    Err(FlError::Transport("stream closed mid-frame by the peer".into()))
                } else {
                    Ok(None)
                };
            }
            let len = u32::from_le_bytes(buffered[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(FlError::Transport(format!(
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )));
            }
            if len > self.max_frame {
                // Over the configurable cap but within the hard ceiling:
                // count it once and skip it, keeping the stream alive
                // and resynchronized for every other job on the link.
                self.oversized += 1;
                self.cursor += 4;
                self.skip = len;
                continue;
            }
            if buffered.len() < 4 + len {
                return if self.eof {
                    Err(FlError::Transport("stream closed mid-frame by the peer".into()))
                } else {
                    Ok(None) // frame still in flight
                };
            }
            let frame = Bytes::from(buffered[4..4 + len].to_vec());
            self.cursor += 4 + len;
            self.compact();
            return Ok(Some(frame));
        }
    }
}

/// One direction of an in-process byte pipe.
type ByteQueue = Arc<Mutex<Vec<u8>>>;

/// One end of an in-process duplex byte pipe (see [`duplex`]).
///
/// Reads drain whatever the peer has written (returning
/// [`ErrorKind::WouldBlock`] when empty, like a nonblocking socket);
/// writes always succeed. The pipe deliberately has no backpressure —
/// it stands in for a socket in deterministic single-threaded tests and
/// benchmarks, where "peer not scheduled yet" is the only reason bytes
/// linger.
pub struct PipeEnd {
    read_from: ByteQueue,
    write_to: ByteQueue,
}

impl std::fmt::Debug for PipeEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeEnd")
            .field("readable", &self.read_from.lock().map(|b| b.len()).unwrap_or(0))
            .finish()
    }
}

/// Creates an in-process bidirectional byte pipe: what either end
/// writes, the other reads, as a raw byte stream (no message
/// boundaries — that is [`StreamTransport`]'s job, which is exactly why
/// the pair exercises real framing).
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a_to_b: ByteQueue = Arc::new(Mutex::new(Vec::new()));
    let b_to_a: ByteQueue = Arc::new(Mutex::new(Vec::new()));
    (
        PipeEnd { read_from: Arc::clone(&b_to_a), write_to: Arc::clone(&a_to_b) },
        PipeEnd { read_from: a_to_b, write_to: b_to_a },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut queue = self
            .read_from
            .lock()
            .map_err(|_| std::io::Error::new(ErrorKind::BrokenPipe, "pipe poisoned"))?;
        if queue.is_empty() {
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "pipe empty"));
        }
        let n = queue.len().min(buf.len());
        buf[..n].copy_from_slice(&queue[..n]);
        queue.drain(..n);
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_to
            .lock()
            .map_err(|_| std::io::Error::new(ErrorKind::BrokenPipe, "pipe poisoned"))?
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{deframe, frame, AGGREGATOR_DEST};
    use crate::WireMessage;

    fn msg(party: u64) -> WireMessage {
        WireMessage::Heartbeat { job: 9, round: 2, party }
    }

    #[test]
    fn memory_pair_delivers_in_order_both_directions() {
        let (mut a, mut b) = MemoryTransport::pair();
        a.send(&frame(0, &msg(0))).unwrap();
        a.send(&frame(1, &msg(1))).unwrap();
        b.send(&frame(AGGREGATOR_DEST, &msg(2))).unwrap();
        let (d0, m0) = deframe(b.try_recv().unwrap().unwrap()).unwrap();
        let (d1, m1) = deframe(b.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!((d0, m0), (0, msg(0)));
        assert_eq!((d1, m1), (1, msg(1)));
        assert!(b.try_recv().unwrap().is_none());
        let (d2, m2) = deframe(a.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!((d2, m2), (AGGREGATOR_DEST, msg(2)));
    }

    #[test]
    fn memory_clone_shares_the_link() {
        let (mut a, b) = MemoryTransport::pair();
        let mut injector = b.clone();
        injector.send(&frame(AGGREGATOR_DEST, &msg(7))).unwrap();
        assert_eq!(b.pending(), 0, "injection is peer-bound, not self-bound");
        let (_, m) = deframe(a.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!(m, msg(7));
    }

    #[test]
    fn stream_transport_round_trips_frames_over_a_pipe() {
        let (a, b) = duplex();
        let mut tx = StreamTransport::new(a);
        let mut rx = StreamTransport::new(b);
        let big = WireMessage::GlobalModel { job: 3, round: 0, params: vec![0.25; 10_000].into() };
        tx.send(&frame(5, &big)).unwrap();
        tx.send(&frame(6, &msg(6))).unwrap();
        let (d, m) = deframe(rx.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!((d, &m), (5, &big));
        let (d, m) = deframe(rx.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!((d, m), (6, msg(6)));
        assert!(rx.try_recv().unwrap().is_none());
    }

    #[test]
    fn stream_transport_reassembles_partial_frames() {
        // Feed a frame byte-by-byte: try_recv must withhold it until the
        // last byte arrives, then deliver it whole.
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::new(b);
        let frame_bytes = {
            let payload = frame(4, &msg(4));
            let mut on_wire = (payload.len() as u32).to_le_bytes().to_vec();
            on_wire.extend_from_slice(payload.as_slice());
            on_wire
        };
        for &byte in &frame_bytes[..frame_bytes.len() - 1] {
            raw.write_all(&[byte]).unwrap();
            assert!(rx.try_recv().unwrap().is_none(), "frame delivered before complete");
        }
        raw.write_all(&frame_bytes[frame_bytes.len() - 1..]).unwrap();
        let (d, m) = deframe(rx.try_recv().unwrap().unwrap()).unwrap();
        assert_eq!((d, m), (4, msg(4)));
    }

    /// A one-shot stream: yields its bytes, then reports end-of-file —
    /// the shape of a peer that wrote and disconnected.
    struct FiniteStream(Vec<u8>);

    impl Read for FiniteStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0.drain(..n);
            Ok(n)
        }
    }

    impl Write for FiniteStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn clean_eof_drains_buffered_frames_then_reads_idle() {
        let payload = frame(1, &msg(1));
        let mut on_wire = (payload.len() as u32).to_le_bytes().to_vec();
        on_wire.extend_from_slice(payload.as_slice());
        let mut rx = StreamTransport::new(FiniteStream(on_wire));
        assert_eq!(deframe(rx.try_recv().unwrap().unwrap()).unwrap(), (1, msg(1)));
        assert!(rx.try_recv().unwrap().is_none(), "cleanly drained");
        assert!(rx.is_eof(), "disconnect is observable");
    }

    #[test]
    fn eof_mid_frame_is_a_transport_error_not_a_quiet_wire() {
        // A dead peer must surface, or the driver would close every
        // remaining round with 100% stragglers and "complete" bogusly.
        let payload = frame(1, &msg(1));
        let mut on_wire = (payload.len() as u32).to_le_bytes().to_vec();
        on_wire.extend_from_slice(payload.as_slice());
        for cut in [2, 7, on_wire.len() - 1] {
            let mut rx = StreamTransport::new(FiniteStream(on_wire[..cut].to_vec()));
            assert!(
                matches!(rx.try_recv(), Err(FlError::Transport(_))),
                "stream cut at byte {cut} must error"
            );
        }
    }

    #[test]
    fn burst_of_frames_is_extracted_without_requeueing() {
        // Many frames landing in one fill() come out one per try_recv,
        // in order (the cursor, not a drain, does the consuming).
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::new(b);
        for party in 0..50u64 {
            let payload = frame(party, &msg(party));
            raw.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            raw.write_all(payload.as_slice()).unwrap();
        }
        for party in 0..50u64 {
            let (d, m) = deframe(rx.try_recv().unwrap().unwrap()).unwrap();
            assert_eq!((d, m), (party, msg(party)));
        }
        assert!(rx.try_recv().unwrap().is_none());
    }

    #[test]
    fn stream_transport_rejects_hostile_length_prefix() {
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::new(b);
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(matches!(rx.try_recv(), Err(FlError::Transport(_))));
    }

    #[test]
    fn configurable_cap_skips_the_frame_and_resynchronizes() {
        // An over-cap (but under-ceiling) frame must bump exactly one
        // counter and leave the stream resynchronized: the frames before
        // and after it deliver untouched.
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::with_frame_cap(b, 256);
        let write_frame = |raw: &mut PipeEnd, payload: &[u8]| {
            raw.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            raw.write_all(payload).unwrap();
        };
        let before = frame(1, &msg(1));
        let after = frame(2, &msg(2));
        write_frame(&mut raw, before.as_slice());
        write_frame(&mut raw, &vec![0xAB; 10_000]); // over the 256-byte cap
        write_frame(&mut raw, after.as_slice());
        assert_eq!(deframe(rx.try_recv().unwrap().unwrap()).unwrap(), (1, msg(1)));
        assert_eq!(deframe(rx.try_recv().unwrap().unwrap()).unwrap(), (2, msg(2)));
        assert!(rx.try_recv().unwrap().is_none());
        assert_eq!(rx.oversized_frames(), 1, "exactly one counter bump");
    }

    #[test]
    fn configurable_cap_discards_a_trickled_oversized_frame() {
        // The oversized payload arriving in pieces is discarded as it
        // streams in; the next frame still delivers.
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::with_frame_cap(b, 64);
        raw.write_all(&1000u32.to_le_bytes()).unwrap();
        for _ in 0..10 {
            raw.write_all(&[0xCD; 100]).unwrap();
            assert!(rx.try_recv().unwrap().is_none());
        }
        let payload = frame(3, &msg(3));
        raw.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(payload.as_slice()).unwrap();
        assert_eq!(deframe(rx.try_recv().unwrap().unwrap()).unwrap(), (3, msg(3)));
        assert_eq!(rx.oversized_frames(), 1);
    }

    #[test]
    fn configurable_cap_keeps_the_hard_ceiling_fatal() {
        let (mut raw, b) = duplex();
        let mut rx = StreamTransport::with_frame_cap(b, 256);
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(
            matches!(rx.try_recv(), Err(FlError::Transport(_))),
            "a length no conformant sender can produce still poisons the stream"
        );
    }

    #[test]
    fn deframe_rejects_short_and_corrupt_frames() {
        assert!(deframe(Bytes::from(vec![1, 2, 3])).is_err(), "shorter than the header");
        let mut corrupt = frame(2, &msg(2)).to_vec();
        corrupt[FRAME_HEADER_END] ^= 0xFF; // clobber the message magic
        assert!(deframe(Bytes::from(corrupt)).is_err());
    }

    const FRAME_HEADER_END: usize = crate::message::FRAME_HEADER;

    #[test]
    fn send_buffers_partial_frames_when_the_socket_backs_up_and_drains_on_flush() {
        // The backpressure regression test: keep sending large frames
        // into a nonblocking TCP socket whose peer reads nothing. The
        // kernel buffer fills, `write` starts returning `WouldBlock`
        // mid-frame, and send must stage the tail instead of erroring
        // (the pre-fix `write_all` surfaced `WouldBlock` as a transport
        // error). Draining the peer plus `flush` must then deliver
        // every frame intact, in order.
        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(_) => return, // sandboxed environments may forbid sockets
        };
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        let mut tx = StreamTransport::new(client);
        let mut rx = StreamTransport::new(server);

        // 64 KiB payloads overwhelm default socket buffers quickly;
        // keep sending until the kernel actually refuses bytes so the
        // test is independent of the host's buffer sizing.
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for i in 0..512u32 {
            let frame = vec![(i % 251) as u8; 64 * 1024 + (i % 7) as usize];
            tx.send(&frame).unwrap(); // must never error with WouldBlock
            frames.push(frame);
            if tx.wants_write() && frames.len() >= 4 {
                break;
            }
        }
        assert!(tx.wants_write(), "the kernel buffer never filled — grow the payloads");

        // Drain: alternate receiving (freeing kernel buffer space) and
        // flushing the staged tail until everything is through.
        let mut received = Vec::new();
        for _ in 0..100_000 {
            let _ = tx.flush().unwrap();
            while let Some(frame) = rx.try_recv().unwrap() {
                received.push(frame);
            }
            if received.len() == frames.len() && !tx.wants_write() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(!tx.wants_write(), "outbox never drained");
        assert_eq!(received.len(), frames.len());
        for (got, want) in received.iter().zip(&frames) {
            assert_eq!(got.as_slice(), want.as_slice(), "frame torn or reordered");
        }
    }

    #[test]
    fn staged_sends_queue_behind_each_other_in_order() {
        // A stream that accepts a few bytes then blocks: successive
        // sends must stage in order and flush() must resume mid-frame.
        struct Throttled {
            taken: Vec<u8>,
            budget: usize,
        }
        impl Read for Throttled {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "nothing"))
            }
        }
        impl Write for Throttled {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::new(ErrorKind::WouldBlock, "full"));
                }
                let n = self.budget.min(buf.len());
                self.taken.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut tx = StreamTransport::new(Throttled { taken: Vec::new(), budget: 6 });
        tx.send(b"abcdef").unwrap(); // 4-byte prefix + 2 payload bytes fit
        assert!(tx.wants_write());
        assert_eq!(tx.outbox_len(), 4, "4 payload bytes staged");
        tx.send(b"gh").unwrap(); // fully staged behind the first tail
        assert_eq!(tx.outbox_len(), 4 + 4 + 2);
        assert!(!tx.flush().unwrap(), "no budget: nothing moves");
        tx.stream.budget = usize::MAX;
        assert!(tx.flush().unwrap(), "budget restored: everything drains");
        let mut want = 6u32.to_le_bytes().to_vec();
        want.extend_from_slice(b"abcdef");
        want.extend_from_slice(&2u32.to_le_bytes());
        want.extend_from_slice(b"gh");
        assert_eq!(tx.stream.taken, want, "bytes arrive exactly once, in order");
    }

    #[test]
    fn works_over_nonblocking_tcp() {
        // The same framing over a real socket pair — nonblocking, so
        // try_recv polls instead of hanging.
        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(_) => return, // sandboxed environments may forbid sockets
        };
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        let mut tx = StreamTransport::new(client);
        let mut rx = StreamTransport::new(server);
        tx.send(&frame(1, &msg(1))).unwrap();
        // A nonblocking socket may need a few polls before delivery.
        for _ in 0..1000 {
            if let Some(f) = rx.try_recv().unwrap() {
                assert_eq!(deframe(f).unwrap(), (1, msg(1)));
                return;
            }
            std::thread::yield_now();
        }
        panic!("frame never arrived over TCP");
    }
}
