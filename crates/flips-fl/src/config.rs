//! FL algorithm, training and deadline-pressure configuration.

use crate::latency::ObservedLatency;
use flips_ml::optimizer::StepDecay;
use serde::{Deserialize, Serialize};

/// The federated-learning algorithm — how client updates become the next
/// global model (paper §2.1).
///
/// All algorithms here share the FedAvg *client* loop (τ local SGD steps)
/// and differ in (a) an optional client-side proximal term (FedProx) and
/// (b) the server optimizer applied to the aggregated pseudo-gradient
/// (FedYogi / FedAdam / FedAdagrad).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlAlgorithm {
    /// Weighted averaging of client models (McMahan et al.).
    FedAvg,
    /// FedAvg with a client-side proximal term `µ/2‖x − m‖²` (Li et al.).
    FedProx {
        /// Proximal penalty µ.
        mu: f32,
    },
    /// Adaptive server optimization with Yogi (Reddi et al.) — the paper's
    /// best performer on non-IID data.
    FedYogi {
        /// Server learning rate.
        server_lr: f32,
    },
    /// Adaptive server optimization with Adam.
    FedAdam {
        /// Server learning rate.
        server_lr: f32,
    },
    /// Adaptive server optimization with Adagrad.
    FedAdagrad {
        /// Server learning rate.
        server_lr: f32,
    },
}

impl FlAlgorithm {
    /// FedProx with the paper-typical µ = 0.01.
    pub fn fedprox() -> Self {
        FlAlgorithm::FedProx { mu: 0.01 }
    }

    /// FedYogi with the standard server learning rate 0.1.
    pub fn fedyogi() -> Self {
        FlAlgorithm::FedYogi { server_lr: 0.1 }
    }

    /// FedAdam with the standard server learning rate 0.1.
    pub fn fedadam() -> Self {
        FlAlgorithm::FedAdam { server_lr: 0.1 }
    }

    /// FedAdagrad with the standard server learning rate 0.1.
    pub fn fedadagrad() -> Self {
        FlAlgorithm::FedAdagrad { server_lr: 0.1 }
    }

    /// The paper's table label for this algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            FlAlgorithm::FedAvg => "FedAvg",
            FlAlgorithm::FedProx { .. } => "FedProx",
            FlAlgorithm::FedYogi { .. } => "FedYoGi",
            FlAlgorithm::FedAdam { .. } => "FedAdam",
            FlAlgorithm::FedAdagrad { .. } => "FedAdagrad",
        }
    }

    /// The client-side proximal coefficient (zero except FedProx).
    pub fn proximal_mu(&self) -> f32 {
        match self {
            FlAlgorithm::FedProx { mu } => *mu,
            _ => 0.0,
        }
    }

    /// The three algorithms the paper evaluates, in table order.
    pub fn paper_algorithms() -> [FlAlgorithm; 3] {
        [FlAlgorithm::fedyogi(), FlAlgorithm::fedprox(), FlAlgorithm::FedAvg]
    }
}

impl std::fmt::Display for FlAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Participant-side training hyper-parameters (agreed at job start, §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainingConfig {
    /// Local epochs over the party's dataset per round (τ).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Client learning-rate schedule across rounds.
    pub lr_schedule: StepDecay,
    /// Client SGD momentum.
    pub momentum: f32,
}

impl Default for LocalTrainingConfig {
    fn default() -> Self {
        LocalTrainingConfig {
            epochs: 2,
            batch_size: 32,
            lr_schedule: StepDecay::constant(0.05),
            momentum: 0.0,
        }
    }
}

impl LocalTrainingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero epochs/batch size and non-positive learning rates.
    pub fn validate(&self) -> Result<(), crate::FlError> {
        if self.epochs == 0 {
            return Err(crate::FlError::InvalidConfig("zero local epochs".into()));
        }
        if self.batch_size == 0 {
            return Err(crate::FlError::InvalidConfig("zero batch size".into()));
        }
        if self.lr_schedule.initial <= 0.0 {
            return Err(crate::FlError::InvalidConfig("non-positive learning rate".into()));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(crate::FlError::InvalidConfig("momentum must be in [0, 1)".into()));
        }
        Ok(())
    }
}

/// Virtual timer-wheel ticks per simulated second (microsecond
/// resolution). Latency-derived deadlines are scheduled on the
/// [`crate::TimerWheel`] in these units, so two jobs with different
/// observed latencies interleave their deadline ticks realistically
/// instead of all firing on the same "next quiet tick".
pub const TICKS_PER_SECOND: f64 = 1_000_000.0;

/// How a round's collection deadline is chosen — the knob that turns
/// deadline pressure from a synthetic fault injection into a measured
/// property of the population.
///
/// The policy is *driver* machinery, like the [`crate::StragglerInjector`]
/// it generalizes: the sans-IO [`crate::Coordinator`] never sees it. It
/// only learns that a deadline expired and closes whoever has not
/// delivered as stragglers.
///
/// - [`DeadlinePolicy::Injected`] keeps the paper's §5 emulation: a
///   seeded injector designates `rate · |cohort|` victims per round and
///   their updates are never delivered.
/// - [`DeadlinePolicy::LatencyQuantile`] derives each round's deadline
///   from *observed* round-trip latency: the deadline is
///   `slack × quantile_q(observed durations)`. A party whose simulated
///   round trip exceeds it misses the round — who straggles follows from
///   the latency model, not from a coin flip.
/// - [`DeadlinePolicy::FixedSeconds`] is the degenerate fixed-budget
///   policy (useful in tests and for SLA-style rounds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum DeadlinePolicy {
    /// Synthetic victim sets from the seeded straggler injector (the
    /// paper's emulation; configured via `straggler_rate` /
    /// `straggler_bias`).
    #[default]
    Injected,
    /// Deadline = `slack × quantile_q(observed round-trip durations)`,
    /// recomputed at every round open from all samples observed so far.
    /// Until the first sample arrives (round 0) the deadline is
    /// unbounded — the warm-up round is how the driver learns the
    /// population.
    LatencyQuantile {
        /// The quantile of observed durations the deadline anchors on,
        /// in `[0, 1]` (e.g. 0.9 = the 90th percentile).
        q: f64,
        /// Multiplicative slack over the anchor quantile (≥ 0; values
        /// below 1 make even median parties miss).
        slack: f64,
    },
    /// Deadline = `slack × EWMA(per-round mean durations)`: an
    /// exponentially weighted moving average over the *batch means* of
    /// each closed round's observed durations, so the deadline tracks a
    /// drifting population faster than a whole-history quantile while
    /// staying a pure function of the per-round sample multisets
    /// (batches are sealed at round opens — a deterministic point — and
    /// each batch mean is summed in sorted order, so sharded arrival
    /// order cannot move a bit; see [`ObservedLatency::ewma`]).
    /// Unbounded until the first sample arrives, like
    /// [`DeadlinePolicy::LatencyQuantile`].
    Ewma {
        /// Smoothing factor in `(0, 1]`: the weight of the newest
        /// round's mean (1 = track only the last round).
        alpha: f64,
        /// Multiplicative slack over the smoothed mean (≥ 0).
        slack: f64,
    },
    /// A fixed per-round collection window in simulated seconds.
    FixedSeconds {
        /// The window length (> 0).
        secs: f64,
    },
}

impl DeadlinePolicy {
    /// The paper-flavored latency-derived default: 90th percentile of
    /// observed round trips with 1.5× slack — healthy parties always
    /// make it, heavy-tail outliers miss.
    pub fn latency_default() -> Self {
        DeadlinePolicy::LatencyQuantile { q: 0.9, slack: 1.5 }
    }

    /// Whether this policy derives deadlines from observation (anything
    /// but the legacy injector).
    pub fn is_latency_derived(&self) -> bool {
        !matches!(self, DeadlinePolicy::Injected)
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Rejects quantiles outside `[0, 1]`, non-finite or negative slack,
    /// and non-positive fixed windows.
    pub fn validate(&self) -> Result<(), crate::FlError> {
        match *self {
            DeadlinePolicy::Injected => Ok(()),
            DeadlinePolicy::LatencyQuantile { q, slack } => {
                if !(0.0..=1.0).contains(&q) {
                    return Err(crate::FlError::InvalidConfig(format!(
                        "deadline quantile {q} must be in [0, 1]"
                    )));
                }
                if !slack.is_finite() || slack < 0.0 {
                    return Err(crate::FlError::InvalidConfig(format!(
                        "deadline slack {slack} must be finite and non-negative"
                    )));
                }
                Ok(())
            }
            DeadlinePolicy::Ewma { alpha, slack } => {
                if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
                    return Err(crate::FlError::InvalidConfig(format!(
                        "EWMA alpha {alpha} must be in (0, 1]"
                    )));
                }
                if !slack.is_finite() || slack < 0.0 {
                    return Err(crate::FlError::InvalidConfig(format!(
                        "deadline slack {slack} must be finite and non-negative"
                    )));
                }
                Ok(())
            }
            DeadlinePolicy::FixedSeconds { secs } => {
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(crate::FlError::InvalidConfig(format!(
                        "fixed deadline {secs} must be finite and positive"
                    )));
                }
                Ok(())
            }
        }
    }

    /// The deadline for the next round, in simulated seconds, given the
    /// round trips observed so far. `None` means unbounded (accept every
    /// update) — the warm-up state of [`DeadlinePolicy::LatencyQuantile`]
    /// before any sample exists.
    ///
    /// # Panics
    ///
    /// Panics on [`DeadlinePolicy::Injected`]: the injector path decides
    /// *who* misses, not *when*, and drivers must branch before asking.
    pub fn deadline_secs(&self, observed: &mut ObservedLatency) -> Option<f64> {
        match *self {
            DeadlinePolicy::Injected => {
                panic!("the injected policy has no derived deadline; drivers use the Clock path")
            }
            DeadlinePolicy::LatencyQuantile { q, slack } => {
                observed.quantile(q).map(|anchor| anchor * slack)
            }
            DeadlinePolicy::Ewma { alpha, slack } => {
                // Called exactly once per round open by every driver, so
                // sealing here gives each round its own batch — the same
                // boundaries on the in-process, lockstep and sharded
                // paths, which is what keeps their histories identical.
                observed.seal_batch();
                observed.ewma(alpha).map(|anchor| anchor * slack)
            }
            DeadlinePolicy::FixedSeconds { secs } => Some(secs),
        }
    }

    /// Converts a deadline in simulated seconds to timer-wheel ticks
    /// (rounded up, at least 1 — a deadline can never fire at its own
    /// open tick).
    pub fn ticks(deadline_secs: f64) -> u64 {
        ((deadline_secs * TICKS_PER_SECOND).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(FlAlgorithm::FedAvg.label(), "FedAvg");
        assert_eq!(FlAlgorithm::fedprox().label(), "FedProx");
        assert_eq!(FlAlgorithm::fedyogi().label(), "FedYoGi");
    }

    #[test]
    fn proximal_mu_is_zero_except_fedprox() {
        assert_eq!(FlAlgorithm::FedAvg.proximal_mu(), 0.0);
        assert_eq!(FlAlgorithm::fedyogi().proximal_mu(), 0.0);
        assert_eq!(FlAlgorithm::FedProx { mu: 0.03 }.proximal_mu(), 0.03);
    }

    #[test]
    fn paper_algorithms_are_the_evaluated_three() {
        let algos = FlAlgorithm::paper_algorithms();
        assert_eq!(algos.map(|a| a.label()), ["FedYoGi", "FedProx", "FedAvg"]);
    }

    #[test]
    fn local_config_validation() {
        assert!(LocalTrainingConfig::default().validate().is_ok());
        let bad = LocalTrainingConfig { epochs: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LocalTrainingConfig { batch_size: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad =
            LocalTrainingConfig { lr_schedule: StepDecay::constant(0.0), ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LocalTrainingConfig { momentum: 1.0, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn deadline_policy_validation() {
        assert!(DeadlinePolicy::Injected.validate().is_ok());
        assert!(DeadlinePolicy::latency_default().validate().is_ok());
        assert!(DeadlinePolicy::LatencyQuantile { q: 1.5, slack: 1.0 }.validate().is_err());
        assert!(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: -1.0 }.validate().is_err());
        assert!(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: f64::NAN }.validate().is_err());
        assert!(DeadlinePolicy::FixedSeconds { secs: 0.0 }.validate().is_err());
        assert!(DeadlinePolicy::FixedSeconds { secs: 0.25 }.validate().is_ok());
        assert!(DeadlinePolicy::Ewma { alpha: 0.5, slack: 1.2 }.validate().is_ok());
        assert!(DeadlinePolicy::Ewma { alpha: 1.0, slack: 0.0 }.validate().is_ok());
        assert!(DeadlinePolicy::Ewma { alpha: 0.0, slack: 1.0 }.validate().is_err());
        assert!(DeadlinePolicy::Ewma { alpha: 1.5, slack: 1.0 }.validate().is_err());
        assert!(DeadlinePolicy::Ewma { alpha: f64::NAN, slack: 1.0 }.validate().is_err());
        assert!(DeadlinePolicy::Ewma { alpha: 0.5, slack: -0.1 }.validate().is_err());
        assert!(DeadlinePolicy::Ewma { alpha: 0.5, slack: 1.0 }.is_latency_derived());
    }

    #[test]
    fn ewma_policy_warms_up_unbounded_then_smooths_batch_means() {
        let policy = DeadlinePolicy::Ewma { alpha: 0.5, slack: 2.0 };
        let mut obs = ObservedLatency::new();
        assert_eq!(policy.deadline_secs(&mut obs), None, "no samples: unbounded warm-up");
        // Round 0 closes with mean 0.2.
        obs.record(0.1);
        obs.record(0.3);
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.4), "first batch: 2 × 0.2");
        // Round 1 closes with mean 0.6 → EWMA 0.5·0.6 + 0.5·0.2 = 0.4.
        obs.record(0.6);
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.8), "2 × smoothed 0.4");
        // A deadline query with no new samples seals nothing: replaying
        // the policy never perturbs the batch structure.
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.8));
    }

    #[test]
    fn latency_quantile_warms_up_unbounded_then_tracks_observations() {
        let policy = DeadlinePolicy::LatencyQuantile { q: 1.0, slack: 2.0 };
        let mut obs = ObservedLatency::new();
        assert_eq!(policy.deadline_secs(&mut obs), None, "no samples: unbounded warm-up");
        obs.record(0.2);
        obs.record(0.1);
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.4), "2× the observed max");
    }

    #[test]
    fn fixed_policy_ignores_observations() {
        let policy = DeadlinePolicy::FixedSeconds { secs: 0.3 };
        let mut obs = ObservedLatency::new();
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.3));
        obs.record(9.0);
        assert_eq!(policy.deadline_secs(&mut obs), Some(0.3));
    }

    #[test]
    fn tick_conversion_rounds_up_and_clamps_forward() {
        assert_eq!(DeadlinePolicy::ticks(0.0), 1);
        assert_eq!(DeadlinePolicy::ticks(1e-9), 1);
        assert_eq!(DeadlinePolicy::ticks(0.5), 500_000);
        assert_eq!(DeadlinePolicy::ticks(1.0000001), 1_000_001);
    }

    #[test]
    #[should_panic(expected = "no derived deadline")]
    fn injected_policy_has_no_derived_deadline() {
        let _ = DeadlinePolicy::Injected.deadline_secs(&mut ObservedLatency::new());
    }
}
