//! FL algorithm and training configuration.

use flips_ml::optimizer::StepDecay;
use serde::{Deserialize, Serialize};

/// The federated-learning algorithm — how client updates become the next
/// global model (paper §2.1).
///
/// All algorithms here share the FedAvg *client* loop (τ local SGD steps)
/// and differ in (a) an optional client-side proximal term (FedProx) and
/// (b) the server optimizer applied to the aggregated pseudo-gradient
/// (FedYogi / FedAdam / FedAdagrad).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlAlgorithm {
    /// Weighted averaging of client models (McMahan et al.).
    FedAvg,
    /// FedAvg with a client-side proximal term `µ/2‖x − m‖²` (Li et al.).
    FedProx {
        /// Proximal penalty µ.
        mu: f32,
    },
    /// Adaptive server optimization with Yogi (Reddi et al.) — the paper's
    /// best performer on non-IID data.
    FedYogi {
        /// Server learning rate.
        server_lr: f32,
    },
    /// Adaptive server optimization with Adam.
    FedAdam {
        /// Server learning rate.
        server_lr: f32,
    },
    /// Adaptive server optimization with Adagrad.
    FedAdagrad {
        /// Server learning rate.
        server_lr: f32,
    },
}

impl FlAlgorithm {
    /// FedProx with the paper-typical µ = 0.01.
    pub fn fedprox() -> Self {
        FlAlgorithm::FedProx { mu: 0.01 }
    }

    /// FedYogi with the standard server learning rate 0.1.
    pub fn fedyogi() -> Self {
        FlAlgorithm::FedYogi { server_lr: 0.1 }
    }

    /// FedAdam with the standard server learning rate 0.1.
    pub fn fedadam() -> Self {
        FlAlgorithm::FedAdam { server_lr: 0.1 }
    }

    /// FedAdagrad with the standard server learning rate 0.1.
    pub fn fedadagrad() -> Self {
        FlAlgorithm::FedAdagrad { server_lr: 0.1 }
    }

    /// The paper's table label for this algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            FlAlgorithm::FedAvg => "FedAvg",
            FlAlgorithm::FedProx { .. } => "FedProx",
            FlAlgorithm::FedYogi { .. } => "FedYoGi",
            FlAlgorithm::FedAdam { .. } => "FedAdam",
            FlAlgorithm::FedAdagrad { .. } => "FedAdagrad",
        }
    }

    /// The client-side proximal coefficient (zero except FedProx).
    pub fn proximal_mu(&self) -> f32 {
        match self {
            FlAlgorithm::FedProx { mu } => *mu,
            _ => 0.0,
        }
    }

    /// The three algorithms the paper evaluates, in table order.
    pub fn paper_algorithms() -> [FlAlgorithm; 3] {
        [FlAlgorithm::fedyogi(), FlAlgorithm::fedprox(), FlAlgorithm::FedAvg]
    }
}

impl std::fmt::Display for FlAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Participant-side training hyper-parameters (agreed at job start, §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainingConfig {
    /// Local epochs over the party's dataset per round (τ).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Client learning-rate schedule across rounds.
    pub lr_schedule: StepDecay,
    /// Client SGD momentum.
    pub momentum: f32,
}

impl Default for LocalTrainingConfig {
    fn default() -> Self {
        LocalTrainingConfig {
            epochs: 2,
            batch_size: 32,
            lr_schedule: StepDecay::constant(0.05),
            momentum: 0.0,
        }
    }
}

impl LocalTrainingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero epochs/batch size and non-positive learning rates.
    pub fn validate(&self) -> Result<(), crate::FlError> {
        if self.epochs == 0 {
            return Err(crate::FlError::InvalidConfig("zero local epochs".into()));
        }
        if self.batch_size == 0 {
            return Err(crate::FlError::InvalidConfig("zero batch size".into()));
        }
        if self.lr_schedule.initial <= 0.0 {
            return Err(crate::FlError::InvalidConfig("non-positive learning rate".into()));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(crate::FlError::InvalidConfig("momentum must be in [0, 1)".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(FlAlgorithm::FedAvg.label(), "FedAvg");
        assert_eq!(FlAlgorithm::fedprox().label(), "FedProx");
        assert_eq!(FlAlgorithm::fedyogi().label(), "FedYoGi");
    }

    #[test]
    fn proximal_mu_is_zero_except_fedprox() {
        assert_eq!(FlAlgorithm::FedAvg.proximal_mu(), 0.0);
        assert_eq!(FlAlgorithm::fedyogi().proximal_mu(), 0.0);
        assert_eq!(FlAlgorithm::FedProx { mu: 0.03 }.proximal_mu(), 0.03);
    }

    #[test]
    fn paper_algorithms_are_the_evaluated_three() {
        let algos = FlAlgorithm::paper_algorithms();
        assert_eq!(algos.map(|a| a.label()), ["FedYoGi", "FedProx", "FedAvg"]);
    }

    #[test]
    fn local_config_validation() {
        assert!(LocalTrainingConfig::default().validate().is_ok());
        let bad = LocalTrainingConfig { epochs: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LocalTrainingConfig { batch_size: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad =
            LocalTrainingConfig { lr_schedule: StepDecay::constant(0.0), ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LocalTrainingConfig { momentum: 1.0, ..Default::default() };
        assert!(bad.validate().is_err());
    }
}
