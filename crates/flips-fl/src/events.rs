//! Events and effects of the sans-IO round protocol.
//!
//! The [`Coordinator`](crate::coordinator::Coordinator) is a pure state
//! machine: drivers feed it [`Event`]s (things that happened in the
//! outside world — a message arrived, a deadline fired, a party vanished)
//! and receive [`Effect`]s (things the driver must now make happen — send
//! a message, record a closed round, finish the job). The coordinator
//! itself performs no I/O, reads no clocks and trains no models, so the
//! same state machine runs under the in-process simulation driver, a
//! future async transport, or a deterministic unit test that hand-feeds
//! events.
//!
//! [`Effect::Rejected`] doubles as a guard-plane signal: drivers with a
//! [`crate::GuardPlane`] installed convert each rejection (except the
//! benign [`RejectReason::DuplicateUpdate`], which at-least-once
//! transports legitimately produce) into a breaker strike against the
//! rejected sender — see [`crate::guard`].

use crate::history::{History, RoundRecord};
use crate::message::WireMessage;
use flips_selection::PartyId;

/// An input to the coordinator state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A wire message arrived from a party ([`WireMessage::LocalUpdate`],
    /// [`WireMessage::Heartbeat`] or [`WireMessage::Abort`]).
    UpdateReceived(WireMessage),
    /// The driver's clock says the open round's collection window ended.
    /// Parties that have not delivered an update by now are this round's
    /// stragglers.
    DeadlineExpired,
    /// The transport lost a party mid-round (connection drop, crash).
    /// Subsumed by [`Event::DeadlineExpired`] for accounting — a dropped
    /// party simply closes as a straggler — but lets the coordinator stop
    /// waiting for it early.
    PartyDropped(PartyId),
    /// A known roster slot (re)joined the job: the party becomes
    /// eligible again at the next round open. Roster *growth* is not a
    /// protocol event — slots are fixed at job agreement time; churn
    /// toggles availability.
    PartyJoined(PartyId),
    /// A party left the job for good (graceful departure, operator
    /// removal, resume timeout). Unlike [`Event::PartyDropped`] — a
    /// transient per-round signal — a departed party is excluded from
    /// every future selection until a matching [`Event::PartyJoined`],
    /// and the driver retires its guard (breaker/rate-limit) state.
    PartyLeft(PartyId),
}

/// An output of the coordinator state machine: an instruction to the
/// driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Deliver `msg` to party `to`.
    Send {
        /// Destination party.
        to: PartyId,
        /// The message to deliver.
        msg: WireMessage,
    },
    /// An inbound message was rejected; purely observational (the
    /// coordinator's state is unchanged).
    Rejected {
        /// The party whose message was rejected (`None` when the message
        /// carries no sender, e.g. an echoed `GlobalModel`).
        party: Option<PartyId>,
        /// The round the message claimed to belong to.
        round: u64,
        /// Why it was rejected.
        reason: RejectReason,
    },
    /// A round closed; its record has been appended to the history.
    RoundClosed(RoundRecord),
    /// The round budget is exhausted; the job's full history.
    JobFinished(History),
}

/// Why an inbound message was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The party already delivered an update this round (the XAIN
    /// coordinator's `DuplicatedUpdateError`).
    DuplicateUpdate,
    /// The sender was not selected for the round (or is outside the
    /// roster).
    NotSelected,
    /// The message belongs to a different job.
    WrongJob,
    /// The message's round is not the open round (late straggler update
    /// or time-traveling future round).
    WrongRound,
    /// No round is open.
    NoOpenRound,
    /// The update's parameter vector does not match the agreed
    /// architecture.
    WrongModelSize,
    /// An aggregator-bound direction violation (e.g. a party echoing a
    /// `GlobalModel` back).
    WrongDirection,
    /// The party was reported dropped earlier this round.
    PartyDropped,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::DuplicateUpdate => "duplicate update",
            RejectReason::NotSelected => "party not selected",
            RejectReason::WrongJob => "wrong job id",
            RejectReason::WrongRound => "wrong round",
            RejectReason::NoOpenRound => "no open round",
            RejectReason::WrongModelSize => "model size mismatch",
            RejectReason::WrongDirection => "wrong message direction",
            RejectReason::PartyDropped => "party was dropped",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_render() {
        for r in [
            RejectReason::DuplicateUpdate,
            RejectReason::NotSelected,
            RejectReason::WrongJob,
            RejectReason::WrongRound,
            RejectReason::NoOpenRound,
            RejectReason::WrongModelSize,
            RejectReason::WrongDirection,
            RejectReason::PartyDropped,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn events_and_effects_are_comparable() {
        let e = Event::DeadlineExpired;
        assert_eq!(e, Event::DeadlineExpired);
        assert_ne!(e, Event::PartyDropped(3));
        let msg = WireMessage::Heartbeat { job: 1, round: 0, party: 2 };
        let eff = Effect::Send { to: 2, msg: msg.clone() };
        assert_eq!(eff, Effect::Send { to: 2, msg });
    }
}
