//! Versioned on-disk snapshots of the coordinator plane.
//!
//! A [`Checkpoint`] captures everything the aggregator side needs to
//! resume from a round boundary bit-identically: per-job protocol state
//! (global model, optimizer words, availability mask, the history and
//! selector-feedback tapes), the driver's wire counters and virtual
//! tick, the guard plane's breakers/budgets, and every per-link delta
//! reference so re-keyed codecs emit the exact byte streams the
//! uninterrupted run would have.
//!
//! The codec is deliberately boring and hostile-input-proof:
//!
//! - **Versioned**: a 4-byte magic (`FLCK`) and a `u32` format version
//!   lead the file; unknown versions are rejected, never guessed at.
//! - **Checksummed**: an FNV-1a-64 digest of the payload follows the
//!   header; a flipped bit anywhere fails the load before any field is
//!   interpreted.
//! - **Panic-free**: decoding is a bounds-checked cursor — truncation,
//!   hostile lengths, bad enum tags and trailing garbage all surface as
//!   [`FlError::Codec`], and a failed decode returns nothing partial
//!   (the only output is a fully-validated [`Checkpoint`] value).
//!
//! Serialization is sans-IO like the rest of this crate: encode/decode
//! work on byte slices, and only `flips-net` touches the filesystem
//! (atomically, via tmp-file + rename).

use crate::driver::DriverStats;
use crate::guard::{
    BreakerState, BreakerTransition, GuardJobSnapshot, GuardPartySnapshot, GuardSnapshot,
};
use crate::history::RoundRecord;
use crate::FlError;
use flips_selection::{PartyId, RoundFeedback};
use std::collections::HashMap;

/// File magic: "FLCK" (FLIPS checkpoint).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FLCK";
/// Current format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One link's delta-codec reference at the snapshot boundary: what the
/// sender must re-key to so the next encoded global is byte-identical
/// to the uninterrupted run's.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecRefSnapshot {
    /// The link (party wire) the reference belongs to.
    pub link: u32,
    /// The job multiplexed on that link.
    pub job: u64,
    /// The round the reference was committed at.
    pub ref_round: u64,
    /// The reference bits (for top-k, the lossy reconstruction).
    pub params: Vec<f32>,
}

/// One job's complete protocol state at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// The job id.
    pub job: u64,
    /// The global model after the last closed round.
    pub global: Vec<f32>,
    /// The server optimizer's persistent words (empty for
    /// FedAvg/FedProx).
    pub optimizer: Vec<f32>,
    /// The roster availability mask (churn state).
    pub active: Vec<bool>,
    /// Closed-round records, in order.
    pub history: Vec<RoundRecord>,
    /// The selector feedback tape, one entry per closed round — replayed
    /// at restore to rebuild selector state deterministically.
    pub feedback: Vec<RoundFeedback>,
    /// The observed-latency store `(samples, batch boundaries)` for jobs
    /// on the observed deadline path; `None` for injected clocks.
    pub observed: Option<(Vec<f64>, Vec<usize>)>,
}

/// A complete coordinator-plane snapshot at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The driver's virtual tick.
    pub tick: u64,
    /// Whether the driver was draining.
    pub draining: bool,
    /// Wire counters at the boundary (restored so post-resume totals
    /// equal the uninterrupted run's, encoded byte counts included).
    pub stats: DriverStats,
    /// Per-job protocol state, ascending by job id.
    pub jobs: Vec<JobSnapshot>,
    /// The guard plane's mutable state, if a guard was installed.
    pub guard: Option<GuardSnapshot>,
    /// Per-link delta references, ascending by `(link, job)`.
    pub codec_refs: Vec<CodecRefSnapshot>,
}

// ---------------------------------------------------------------------
// Encoding (infallible: every in-memory state has a representation).
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_id_vec(out: &mut Vec<u8>, v: &[PartyId]) {
    put_u64(out, v.len() as u64);
    for &p in v {
        put_u64(out, p as u64);
    }
}

/// HashMaps encode sorted by key so the byte stream is canonical —
/// encode(decode(bytes)) == bytes, which the checksum and the property
/// suite rely on.
fn put_f64_map(out: &mut Vec<u8>, m: &HashMap<PartyId, f64>) {
    let mut entries: Vec<(&PartyId, &f64)> = m.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    put_u64(out, entries.len() as u64);
    for (&p, &v) in entries {
        put_u64(out, p as u64);
        put_f64(out, v);
    }
}

fn put_sketch_map(out: &mut Vec<u8>, m: &HashMap<PartyId, Vec<f32>>) {
    let mut entries: Vec<(&PartyId, &Vec<f32>)> = m.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    put_u64(out, entries.len() as u64);
    for (&p, v) in entries {
        put_u64(out, p as u64);
        put_f32_vec(out, v);
    }
}

fn put_record(out: &mut Vec<u8>, r: &RoundRecord) {
    put_u64(out, r.round as u64);
    put_id_vec(out, &r.selected);
    put_id_vec(out, &r.completed);
    put_id_vec(out, &r.stragglers);
    put_f64(out, r.accuracy);
    put_u64(out, r.per_label_recall.len() as u64);
    for recall in &r.per_label_recall {
        match recall {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                put_f64(out, *v);
            }
        }
    }
    put_f64(out, r.mean_train_loss);
    put_u64(out, r.bytes_down);
    put_u64(out, r.bytes_up);
    put_f64(out, r.round_duration);
}

fn put_feedback(out: &mut Vec<u8>, fb: &RoundFeedback) {
    put_u64(out, fb.round as u64);
    put_id_vec(out, &fb.selected);
    put_id_vec(out, &fb.completed);
    put_id_vec(out, &fb.stragglers);
    put_f64_map(out, &fb.train_loss);
    put_f64_map(out, &fb.duration);
    put_sketch_map(out, &fb.update_sketch);
    put_f64(out, fb.global_accuracy);
}

fn breaker_state_tag(s: BreakerState) -> u8 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn put_guard(out: &mut Vec<u8>, g: &GuardSnapshot) {
    put_u64(out, g.parties.len() as u64);
    for p in &g.parties {
        put_u64(out, p.job);
        put_u64(out, p.party);
        out.push(breaker_state_tag(p.state));
        put_u32(out, p.strikes);
        put_u64(out, p.opens_left);
        match p.tokens {
            None => out.push(0),
            Some(t) => {
                out.push(1);
                put_u32(out, t);
            }
        }
    }
    put_u64(out, g.jobs.len() as u64);
    for j in &g.jobs {
        put_u64(out, j.job);
        put_u32(out, j.admitted);
        match j.budget {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                put_u32(out, b);
            }
        }
        put_u64(out, j.opens);
    }
    put_u64(out, g.transitions.len() as u64);
    for t in &g.transitions {
        put_u64(out, t.job);
        put_u64(out, t.party);
        put_u64(out, t.open_index);
        out.push(breaker_state_tag(t.to));
    }
}

fn stats_words(stats: &DriverStats) -> [u64; 17] {
    [
        stats.frames_sent,
        stats.frames_received,
        stats.bytes_sent,
        stats.bytes_received,
        stats.corrupt_frames,
        stats.codec_mismatch_frames,
        stats.unknown_job_frames,
        stats.rejected_messages,
        stats.late_updates,
        stats.oversized_frames,
        stats.rate_limited_frames,
        stats.breaker_dropped_frames,
        stats.admission_refused_frames,
        stats.parties_ejected,
        stats.drain_refused_selections,
        stats.links_lost,
        stats.links_resumed,
    ]
}

/// Magic tag of a sealed roster segment (see [`crate::roster`]).
pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"FLRS";

/// Roster-segment envelope version.
pub(crate) const SEGMENT_VERSION: u32 = 1;

/// Seals an opaque payload in the FLCK integrity envelope — magic,
/// version, FNV-1a checksum — the same tamper evidence checkpoints get,
/// reused by the roster spill path so a damaged segment file can only
/// ever produce an error, never a silently wrong roster.
pub(crate) fn seal_segment(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&SEGMENT_MAGIC);
    put_u32(&mut out, SEGMENT_VERSION);
    put_u64(&mut out, fnv1a(payload));
    out.extend_from_slice(payload);
    out
}

/// Opens a sealed roster segment, rejecting wrong magic, unknown
/// versions, truncation and bit damage.
pub(crate) fn unseal_segment(bytes: &[u8]) -> Result<&[u8], FlError> {
    let mut cur = Cursor::new(bytes);
    let magic: [u8; 4] = cur.bytes(4)?.try_into().expect("4 bytes");
    if magic != SEGMENT_MAGIC {
        return Err(bad("not a roster segment: bad magic"));
    }
    let version = cur.u32()?;
    if version != SEGMENT_VERSION {
        return Err(bad(format!(
            "unsupported roster segment version {version} (this build reads {SEGMENT_VERSION})"
        )));
    }
    let checksum = cur.u64()?;
    let payload = &bytes[16..];
    if fnv1a(payload) != checksum {
        return Err(bad("roster segment failed its checksum"));
    }
    Ok(payload)
}

/// FNV-1a 64 over the payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Decoding (panic-free; never partial).
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader. Every accessor returns a
/// [`FlError::Codec`] on truncation; composite decoders propagate, so a
/// hostile snapshot can only ever yield an error — never a panic, never
/// a half-built value.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(msg: impl Into<String>) -> FlError {
    FlError::Codec(msg.into())
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FlError> {
        if self.remaining() < n {
            return Err(bad(format!(
                "checkpoint truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FlError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FlError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FlError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, FlError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, FlError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, FlError> {
        usize::try_from(self.u64()?).map_err(|_| bad("checkpoint length exceeds address space"))
    }

    fn bool(&mut self) -> Result<bool, FlError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("invalid bool byte {b:#04x} in checkpoint"))),
        }
    }

    /// A length prefix for elements at least `elem` bytes wide — hostile
    /// counts that could not possibly fit the remaining input are
    /// rejected before any allocation.
    fn len(&mut self, elem: usize) -> Result<usize, FlError> {
        let n = self.usize()?;
        if n.checked_mul(elem).is_none_or(|need| need > self.remaining()) {
            return Err(bad(format!(
                "checkpoint length {n} impossible with {} bytes left",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, FlError> {
        let n = self.len(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn id_vec(&mut self) -> Result<Vec<PartyId>, FlError> {
        let n = self.len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.usize()?);
        }
        Ok(v)
    }

    fn f64_map(&mut self) -> Result<HashMap<PartyId, f64>, FlError> {
        let n = self.len(16)?;
        let mut m = HashMap::with_capacity(n);
        let mut last: Option<PartyId> = None;
        for _ in 0..n {
            let k = self.usize()?;
            if last.is_some_and(|prev| prev >= k) {
                return Err(bad("checkpoint map keys not strictly ascending"));
            }
            last = Some(k);
            m.insert(k, self.f64()?);
        }
        Ok(m)
    }

    fn sketch_map(&mut self) -> Result<HashMap<PartyId, Vec<f32>>, FlError> {
        let n = self.len(16)?;
        let mut m = HashMap::with_capacity(n);
        let mut last: Option<PartyId> = None;
        for _ in 0..n {
            let k = self.usize()?;
            if last.is_some_and(|prev| prev >= k) {
                return Err(bad("checkpoint map keys not strictly ascending"));
            }
            last = Some(k);
            m.insert(k, self.f32_vec()?);
        }
        Ok(m)
    }

    fn breaker_state(&mut self) -> Result<BreakerState, FlError> {
        match self.u8()? {
            0 => Ok(BreakerState::Closed),
            1 => Ok(BreakerState::Open),
            2 => Ok(BreakerState::HalfOpen),
            b => Err(bad(format!("invalid breaker state tag {b:#04x} in checkpoint"))),
        }
    }

    fn record(&mut self) -> Result<RoundRecord, FlError> {
        let round = self.usize()?;
        let selected = self.id_vec()?;
        let completed = self.id_vec()?;
        let stragglers = self.id_vec()?;
        let accuracy = self.f64()?;
        let n = self.len(1)?;
        let mut per_label_recall = Vec::with_capacity(n);
        for _ in 0..n {
            per_label_recall.push(match self.u8()? {
                0 => None,
                1 => Some(self.f64()?),
                b => return Err(bad(format!("invalid option tag {b:#04x} in checkpoint"))),
            });
        }
        Ok(RoundRecord {
            round,
            selected,
            completed,
            stragglers,
            accuracy,
            per_label_recall,
            mean_train_loss: self.f64()?,
            bytes_down: self.u64()?,
            bytes_up: self.u64()?,
            round_duration: self.f64()?,
        })
    }

    fn feedback(&mut self) -> Result<RoundFeedback, FlError> {
        Ok(RoundFeedback {
            round: self.usize()?,
            selected: self.id_vec()?,
            completed: self.id_vec()?,
            stragglers: self.id_vec()?,
            train_loss: self.f64_map()?,
            duration: self.f64_map()?,
            update_sketch: self.sketch_map()?,
            global_accuracy: self.f64()?,
        })
    }

    fn guard(&mut self) -> Result<GuardSnapshot, FlError> {
        let n = self.len(1)?;
        let mut parties = Vec::with_capacity(n);
        for _ in 0..n {
            parties.push(GuardPartySnapshot {
                job: self.u64()?,
                party: self.u64()?,
                state: self.breaker_state()?,
                strikes: self.u32()?,
                opens_left: self.u64()?,
                tokens: match self.u8()? {
                    0 => None,
                    1 => Some(self.u32()?),
                    b => return Err(bad(format!("invalid option tag {b:#04x} in checkpoint"))),
                },
            });
        }
        let n = self.len(1)?;
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            jobs.push(GuardJobSnapshot {
                job: self.u64()?,
                admitted: self.u32()?,
                budget: match self.u8()? {
                    0 => None,
                    1 => Some(self.u32()?),
                    b => return Err(bad(format!("invalid option tag {b:#04x} in checkpoint"))),
                },
                opens: self.u64()?,
            });
        }
        let n = self.len(25)?;
        let mut transitions = Vec::with_capacity(n);
        for _ in 0..n {
            transitions.push(BreakerTransition {
                job: self.u64()?,
                party: self.u64()?,
                open_index: self.u64()?,
                to: self.breaker_state()?,
            });
        }
        Ok(GuardSnapshot { parties, jobs, transitions })
    }
}

impl Checkpoint {
    /// Serializes the snapshot: header (magic, version, checksum) then
    /// the canonical payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(4096);
        put_u64(&mut payload, self.tick);
        put_bool(&mut payload, self.draining);
        for w in stats_words(&self.stats) {
            put_u64(&mut payload, w);
        }
        put_u64(&mut payload, self.jobs.len() as u64);
        for job in &self.jobs {
            put_u64(&mut payload, job.job);
            put_f32_vec(&mut payload, &job.global);
            put_f32_vec(&mut payload, &job.optimizer);
            put_u64(&mut payload, job.active.len() as u64);
            for &a in &job.active {
                put_bool(&mut payload, a);
            }
            put_u64(&mut payload, job.history.len() as u64);
            for r in &job.history {
                put_record(&mut payload, r);
            }
            put_u64(&mut payload, job.feedback.len() as u64);
            for fb in &job.feedback {
                put_feedback(&mut payload, fb);
            }
            match &job.observed {
                None => payload.push(0),
                Some((samples, batches)) => {
                    payload.push(1);
                    put_u64(&mut payload, samples.len() as u64);
                    for &s in samples {
                        put_f64(&mut payload, s);
                    }
                    put_u64(&mut payload, batches.len() as u64);
                    for &b in batches {
                        put_u64(&mut payload, b as u64);
                    }
                }
            }
        }
        match &self.guard {
            None => payload.push(0),
            Some(g) => {
                payload.push(1);
                put_guard(&mut payload, g);
            }
        }
        put_u64(&mut payload, self.codec_refs.len() as u64);
        for r in &self.codec_refs {
            put_u32(&mut payload, r.link);
            put_u64(&mut payload, r.job);
            put_u64(&mut payload, r.ref_round);
            put_f32_vec(&mut payload, &r.params);
        }

        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut out, CHECKPOINT_VERSION);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes a snapshot, validating magic, version, checksum and
    /// every field — the function either returns a complete, internally
    /// consistent [`Checkpoint`] or an error, never anything partial,
    /// and never panics on hostile input.
    ///
    /// # Errors
    ///
    /// [`FlError::Codec`] on any malformation: wrong magic, unknown
    /// version, checksum mismatch, truncation, impossible lengths, bad
    /// enum/option/bool tags, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, FlError> {
        let mut c = Cursor::new(bytes);
        let magic = c.bytes(4)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(bad("not a FLIPS checkpoint (bad magic)"));
        }
        let version = c.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            )));
        }
        let checksum = c.u64()?;
        let payload = &bytes[c.pos..];
        if fnv1a(payload) != checksum {
            return Err(bad("checkpoint checksum mismatch (corrupt or truncated snapshot)"));
        }

        let tick = c.u64()?;
        let draining = c.bool()?;
        let mut words = [0u64; 17];
        for w in &mut words {
            *w = c.u64()?;
        }
        let stats = DriverStats {
            frames_sent: words[0],
            frames_received: words[1],
            bytes_sent: words[2],
            bytes_received: words[3],
            corrupt_frames: words[4],
            codec_mismatch_frames: words[5],
            unknown_job_frames: words[6],
            rejected_messages: words[7],
            late_updates: words[8],
            oversized_frames: words[9],
            rate_limited_frames: words[10],
            breaker_dropped_frames: words[11],
            admission_refused_frames: words[12],
            parties_ejected: words[13],
            drain_refused_selections: words[14],
            links_lost: words[15],
            links_resumed: words[16],
            // Roster spill counters are live-computed from attached
            // stores, never persisted (see `DriverStats::roster_spilled`).
            ..DriverStats::default()
        };

        let n = c.len(1)?;
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            let job = c.u64()?;
            let global = c.f32_vec()?;
            let optimizer = c.f32_vec()?;
            let an = c.len(1)?;
            let mut active = Vec::with_capacity(an);
            for _ in 0..an {
                active.push(c.bool()?);
            }
            let hn = c.len(1)?;
            let mut history = Vec::with_capacity(hn);
            for _ in 0..hn {
                history.push(c.record()?);
            }
            let fn_ = c.len(1)?;
            let mut feedback = Vec::with_capacity(fn_);
            for _ in 0..fn_ {
                feedback.push(c.feedback()?);
            }
            let observed = match c.u8()? {
                0 => None,
                1 => {
                    let sn = c.len(8)?;
                    let mut samples = Vec::with_capacity(sn);
                    for _ in 0..sn {
                        samples.push(c.f64()?);
                    }
                    let bn = c.len(8)?;
                    let mut batches = Vec::with_capacity(bn);
                    for _ in 0..bn {
                        batches.push(c.usize()?);
                    }
                    Some((samples, batches))
                }
                b => return Err(bad(format!("invalid option tag {b:#04x} in checkpoint"))),
            };
            jobs.push(JobSnapshot { job, global, optimizer, active, history, feedback, observed });
        }

        let guard = match c.u8()? {
            0 => None,
            1 => Some(c.guard()?),
            b => return Err(bad(format!("invalid option tag {b:#04x} in checkpoint"))),
        };

        let rn = c.len(24)?;
        let mut codec_refs = Vec::with_capacity(rn);
        for _ in 0..rn {
            codec_refs.push(CodecRefSnapshot {
                link: c.u32()?,
                job: c.u64()?,
                ref_round: c.u64()?,
                params: c.f32_vec()?,
            });
        }

        if c.remaining() != 0 {
            return Err(bad(format!("{} trailing bytes after checkpoint payload", c.remaining())));
        }
        Ok(Checkpoint { tick, draining, stats, jobs, guard, codec_refs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut fb = RoundFeedback::for_round(0, vec![2, 0, 1], vec![0, 2], vec![1], 0.5);
        fb.train_loss.insert(0, 1.25);
        fb.train_loss.insert(2, 0.75);
        fb.duration.insert(0, 3.0);
        fb.duration.insert(2, 4.5);
        fb.update_sketch.insert(0, vec![1.0, -2.0]);
        fb.update_sketch.insert(2, vec![f32::NAN, 0.0]);
        Checkpoint {
            tick: 42,
            draining: true,
            stats: DriverStats {
                frames_sent: 10,
                bytes_sent: 999,
                links_lost: 2,
                links_resumed: 1,
                ..DriverStats::default()
            },
            jobs: vec![JobSnapshot {
                job: 0xF11F,
                global: vec![0.5, -0.25, f32::INFINITY],
                optimizer: vec![1.0, 2.0],
                active: vec![true, false, true],
                history: vec![RoundRecord {
                    round: 0,
                    selected: vec![2, 0, 1],
                    completed: vec![0, 2],
                    stragglers: vec![1],
                    accuracy: 0.5,
                    per_label_recall: vec![Some(0.25), None, Some(1.0)],
                    mean_train_loss: 1.0,
                    bytes_down: 100,
                    bytes_up: 50,
                    round_duration: 2.5,
                }],
                feedback: vec![fb],
                observed: Some((vec![0.1, 0.2], vec![2])),
            }],
            guard: Some(GuardSnapshot {
                parties: vec![GuardPartySnapshot {
                    job: 0xF11F,
                    party: 1,
                    state: BreakerState::Open,
                    strikes: 3,
                    opens_left: 2,
                    tokens: Some(7),
                }],
                jobs: vec![GuardJobSnapshot {
                    job: 0xF11F,
                    admitted: 5,
                    budget: Some(48),
                    opens: 1,
                }],
                transitions: vec![BreakerTransition {
                    job: 0xF11F,
                    party: 1,
                    open_index: 1,
                    to: BreakerState::Open,
                }],
            }),
            codec_refs: vec![CodecRefSnapshot {
                link: 1,
                job: 0xF11F,
                ref_round: 0,
                params: vec![0.5, -0.25, f32::INFINITY],
            }],
        }
    }

    /// f32 NaNs break PartialEq; compare snapshots through their
    /// canonical encodings instead.
    fn assert_same(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn round_trips_a_representative_snapshot() {
        let cp = sample();
        let bytes = cp.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_same(&cp, &back);
        assert_eq!(back.stats.links_lost, 2);
        assert_eq!(back.jobs[0].observed, Some((vec![0.1, 0.2], vec![2])));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().encode();
        // The header's checksum protects the payload; flips inside the
        // header itself break magic/version/checksum directly.
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            assert!(Checkpoint::decode(&evil).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        // The checksum already catches the altered payload slice.
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn foreign_magic_and_future_versions_are_refused() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(Checkpoint::decode(&bytes).is_err());
        let mut bytes = sample().encode();
        bytes[4] = 0xFF;
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefixes_cannot_force_allocation() {
        // A payload claiming 2^60 jobs must fail fast on the length
        // guard, not attempt the allocation.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // tick
        payload.push(0); // draining
        for _ in 0..17 {
            put_u64(&mut payload, 0);
        }
        put_u64(&mut payload, 1 << 60); // jobs count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut bytes, CHECKPOINT_VERSION);
        put_u64(&mut bytes, fnv1a(&payload));
        bytes.extend_from_slice(&payload);
        assert!(Checkpoint::decode(&bytes).is_err());
    }
}
