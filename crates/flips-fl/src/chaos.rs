//! Seeded, replayable fault injection for the serialized wire.
//!
//! The fault suites (`tests/transport_faults.rs`,
//! `tests/sharded_runtime.rs`) used to hand-craft their hostile frames
//! ad hoc — a truncated slice here, a flipped magic there. This module
//! generalizes that into a **deterministic chaos schedule**: a pure
//! function from `(seed, link, inbound-frame index)` to a
//! [`ChaosAction`], applied by a [`ChaosTransport`] wrapper around any
//! [`Transport`]. Because the schedule is a pure function, every run
//! under it is replayable — which is what lets the guard suite assert
//! that breaker behavior under chaos is itself a pure function of the
//! schedule (run twice, compare transition logs), and that the seeded
//! histories of untargeted jobs stay bit-identical under any schedule.
//!
//! # Actions
//!
//! Each inbound frame draws one action (overridable per index for
//! scripted scenarios):
//!
//! - [`ChaosAction::Deliver`] — pass through (the dominant draw);
//! - [`ChaosAction::Duplicate`] — deliver, and queue an identical copy
//!   (at-least-once redelivery);
//! - [`ChaosAction::CorruptCopy`] — deliver, and queue a copy with its
//!   message magic flipped (bit rot that cannot decode — the codec has
//!   no payload checksum, so a *decodable* corruption would be
//!   indistinguishable from a legitimate message);
//! - [`ChaosAction::Delay`] — queue the frame instead of delivering it
//!   now (applied to local-update frames only, the one kind whose
//!   in-round order is provably irrelevant — control frames downgrade
//!   to a delivery, because breaking their per-link FIFO can push a
//!   heartbeat past its round's eager close and change the round's
//!   observed byte accounting);
//! - [`ChaosAction::Flood`] — deliver, and queue `n` forged heartbeats
//!   claiming the schedule's flood target (round `u64::MAX`, so a
//!   coordinator can only ever reject them — a flood probes the guard
//!   plane, not the round state machine);
//! - [`ChaosAction::Drop`] — discard (weight 0 by default: dropping
//!   protocol frames genuinely loses state, which is a different test
//!   than "hostile traffic must not move anything");
//! - [`ChaosAction::Disconnect`] — sever the link: the drawn frame and
//!   everything after it on that link are held, in order, until the
//!   wire runs dry, when the link "reconnects" and the held traffic
//!   flows again. Whole-link FIFO is preserved, so this is the one
//!   destructive-looking fault seeded histories provably survive — it
//!   models exactly what the socket runtime's reconnect/resume path
//!   guarantees (weight 0 by default; recovery suites turn it on).
//!
//! Queued frames sit in a backlog released only when the inner
//! transport runs dry, so chaos reorders traffic **within** a pump
//! window but never across a clock advance — drivers pump until quiet
//! before advancing time, and the wrapper keeps that invariant intact.
//!
//! # Determinism scope
//!
//! Over a single-threaded wire the whole run is deterministic. Over the
//! sharded runtime the *schedule* is still deterministic per
//! `(link, index)`, but which frame occupies an index depends on thread
//! interleaving — so sharded chaos tests must target fake parties/jobs
//! (whose traffic can strike no real breaker) or assert only
//! order-independent facts, exactly as the existing jitter suite does.

use crate::message::{frame, AGGREGATOR_DEST};
use crate::transport::Transport;
use crate::{FlError, WireMessage};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// What the schedule does to one inbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Pass the frame through untouched.
    Deliver,
    /// Discard the frame (destructive; default weight 0).
    Drop,
    /// Deliver the frame and queue an identical copy.
    Duplicate,
    /// Deliver the frame and queue a copy with its message magic
    /// flipped (fails decode, counted as corrupt by the receiver).
    CorruptCopy,
    /// Queue the frame; it arrives when the wire next runs dry. Only
    /// applied to local-update frames (order-independent at round
    /// close); control frames downgrade to [`ChaosAction::Deliver`].
    Delay,
    /// Deliver the frame and queue this many forged heartbeats claiming
    /// the schedule's flood target.
    Flood(u32),
    /// Sever the link: this frame and every later frame on the link are
    /// backlogged (in order) until the wire next runs dry, when the
    /// link "reconnects" and the held traffic is released. Whole-link
    /// FIFO is preserved, so seeded histories survive an outage — the
    /// fault models a TCP link death inside one pump window. Weight 0
    /// by default.
    Disconnect,
}

/// Relative draw weights for the seeded action stream. A frame's action
/// is drawn proportionally; all-zero weights deliver everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosWeights {
    /// Weight of [`ChaosAction::Deliver`].
    pub deliver: u32,
    /// Weight of [`ChaosAction::Drop`].
    pub drop: u32,
    /// Weight of [`ChaosAction::Duplicate`].
    pub duplicate: u32,
    /// Weight of [`ChaosAction::CorruptCopy`].
    pub corrupt: u32,
    /// Weight of [`ChaosAction::Delay`].
    pub delay: u32,
    /// Weight of [`ChaosAction::Flood`].
    pub flood: u32,
    /// Weight of [`ChaosAction::Disconnect`].
    pub disconnect: u32,
}

impl Default for ChaosWeights {
    /// Non-destructive defaults: deliveries dominate, drops are off.
    fn default() -> Self {
        ChaosWeights {
            deliver: 12,
            drop: 0,
            duplicate: 1,
            corrupt: 1,
            delay: 1,
            flood: 1,
            disconnect: 0,
        }
    }
}

impl ChaosWeights {
    fn total(&self) -> u64 {
        u64::from(self.deliver)
            + u64::from(self.drop)
            + u64::from(self.duplicate)
            + u64::from(self.corrupt)
            + u64::from(self.delay)
            + u64::from(self.flood)
            + u64::from(self.disconnect)
    }
}

/// A deterministic, replayable fault schedule: a pure function from
/// `(link, inbound-frame index)` to a [`ChaosAction`], plus explicit
/// per-index overrides for scripted scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    seed: u64,
    weights: ChaosWeights,
    /// Forged flood heartbeats claim this `(job, party)`. Defaults to a
    /// job nobody owns, so a flood can strike no real breaker unless a
    /// test aims it at one.
    flood_job: u64,
    /// See `flood_job`.
    flood_party: u64,
    /// Frames forged per drawn [`ChaosAction::Flood`].
    flood_frames: u32,
    /// Only frames of this job draw non-[`ChaosAction::Deliver`]
    /// actions (`None` = all frames do). Lets a test perturb one job
    /// while proving its wire-mates never move.
    target_job: Option<u64>,
    /// Scripted exceptions: `(link, index) → action`.
    overrides: BTreeMap<(usize, u64), ChaosAction>,
}

impl ChaosSchedule {
    /// A seeded schedule with the default (non-destructive) weights and
    /// a flood target no coordinator owns.
    pub fn seeded(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            weights: ChaosWeights::default(),
            flood_job: 0xDEAD_BEEF,
            flood_party: 0,
            flood_frames: 4,
            target_job: None,
            overrides: BTreeMap::new(),
        }
    }

    /// A schedule that delivers everything — chaos comes only from
    /// [`ChaosSchedule::at`] overrides. The scripted-scenario base.
    pub fn quiet() -> Self {
        let mut s = ChaosSchedule::seeded(0);
        s.weights = ChaosWeights {
            deliver: 1,
            drop: 0,
            duplicate: 0,
            corrupt: 0,
            delay: 0,
            flood: 0,
            disconnect: 0,
        };
        s
    }

    /// Replaces the draw weights.
    #[must_use]
    pub fn weights(mut self, weights: ChaosWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Restricts non-delivery actions to frames of one job.
    #[must_use]
    pub fn target_job(mut self, job: u64) -> Self {
        self.target_job = Some(job);
        self
    }

    /// Aims forged floods at a `(job, party)` pair and sets the forged
    /// frame count per flood action.
    #[must_use]
    pub fn flood_target(mut self, job: u64, party: u64, frames: u32) -> Self {
        self.flood_job = job;
        self.flood_party = party;
        self.flood_frames = frames;
        self
    }

    /// Scripts an explicit action for the `index`-th inbound frame on
    /// `link`, overriding the seeded draw.
    #[must_use]
    pub fn at(mut self, link: usize, index: u64, action: ChaosAction) -> Self {
        self.overrides.insert((link, index), action);
        self
    }

    /// The action for the `index`-th inbound frame on `link` — a pure
    /// function of the schedule, which is the whole point.
    pub fn action_for(&self, link: usize, index: u64) -> ChaosAction {
        if let Some(action) = self.overrides.get(&(link, index)) {
            return *action;
        }
        let total = self.weights.total();
        if total == 0 {
            return ChaosAction::Deliver;
        }
        let mut r = splitmix64(
            self.seed
                ^ (link as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        ) % total;
        let w = self.weights;
        for (weight, action) in [
            (w.deliver, ChaosAction::Deliver),
            (w.drop, ChaosAction::Drop),
            (w.duplicate, ChaosAction::Duplicate),
            (w.corrupt, ChaosAction::CorruptCopy),
            (w.delay, ChaosAction::Delay),
            (w.flood, ChaosAction::Flood(self.flood_frames)),
            (w.disconnect, ChaosAction::Disconnect),
        ] {
            if r < u64::from(weight) {
                return action;
            }
            r -= u64::from(weight);
        }
        ChaosAction::Deliver
    }

    /// The forged frame a flood action injects: a heartbeat claiming
    /// the flood target, with round `u64::MAX` so no open round can
    /// ever accept it — it exists to exercise guards, not rounds.
    pub fn flood_frame(&self) -> Bytes {
        frame(
            AGGREGATOR_DEST,
            &WireMessage::Heartbeat {
                job: self.flood_job,
                round: u64::MAX,
                party: self.flood_party,
            },
        )
    }
}

/// One applied (non-delivery) action, for post-run assertions: the
/// receiver's counters must account for exactly these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The link the frame arrived on.
    pub link: usize,
    /// The frame's inbound index on that link.
    pub index: u64,
    /// The action applied.
    pub action: ChaosAction,
}

/// A [`Transport`] wrapper applying a [`ChaosSchedule`] to inbound
/// frames. Sends pass through untouched; wrap each side of a wire
/// separately to perturb both directions.
#[derive(Debug)]
pub struct ChaosTransport<T: Transport> {
    inner: T,
    schedule: Option<ChaosSchedule>,
    /// Inbound frames seen per link (the schedule's index domain).
    seen: Vec<u64>,
    /// Frames the schedule queued, released when the inner transport
    /// runs dry — chaos reorders within a pump window, never across a
    /// clock advance.
    backlog: VecDeque<(usize, Bytes)>,
    /// Links severed by [`ChaosAction::Disconnect`]: while down, every
    /// frame of the link is backlogged in arrival order. All links come
    /// back up when the inner transport runs dry.
    down: Vec<bool>,
    log: Vec<ChaosEvent>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: T, schedule: ChaosSchedule) -> Self {
        let links = inner.links().max(1);
        ChaosTransport {
            inner,
            schedule: Some(schedule),
            seen: vec![0; links],
            backlog: VecDeque::new(),
            down: vec![false; links],
            log: Vec::new(),
        }
    }

    /// Wraps `inner` with no schedule: a pure passthrough. Lets callers
    /// build one driver type whether or not chaos is enabled.
    pub fn inert(inner: T) -> Self {
        let links = inner.links().max(1);
        ChaosTransport {
            inner,
            schedule: None,
            seen: vec![0; links],
            backlog: VecDeque::new(),
            down: vec![false; links],
            log: Vec::new(),
        }
    }

    /// Every non-delivery action applied so far, in application order.
    pub fn log(&self) -> &[ChaosEvent] {
        &self.log
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Whether an action applies to this frame (the schedule may be
    /// scoped to one job).
    fn targeted(schedule: &ChaosSchedule, raw: &[u8]) -> bool {
        match schedule.target_job {
            None => true,
            Some(job) => crate::message::frame_job_of(raw) == Some(job),
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.inner.send(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        Ok(self.try_recv_tagged()?.map(|(_, frame)| frame))
    }

    fn links(&self) -> usize {
        self.inner.links()
    }

    fn link_for(&self, job: u64, party: u64) -> usize {
        self.inner.link_for(job, party)
    }

    fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
        let Some(schedule) = self.schedule.clone() else {
            return self.inner.try_recv_tagged();
        };
        loop {
            let Some((link, raw)) = self.inner.try_recv_tagged()? else {
                // Inner dry: severed links reconnect, then the backlog
                // is released (delayed frames, injected copies, and a
                // dead link's held traffic arrive here, still inside
                // the pump window).
                self.down.fill(false);
                return Ok(self.backlog.pop_front());
            };
            let index = {
                if link >= self.seen.len() {
                    self.seen.resize(link + 1, 0);
                }
                let i = self.seen[link];
                self.seen[link] += 1;
                i
            };
            if link >= self.down.len() {
                self.down.resize(link + 1, false);
            }
            if self.down[link] {
                // The link is severed: hold the frame (its chaos index
                // is consumed above, so the schedule's draw stream for
                // later frames is unaffected by the outage).
                self.backlog.push_back((link, raw));
                continue;
            }
            let mut action = if Self::targeted(&schedule, &raw) {
                schedule.action_for(link, index)
            } else {
                ChaosAction::Deliver
            };
            // Delay only reorders local updates: aggregation re-sorts
            // them by party id at round close, so a late update is
            // provably harmless. Delaying a *control* frame breaks the
            // per-link FIFO the protocol assumes — a heartbeat pushed
            // past its round's eager close (rounds close the instant
            // the last update lands) bounces as WrongRound and its
            // bytes vanish from the round's observed accounting.
            if action == ChaosAction::Delay && !crate::message::frame_is_update(&raw) {
                action = ChaosAction::Deliver;
            }
            if action != ChaosAction::Deliver {
                self.log.push(ChaosEvent { link, index, action });
            }
            match action {
                ChaosAction::Deliver => return Ok(Some((link, raw))),
                ChaosAction::Drop => continue,
                ChaosAction::Duplicate => {
                    self.backlog.push_back((link, raw.clone()));
                    return Ok(Some((link, raw)));
                }
                ChaosAction::CorruptCopy => {
                    let mut copy = raw.to_vec();
                    // Flip the message magic (first byte past the frame
                    // header): the copy cannot decode, but its claimed
                    // job/party still peek for guard attribution.
                    if let Some(byte) = copy.get_mut(crate::message::FRAME_HEADER) {
                        *byte ^= 0xFF;
                    }
                    self.backlog.push_back((link, Bytes::from(copy)));
                    return Ok(Some((link, raw)));
                }
                ChaosAction::Delay => {
                    self.backlog.push_back((link, raw));
                    continue;
                }
                ChaosAction::Flood(n) => {
                    let forged = schedule.flood_frame();
                    for _ in 0..n {
                        self.backlog.push_back((link, forged.clone()));
                    }
                    return Ok(Some((link, raw)));
                }
                ChaosAction::Disconnect => {
                    self.down[link] = true;
                    self.backlog.push_back((link, raw));
                    continue;
                }
            }
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer — enough mixing that
/// consecutive frame indices draw independent-looking actions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{deframe, frame_job};
    use crate::transport::MemoryTransport;

    fn heartbeat(job: u64, party: u64) -> Bytes {
        frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job, round: 0, party })
    }

    #[test]
    fn schedule_is_a_pure_function() {
        let s = ChaosSchedule::seeded(42);
        for link in 0..4 {
            for index in 0..256 {
                assert_eq!(s.action_for(link, index), s.action_for(link, index));
            }
        }
        assert_eq!(s, ChaosSchedule::seeded(42));
    }

    #[test]
    fn distinct_seeds_draw_distinct_streams() {
        let a: Vec<_> = (0..64).map(|i| ChaosSchedule::seeded(1).action_for(0, i)).collect();
        let b: Vec<_> = (0..64).map(|i| ChaosSchedule::seeded(2).action_for(0, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn default_weights_never_drop() {
        let s = ChaosSchedule::seeded(7);
        for index in 0..2048 {
            assert_ne!(s.action_for(0, index), ChaosAction::Drop);
        }
    }

    #[test]
    fn overrides_beat_the_seeded_draw() {
        let s = ChaosSchedule::quiet().at(1, 3, ChaosAction::Drop);
        assert_eq!(s.action_for(1, 3), ChaosAction::Drop);
        assert_eq!(s.action_for(1, 2), ChaosAction::Deliver);
        assert_eq!(s.action_for(0, 3), ChaosAction::Deliver);
    }

    #[test]
    fn quiet_schedule_is_a_passthrough() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        let mut chaos = ChaosTransport::new(rx, ChaosSchedule::quiet());
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert!(chaos.try_recv().unwrap().is_none());
        assert!(chaos.log().is_empty());
    }

    #[test]
    fn duplicate_queues_an_identical_copy_behind_live_traffic() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        tx.send(&heartbeat(1, 3)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Duplicate);
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        // Live traffic first; the copy surfaces when the inner runs dry.
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 3));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert!(chaos.try_recv().unwrap().is_none());
        assert_eq!(
            chaos.log(),
            &[ChaosEvent { link: 0, index: 0, action: ChaosAction::Duplicate }]
        );
    }

    #[test]
    fn corrupt_copy_cannot_decode_but_still_peeks() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(9, 2)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::CorruptCopy);
        let mut chaos = ChaosTransport::new(rx, schedule);
        let original = chaos.try_recv().unwrap().unwrap();
        assert!(deframe(original).is_ok());
        let copy = chaos.try_recv().unwrap().unwrap();
        assert!(deframe(copy.clone()).is_err(), "flipped magic must not decode");
        assert_eq!(frame_job(&copy), Some(9), "attribution survives the corruption");
    }

    fn update(job: u64, party: u64) -> Bytes {
        frame(
            AGGREGATOR_DEST,
            &WireMessage::LocalUpdate {
                job,
                round: 0,
                party,
                num_samples: 1,
                mean_loss: 0.5,
                duration: 0.1,
                params: vec![1.0, 2.0],
            },
        )
    }

    #[test]
    fn delay_holds_an_update_until_the_wire_runs_dry() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&update(1, 2)).unwrap();
        tx.send(&heartbeat(1, 3)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Delay);
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 3));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), update(1, 2));
        assert!(chaos.try_recv().unwrap().is_none());
    }

    #[test]
    fn delay_downgrades_to_deliver_for_control_frames() {
        // Delaying a heartbeat past its round's close would change the
        // round's observed byte accounting — so control frames must
        // pass through in FIFO order even when the draw says Delay.
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        tx.send(&heartbeat(1, 3)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Delay);
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 3));
        assert!(chaos.try_recv().unwrap().is_none());
        assert!(chaos.log().is_empty(), "a downgraded delay was never applied");
    }

    #[test]
    fn flood_injects_forged_frames_for_the_target() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        let schedule = ChaosSchedule::quiet().flood_target(7, 5, 3).at(0, 0, ChaosAction::Flood(3));
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        for _ in 0..3 {
            let forged = chaos.try_recv().unwrap().unwrap();
            match deframe(forged).unwrap().1 {
                WireMessage::Heartbeat { job, round, party } => {
                    assert_eq!((job, round, party), (7, u64::MAX, 5));
                }
                other => panic!("wrong forged message {other:?}"),
            }
        }
        assert!(chaos.try_recv().unwrap().is_none());
    }

    #[test]
    fn drop_discards_the_frame() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        tx.send(&heartbeat(1, 3)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Drop);
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 3));
        assert!(chaos.try_recv().unwrap().is_none());
    }

    #[test]
    fn target_job_scopes_the_chaos() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap(); // untargeted job
        tx.send(&heartbeat(9, 3)).unwrap(); // targeted job
                                            // Index 0 and 1 both scripted to drop — only job 9's frame may
                                            // actually draw it.
        let schedule = ChaosSchedule::quiet().target_job(9).at(0, 0, ChaosAction::Drop).at(
            0,
            1,
            ChaosAction::Drop,
        );
        let mut chaos = ChaosTransport::new(rx, schedule);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert!(chaos.try_recv().unwrap().is_none(), "job 9's frame was dropped");
    }

    #[test]
    fn disconnect_holds_the_whole_link_until_the_wire_runs_dry() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        tx.send(&update(1, 3)).unwrap();
        tx.send(&heartbeat(1, 4)).unwrap();
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Disconnect);
        let mut chaos = ChaosTransport::new(rx, schedule);
        // The link died on its first frame: everything is held, then
        // released in arrival order once the wire runs dry — whole-link
        // FIFO survives the outage.
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), update(1, 3));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 4));
        assert!(chaos.try_recv().unwrap().is_none());
        assert_eq!(
            chaos.log(),
            &[ChaosEvent { link: 0, index: 0, action: ChaosAction::Disconnect }]
        );
    }

    #[test]
    fn disconnect_still_consumes_chaos_indices_while_down() {
        // Frames held by a dead link keep consuming schedule indices, so
        // an outage cannot shift later frames onto different draws.
        let (mut tx, rx) = MemoryTransport::pair();
        for party in 0..4 {
            tx.send(&heartbeat(1, party)).unwrap();
        }
        let schedule =
            ChaosSchedule::quiet().at(0, 0, ChaosAction::Disconnect).at(0, 2, ChaosAction::Drop);
        let mut chaos = ChaosTransport::new(rx, schedule);
        // Index 2's Drop lands on the frame held behind the outage:
        // held frames drew no action, so the drop silently never fires —
        // indices were consumed, overrides on held frames are inert.
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 0));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 1));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 3));
        assert!(chaos.try_recv().unwrap().is_none());
    }

    /// A two-link inbound-only transport for exercising per-link faults.
    struct TwoLinks {
        queue: VecDeque<(usize, Bytes)>,
    }

    impl Transport for TwoLinks {
        fn send(&mut self, _frame: &[u8]) -> Result<(), FlError> {
            Ok(())
        }
        fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
            Ok(self.queue.pop_front().map(|(_, f)| f))
        }
        fn links(&self) -> usize {
            2
        }
        fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
            Ok(self.queue.pop_front())
        }
    }

    #[test]
    fn disconnect_leaves_other_links_flowing() {
        let inner = TwoLinks {
            queue: VecDeque::from([
                (0, heartbeat(1, 2)),
                (1, heartbeat(1, 3)),
                (0, heartbeat(1, 4)),
            ]),
        };
        let schedule = ChaosSchedule::quiet().at(0, 0, ChaosAction::Disconnect);
        let mut chaos = ChaosTransport::new(inner, schedule);
        // Link 0 is down; link 1's frame flows live, link 0's traffic
        // waits for the dry point.
        assert_eq!(chaos.try_recv_tagged().unwrap().unwrap(), (1, heartbeat(1, 3)));
        assert_eq!(chaos.try_recv_tagged().unwrap().unwrap(), (0, heartbeat(1, 2)));
        assert_eq!(chaos.try_recv_tagged().unwrap().unwrap(), (0, heartbeat(1, 4)));
        assert!(chaos.try_recv_tagged().unwrap().is_none());
    }

    #[test]
    fn inert_wrapper_is_invisible() {
        let (mut tx, rx) = MemoryTransport::pair();
        tx.send(&heartbeat(1, 2)).unwrap();
        let mut chaos = ChaosTransport::inert(rx);
        assert_eq!(chaos.try_recv().unwrap().unwrap(), heartbeat(1, 2));
        assert!(chaos.try_recv().unwrap().is_none());
        assert!(chaos.log().is_empty());
    }
}
