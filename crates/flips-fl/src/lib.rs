//! # flips-fl — the federated-learning runtime
//!
//! A policy-agnostic FL aggregator in the mold the paper describes (§2),
//! built **sans-IO**: round policy is a pure state machine that consumes
//! protocol events and emits effects, and everything that touches the
//! outside world (transport, clocks, training schedulers) lives in a
//! driver. Each round, the coordinator *selects* participants (through
//! any [`flips_selection::ParticipantSelector`]), *dispatches* the global
//! model as wire messages, parties *train locally* (Algorithm 1,
//! participant side), updates are *collected* until the round deadline —
//! parties that miss it close as stragglers — then *aggregated*, and the
//! server optimizer advances the global model.
//!
//! Modules:
//!
//! - [`config`] — FL algorithms (FedAvg, FedProx, FedYogi, FedAdam,
//!   FedAdagrad) and job/local-training configuration;
//! - [`message`] — the wire protocol with exact byte accounting (the
//!   paper's communication-cost metric);
//! - [`codec`] — pluggable, per-link negotiated model-payload codecs
//!   (raw f32, bit-exact XOR-delta compression with an optional rANS
//!   entropy stage, lossy top-k sparsification, opt-in f16) and the
//!   reference-model state both ends of a wire share;
//! - [`rans`] — the hand-rolled static-model range coder behind the
//!   entropy stage;
//! - [`events`] — the [`Event`]/[`Effect`] vocabulary of the sans-IO
//!   protocol;
//! - [`coordinator`] — the aggregator-side protocol state machine
//!   (selection, round open/close, duplicate rejection, aggregation,
//!   evaluation, selector feedback) — no I/O, clocks or training;
//! - [`endpoint`] — the party-side protocol state machine
//!   (`GlobalModel` in, `LocalUpdate` out);
//! - [`party`] — participant-side local training;
//! - [`latency`] — the platform-heterogeneity model (per-party speeds);
//! - [`straggler`] — the simulation's deadline model: picks the parties
//!   whose updates miss each round's deadline (the paper's 10%/20%
//!   straggler regimes);
//! - [`server`] — update aggregation and server optimizers;
//! - [`history`] — per-round records and the metrics the paper's tables
//!   report (rounds-to-target, peak accuracy, bytes transferred);
//! - [`aggregator`] — the in-process driver pumping coordinator and
//!   endpoints;
//! - [`transport`] — frame-oriented byte transports (in-memory channel,
//!   length-prefix-framed streams) every message crosses as encoded
//!   bytes;
//! - [`driver`] — the serialized-transport driver: a timer wheel plus a
//!   [`driver::MultiJobDriver`] multiplexing many concurrent jobs over
//!   one transport, and the [`driver::PartyPool`] serving the party side
//!   of the wire;
//! - [`guard`] — the deterministic inbound guard plane: per-party
//!   token-bucket rate limits, circuit breakers ejecting chronically
//!   hostile parties, per-round admission control, and graceful drain —
//!   all driven by round opens, never by wall clocks;
//! - [`chaos`] — the seeded fault-injection harness: a replayable
//!   schedule of drop/duplicate/corrupt/delay/flood actions applied at
//!   the transport seam, for exercising the guard plane (and everything
//!   above it) deterministically;
//! - [`runtime`] — the threaded sharded runtime: party shards training
//!   in parallel on worker threads, the driver on a dedicated
//!   coordinator thread, histories bit-identical to the single-threaded
//!   paths.
//!
//! # Example: one seeded round trip
//!
//! Drive a small seeded job to completion and read its history (the
//! one-stop [`SimulationBuilder`] in `flips-core` wraps exactly this):
//!
//! ```
//! use flips_fl::{FlJob, FlJobConfig, LocalTrainingConfig};
//! use flips_data::dataset::{balanced_test_set, generate_population};
//! use flips_data::{partition, DatasetProfile, PartitionStrategy};
//! use flips_selection::RandomSelector;
//!
//! let profile = DatasetProfile::femnist().scaled(8, 30);
//! let population = generate_population(&profile, profile.default_total_samples, 7);
//! let parts =
//!     partition(&population, 8, PartitionStrategy::Dirichlet { alpha: 1.0 }, 5, 7).unwrap();
//! let test = balanced_test_set(&profile, 5, 7);
//! let config = FlJobConfig {
//!     rounds: 2,
//!     parties_per_round: 3,
//!     local: LocalTrainingConfig { epochs: 1, ..Default::default() },
//!     ..FlJobConfig::new(profile.model.clone())
//! };
//! let selector = Box::new(RandomSelector::new(8, 7));
//! let mut job = FlJob::new(parts.parties, test, config, selector).unwrap();
//! let history = job.run().unwrap();
//! assert_eq!(history.len(), 2);
//! ```
//!
//! [`SimulationBuilder`]: https://docs.rs/flips-core

#![warn(missing_docs)]

pub mod aggregator;
pub mod aggtree;
pub mod chaos;
pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod coordinator;
pub mod driver;
pub mod endpoint;
pub mod events;
pub mod guard;
pub mod history;
pub mod latency;
pub mod message;
pub mod party;
pub mod rans;
pub mod roster;
pub mod runtime;
pub mod server;
pub mod straggler;
pub mod transport;

pub use aggregator::{FlJob, FlJobConfig, JobParts};
pub use aggtree::ExactWeightedSum;
pub use chaos::{ChaosAction, ChaosEvent, ChaosSchedule, ChaosTransport, ChaosWeights};
pub use checkpoint::{Checkpoint, CodecRefSnapshot, JobSnapshot};
pub use codec::{CodecMap, ModelCodec, Negotiation, PayloadCodec};
pub use config::{DeadlinePolicy, FlAlgorithm, LocalTrainingConfig};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use driver::{
    run_lockstep, DeadlineSource, DrainReport, DriverStats, MultiJobDriver, PartyPool, TimerWheel,
};
pub use endpoint::PartyEndpoint;
pub use events::{Effect, Event, RejectReason};
pub use guard::{
    BreakerConfig, BreakerState, BreakerTransition, FrameKind, FrameVerdict, GuardConfig,
    GuardJobSnapshot, GuardPartySnapshot, GuardPlane, GuardSnapshot, OpenOutcome, RateLimit,
};
pub use history::{History, RoundRecord};
pub use latency::{LatencyModel, ObservedLatency};
pub use message::WireMessage;
pub use roster::{PartyRecord, RosterBuilder, RosterStore};
pub use runtime::{run_sharded, RuntimeOptions, ShardedOutcome};
pub use straggler::{Clock, ScriptedClock, StragglerInjector};
pub use transport::{duplex, MemoryTransport, StreamTransport, Transport};

/// Errors produced by the FL runtime.
#[derive(Debug)]
pub enum FlError {
    /// Configuration rejected before the job started.
    InvalidConfig(String),
    /// A selection policy failed.
    Selection(flips_selection::SelectionError),
    /// A model/parameter operation failed.
    Ml(flips_ml::MlError),
    /// A wire message failed to decode.
    Codec(String),
    /// A model payload's codec tag was corrupt or disagreed with the
    /// job's negotiated codec — kept distinct from [`FlError::Codec`] so
    /// drivers can count mismatches separately from generic corruption.
    CodecMismatch(String),
    /// The round protocol was violated (round opened twice, job driven
    /// past its budget, a message sent in the wrong direction).
    Protocol(String),
    /// A transport failed to move frames (broken pipe, I/O error).
    Transport(String),
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlError::InvalidConfig(m) => write!(f, "invalid FL job config: {m}"),
            FlError::Selection(e) => write!(f, "selection failed: {e}"),
            FlError::Ml(e) => write!(f, "model operation failed: {e}"),
            FlError::Codec(m) => write!(f, "wire codec error: {m}"),
            FlError::CodecMismatch(m) => write!(f, "model codec mismatch: {m}"),
            FlError::Protocol(m) => write!(f, "protocol violation: {m}"),
            FlError::Transport(m) => write!(f, "transport failure: {m}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Selection(e) => Some(e),
            FlError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flips_selection::SelectionError> for FlError {
    fn from(e: flips_selection::SelectionError) -> Self {
        FlError::Selection(e)
    }
}

impl From<flips_ml::MlError> for FlError {
    fn from(e: flips_ml::MlError) -> Self {
        FlError::Ml(e)
    }
}
