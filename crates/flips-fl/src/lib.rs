//! # flips-fl — the federated-learning runtime
//!
//! A policy-agnostic FL aggregator in the mold the paper describes (§2):
//! an aggregator coordinates rounds against a roster of parties holding
//! private local datasets; each round it *selects* participants (through
//! any [`flips_selection::ParticipantSelector`]), *dispatches* the global
//! model, parties *train locally* (Algorithm 1, participant side),
//! updates are *collected* — minus injected stragglers — *aggregated*, and
//! the server optimizer advances the global model.
//!
//! Modules:
//!
//! - [`config`] — FL algorithms (FedAvg, FedProx, FedYogi, FedAdam,
//!   FedAdagrad) and job/local-training configuration;
//! - [`message`] — the wire protocol with exact byte accounting (the
//!   paper's communication-cost metric);
//! - [`party`] — participant-side local training;
//! - [`latency`] — the platform-heterogeneity model (per-party speeds);
//! - [`straggler`] — the fault injector emulating the paper's 10%/20%
//!   straggler regimes;
//! - [`server`] — update aggregation and server optimizers;
//! - [`history`] — per-round records and the metrics the paper's tables
//!   report (rounds-to-target, peak accuracy, bytes transferred);
//! - [`aggregator`] — the orchestrator tying it all together.

pub mod aggregator;
pub mod config;
pub mod history;
pub mod latency;
pub mod message;
pub mod party;
pub mod server;
pub mod straggler;

pub use aggregator::{FlJob, FlJobConfig};
pub use config::{FlAlgorithm, LocalTrainingConfig};
pub use history::{History, RoundRecord};
pub use latency::LatencyModel;
pub use straggler::StragglerInjector;

/// Errors produced by the FL runtime.
#[derive(Debug)]
pub enum FlError {
    /// Configuration rejected before the job started.
    InvalidConfig(String),
    /// A selection policy failed.
    Selection(flips_selection::SelectionError),
    /// A model/parameter operation failed.
    Ml(flips_ml::MlError),
    /// A wire message failed to decode.
    Codec(String),
}

impl std::fmt::Display for FlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlError::InvalidConfig(m) => write!(f, "invalid FL job config: {m}"),
            FlError::Selection(e) => write!(f, "selection failed: {e}"),
            FlError::Ml(e) => write!(f, "model operation failed: {e}"),
            FlError::Codec(m) => write!(f, "wire codec error: {m}"),
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Selection(e) => Some(e),
            FlError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flips_selection::SelectionError> for FlError {
    fn from(e: flips_selection::SelectionError) -> Self {
        FlError::Selection(e)
    }
}

impl From<flips_ml::MlError> for FlError {
    fn from(e: flips_ml::MlError) -> Self {
        FlError::Ml(e)
    }
}
