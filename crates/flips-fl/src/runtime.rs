//! The threaded sharded runtime: party shards on worker threads, the
//! multiplexed driver on a dedicated coordinator thread.
//!
//! This is the third driver over the sans-IO protocol, and the first
//! concurrent one. Where [`crate::run_lockstep`] alternates one
//! [`MultiJobDriver`] and one [`PartyPool`] on the calling thread, here:
//!
//! - the party side is **sharded**: the roster is split across `N`
//!   worker threads, each owning a disjoint set of [`PartyEndpoint`]s in
//!   its own [`PartyPool`] and its own [`MemoryTransport`] endpoint onto
//!   the shared wire. Local training — the dominant cost of a round —
//!   runs truly in parallel across shards;
//! - the [`MultiJobDriver`] runs on a **dedicated coordinator thread**,
//!   polling the shards' nonblocking transports through a
//!   [`ShardRouter`] that demultiplexes downlink frames by `(job,
//!   party)` and drains every shard's uplink;
//! - simulated time advances only when the wire is provably quiet (see
//!   [Quiet detection](#quiet-detection)), so the timer wheel's
//!   deadline order is a pure function of the job set — never of host
//!   scheduling.
//!
//! # Determinism
//!
//! Sharded runs produce histories **bit-identical** to the seeded
//! single-threaded path, for any shard count. Three properties carry
//! the proof:
//!
//! 1. *Order-independent rounds.* The coordinator sorts accepted
//!    updates by party id at close and aggregates with the ascending-k
//!    reduction, heartbeats deduplicate as a set, and byte counters are
//!    sums — no per-round quantity depends on arrival order.
//! 2. *Order-independent deadlines.* On the latency-derived path the
//!    accept/withhold decision compares each update's seeded training
//!    duration against a deadline derived from the *multiset* of
//!    previously observed durations ([`crate::ObservedLatency`] sorts
//!    internally) — both sides are independent of thread interleaving.
//! 3. *Quiet-gated time.* A deadline tick can only fire when no frame
//!    is in flight anywhere, so simulated time can never overtake a
//!    training reply that a slower thread has not delivered yet.
//!
//! The equivalence suite (`tests/sharded_runtime.rs`) pins 1-, 2- and
//! 4-shard runs to the single-threaded goldens, with and without
//! scheduling jitter.
//!
//! # Quiet detection
//!
//! The coordinator thread may advance the clock only when every frame
//! everywhere has been processed. Each worker publishes a `busy` flag
//! (set **before** it pops from its inbox, cleared after its replies
//! are on the wire, both `SeqCst`); the runtime keeps an observer clone
//! of every shard's inbox. The wire is quiet iff, in order:
//!
//! 1. every shard inbox is empty and every `busy` flag is clear — once
//!    that holds, no worker can wake again until the coordinator itself
//!    sends, and any uplink reply a worker produced is already visible
//!    behind its `busy` store;
//! 2. a final [`MultiJobDriver::pump`] drains nothing.
//!
//! Only then does [`MultiJobDriver::advance_clock`] fire the next
//! deadline.

use crate::chaos::{ChaosEvent, ChaosSchedule, ChaosTransport};
use crate::driver::{DriverStats, MultiJobDriver, PartyPool};
use crate::guard::{BreakerTransition, GuardConfig};
use crate::message::{frame_dest, frame_job_of};
use crate::transport::{MemoryTransport, Transport};
use crate::{FlError, History, JobParts, PartyEndpoint};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long an idle worker parks before re-checking its inbox. Short
/// enough that a single-core box still round-robins promptly; long
/// enough not to burn a core spinning.
const IDLE_PARK: Duration = Duration::from_micros(50);

/// Options of one sharded run.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Worker-thread shards the roster is split across (≥ 1). Party
    /// `p` of every job lives on shard `p % shards` — a deterministic
    /// assignment, so two runs shard identically.
    pub shards: usize,
    /// When non-zero, each worker sleeps a pseudo-random `0..jitter_ns`
    /// nanoseconds before processing each inbox batch — the stress
    /// suite's scheduling perturbation. Histories must not move.
    pub jitter_ns: u64,
    /// Seed of the per-worker jitter streams.
    pub jitter_seed: u64,
    /// Hostile frames slipped onto the coordinator's uplink while the
    /// run is in flight (fault-injection tests). Sent from a dedicated
    /// chaos thread at unsynchronized times; the run's histories must
    /// not move.
    pub chaos_uplink: Vec<Bytes>,
    /// Hostile frames slipped onto shard 0's downlink inbox while the
    /// run is in flight.
    pub chaos_downlink: Vec<Bytes>,
    /// Inbound guard plane installed on the driver (and, for the
    /// frame-size stage, on every shard pool). `None` runs unguarded.
    pub guard: Option<GuardConfig>,
    /// Seeded chaos schedule applied at the driver's uplink seam
    /// ([`ChaosTransport`] around the [`ShardRouter`]). `None` runs the
    /// wire untouched.
    pub chaos: Option<ChaosSchedule>,
    /// Per-link codec overrides, `(job, shard link, codec)`: the named
    /// link speaks `codec` for that job while sibling links stay on the
    /// job-wide default. Applied out-of-band to *both* wire ends — the
    /// driver's per-link table ([`MultiJobDriver::set_link_codec`]) and
    /// the owning shard pool's pin — so neither side trusts a wire
    /// notice for it.
    pub link_codecs: Vec<(u64, usize, crate::ModelCodec)>,
    /// Aggregation-tree mode: every coordinator folds with the exact
    /// 256-bit sum ([`crate::Coordinator::set_exact_fold`]) and every
    /// shard pool acts as a tree inner node
    /// ([`PartyPool::enable_tree`]), shipping one partial per round
    /// instead of per-party update frames — coordinator fan-in becomes
    /// O(shards). Histories are pinned bit-identical to the flat
    /// exact-fold run by `tests/scale_equivalence.rs`.
    pub tree: bool,
}

impl RuntimeOptions {
    /// Options for `shards` worker threads, no perturbation.
    pub fn new(shards: usize) -> Self {
        RuntimeOptions {
            shards,
            jitter_ns: 0,
            jitter_seed: 0,
            chaos_uplink: Vec::new(),
            chaos_downlink: Vec::new(),
            guard: None,
            chaos: None,
            link_codecs: Vec::new(),
            tree: false,
        }
    }

    /// Enables aggregation-tree mode (see [`RuntimeOptions::tree`]).
    #[must_use]
    pub fn with_tree(mut self) -> Self {
        self.tree = true;
        self
    }

    /// Overrides the codec one shard link speaks for `job` (see
    /// [`RuntimeOptions::link_codecs`]).
    #[must_use]
    pub fn with_link_codec(mut self, job: u64, link: usize, codec: crate::ModelCodec) -> Self {
        self.link_codecs.push((job, link, codec));
        self
    }

    /// Installs an inbound guard plane on the run's driver.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Applies a seeded chaos schedule to the run's uplink.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

impl Default for RuntimeOptions {
    /// One shard per available core, capped at 8.
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
        RuntimeOptions::new(shards)
    }
}

/// The outcome of a completed sharded run.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Final per-job histories, keyed by job id.
    pub histories: BTreeMap<u64, History>,
    /// The coordinator-side wire counters.
    pub stats: DriverStats,
    /// Per-shard counts of frames the shard could not route (corrupt or
    /// addressed to an endpoint it does not own).
    pub shard_unroutable: Vec<u64>,
    /// Per-shard counts of routable frames an endpoint refused.
    pub shard_rejected: Vec<u64>,
    /// Per-shard counts of downlink frames dropped for a corrupt or
    /// mismatched model codec tag (the per-link seam the mixed-codec
    /// fault suite asserts on).
    pub shard_codec_mismatch: Vec<u64>,
    /// Per-shard counts of downlink frames dropped by the guard's size
    /// cap (all zero when no guard was installed).
    pub shard_oversized: Vec<u64>,
    /// The guard plane's breaker transition log (empty when no guard
    /// was installed).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// The chaos actions actually applied, in application order (empty
    /// when no schedule was installed).
    pub chaos_events: Vec<ChaosEvent>,
}

/// The coordinator side of the sharded wire: one [`MemoryTransport`]
/// link per shard, demultiplexed by the `(job, destination)` pair every
/// frame header carries.
///
/// Implements [`Transport`], so the unmodified [`MultiJobDriver`] drives
/// a sharded party side exactly as it drives a single serialized link —
/// the concurrency is invisible above this seam.
pub struct ShardRouter {
    /// Driver-side link ends, one per shard.
    links: Vec<MemoryTransport>,
    /// `(job, party) → shard` routing table, fixed at construction.
    routes: HashMap<(u64, u64), usize>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.links.len())
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl Transport for ShardRouter {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        let (Some(dest), Some(job)) = (frame_dest(frame), frame_job_of(frame)) else {
            return Err(FlError::Transport("frame too short to route to a shard".into()));
        };
        let Some(&shard) = self.routes.get(&(job, dest)) else {
            return Err(FlError::Transport(format!("no shard owns party {dest} of job {job:#x}")));
        };
        self.links[shard].send(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        Ok(self.try_recv_tagged()?.map(|(_, frame)| frame))
    }

    fn links(&self) -> usize {
        self.links.len()
    }

    fn link_for(&self, job: u64, dest: u64) -> usize {
        self.routes.get(&(job, dest)).copied().unwrap_or(0)
    }

    fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
        // Sweep the shards in fixed order; the driver pumps until no
        // link yields anything, so fairness is a non-issue and the
        // fixed order keeps sweeps cheap and predictable.
        for (i, link) in self.links.iter_mut().enumerate() {
            if let Some(frame) = link.try_recv()? {
                return Ok(Some((i, frame)));
            }
        }
        Ok(None)
    }
}

/// Per-worker shared state the coordinator thread observes.
struct ShardState {
    /// Set before the worker pops its inbox, cleared after its replies
    /// are sent — the worker half of quiet detection.
    busy: AtomicBool,
    /// Observer clone of the shard's inbox (the other half).
    probe: MemoryTransport,
}

/// A tiny xorshift stream for worker jitter — no shared RNG state, one
/// independent stream per worker.
struct Jitter {
    state: u64,
    max_ns: u64,
}

impl Jitter {
    fn new(seed: u64, max_ns: u64) -> Self {
        Jitter { state: seed | 1, max_ns }
    }

    /// Sleeps a pseudo-random `0..max_ns` (no-op when disabled).
    fn perturb(&mut self) {
        if self.max_ns == 0 {
            return;
        }
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let ns = self.state % self.max_ns;
        if ns < 1_000 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }
}

/// Runs every job to completion across `opts.shards` worker threads,
/// returning each job's final history and the wire counters.
///
/// Party `p` of every job is served by shard `p % shards`; each shard
/// owns its endpoints' training and its own transport endpoint, and the
/// driver runs on a dedicated coordinator thread. Histories are
/// bit-identical to the same jobs under [`crate::run_lockstep`] (and to
/// the in-process [`crate::FlJob`] when the job uses a latency-derived
/// deadline) — see the [module docs](self) for why.
///
/// # Errors
///
/// [`FlError::InvalidConfig`] for zero shards or an empty job set;
/// construction, transport, aggregation and stall failures propagate
/// from the coordinator thread.
///
/// # Panics
///
/// Panics if a worker thread panics (a training bug, not an I/O
/// condition).
pub fn run_sharded(jobs: Vec<JobParts>, opts: &RuntimeOptions) -> Result<ShardedOutcome, FlError> {
    if opts.shards == 0 {
        return Err(FlError::InvalidConfig("shard count must be at least 1".into()));
    }
    if jobs.is_empty() {
        return Err(FlError::InvalidConfig("no jobs to run".into()));
    }
    let shards = opts.shards;

    // One memory link per shard. The driver keeps the `driver_ends`
    // (behind the router); each worker gets a `shard_end`; the runtime
    // keeps observer clones of both shard-side ends for quiet detection
    // and chaos injection.
    let mut driver_ends = Vec::with_capacity(shards);
    let mut shard_ends = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (driver_end, shard_end) = MemoryTransport::pair();
        driver_ends.push(driver_end);
        shard_ends.push(shard_end);
    }
    let chaos_to_driver = shard_ends[0].clone();
    let chaos_to_shard = driver_ends[0].clone();
    let states: Vec<ShardState> = shard_ends
        .iter()
        .map(|end| ShardState { busy: AtomicBool::new(false), probe: end.clone() })
        .collect();

    // Split every job across the shards and build the routing table.
    // The assignment must be deterministic (it is: `party % shards`) but
    // nothing about the histories depends on *which* deterministic
    // assignment is used.
    let mut routes: HashMap<(u64, u64), usize> = HashMap::new();
    let mut per_shard: Vec<Vec<(u64, crate::ModelCodec, Vec<PartyEndpoint>)>> =
        (0..shards).map(|_| Vec::new()).collect();
    let mut driver_jobs = Vec::with_capacity(jobs.len());
    let mut tree_jobs: Vec<(u64, usize)> = Vec::new();
    for parts in jobs {
        let job_id = parts.coordinator.job_id();
        let codec = parts.coordinator.codec();
        let JobParts { mut coordinator, endpoints, clock, latency, deadline } = parts;
        if opts.tree {
            coordinator.set_exact_fold(true);
            tree_jobs.push((job_id, coordinator.sketch_dim()));
        }
        let mut split: Vec<Vec<PartyEndpoint>> = (0..shards).map(|_| Vec::new()).collect();
        for ep in endpoints {
            routes.insert((job_id, ep.id() as u64), ep.id() % shards);
            split[ep.id() % shards].push(ep);
        }
        for (shard, eps) in split.into_iter().enumerate() {
            if !eps.is_empty() {
                per_shard[shard].push((job_id, codec, eps));
            }
        }
        driver_jobs.push((coordinator, clock, latency, deadline));
    }

    // The chaos seam sits between the router and the driver, so every
    // uplink frame (whichever shard it came from) passes the schedule;
    // with no schedule the wrapper is inert passthrough.
    let router = ShardRouter { links: driver_ends, routes };
    let wire = match &opts.chaos {
        Some(schedule) => ChaosTransport::new(router, schedule.clone()),
        None => ChaosTransport::inert(router),
    };
    let mut driver = MultiJobDriver::new(wire);
    if let Some(guard) = opts.guard {
        driver.set_guard(guard)?;
    }
    for (coordinator, clock, latency, deadline) in driver_jobs {
        if deadline.is_latency_derived() {
            driver.add_job_observed(coordinator, deadline, latency)?;
        } else {
            driver.add_job(coordinator, Box::new(clock), latency)?;
        }
    }
    for &(job, link, codec) in &opts.link_codecs {
        driver.set_link_codec(job, link, codec)?;
    }

    // One pool per shard, its codecs pinned out-of-band (each shard is
    // an independent party-side process; trust-on-first-frame is not
    // how a production shard would learn its codec).
    let mut pools = Vec::with_capacity(shards);
    for (shard, (end, assignments)) in shard_ends.into_iter().zip(per_shard).enumerate() {
        let mut pool = PartyPool::new(end);
        if let Some(guard) = &opts.guard {
            pool.set_guard(guard);
        }
        for (job_id, codec, eps) in assignments {
            // The shard's link may speak an overridden codec for this
            // job — pin what *this link* will actually receive.
            let pinned = opts
                .link_codecs
                .iter()
                .rev()
                .find(|&&(j, l, _)| j == job_id && l == shard)
                .map_or(codec, |&(_, _, c)| c);
            pool.pin_codec(job_id, pinned);
            pool.add_job(job_id, eps);
        }
        for &(job_id, sketch_dim) in &tree_jobs {
            pool.enable_tree(job_id, sketch_dim);
        }
        pools.push(pool);
    }

    let shutdown = AtomicBool::new(false);
    let worker_error: Mutex<Option<FlError>> = Mutex::new(None);

    let (drive_result, mut finished_pools) = std::thread::scope(|scope| {
        let worker_handles: Vec<_> = pools
            .into_iter()
            .enumerate()
            .map(|(i, pool)| {
                let state = &states[i];
                let shutdown = &shutdown;
                let worker_error = &worker_error;
                let jitter = Jitter::new(
                    opts.jitter_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64),
                    opts.jitter_ns,
                );
                scope.spawn(move || worker_loop(pool, state, shutdown, worker_error, jitter))
            })
            .collect();

        // The chaos thread sends every frame unconditionally (its total
        // work is bounded and memory-queue sends never block): frames
        // that land after the run completed are drained by the final
        // pump below, so the observability counters the stress suite
        // asserts on are deterministic, not a race with run completion.
        let chaos_handle = if !opts.chaos_uplink.is_empty() || !opts.chaos_downlink.is_empty() {
            let mut to_driver = chaos_to_driver;
            let mut to_shard = chaos_to_shard;
            let up = opts.chaos_uplink.clone();
            let down = opts.chaos_downlink.clone();
            let mut jitter = Jitter::new(opts.jitter_seed ^ 0xC4A05, opts.jitter_ns.max(10_000));
            Some(scope.spawn(move || {
                for frame in up {
                    jitter.perturb();
                    let _ = to_driver.send(&frame);
                }
                for frame in down {
                    jitter.perturb();
                    let _ = to_shard.send(&frame);
                }
            }))
        } else {
            None
        };

        // The dedicated coordinator thread: starts the jobs, pumps the
        // router, advances simulated time when the wire is quiet.
        let driver_handle = scope.spawn(|| drive(driver, &states, &worker_error));
        let drive_result = driver_handle.join().expect("coordinator thread panicked");
        // Shutdown order matters for deterministic counters: all chaos
        // frames must be queued before the workers see the shutdown
        // flag, because a worker only exits once its inbox is drained.
        if let Some(h) = chaos_handle {
            h.join().expect("chaos thread panicked");
        }
        shutdown.store(true, Ordering::SeqCst);
        let finished_pools: Vec<_> =
            worker_handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
        (drive_result, finished_pools)
    });

    let mut driver = drive_result?;
    // Final drain: count any frames (chaos traffic, post-completion
    // worker replies) still sitting on the uplink. Every job is
    // finished, so nothing here can touch round state.
    while driver.pump()? {}
    let histories = driver
        .job_ids()
        .into_iter()
        .map(|id| (id, driver.history(id).expect("registered job").clone()))
        .collect();
    Ok(ShardedOutcome {
        histories,
        stats: driver.stats(),
        shard_unroutable: finished_pools.iter().map(PartyPool::unroutable).collect(),
        shard_oversized: finished_pools.iter().map(PartyPool::oversized).collect(),
        shard_codec_mismatch: finished_pools.iter().map(|p| p.codec_mismatch()).collect(),
        breaker_transitions: driver.guard().map_or_else(Vec::new, |g| g.transitions().to_vec()),
        chaos_events: driver.transport().log().to_vec(),
        shard_rejected: finished_pools.drain(..).map(|p| p.rejected()).collect(),
    })
}

/// One shard worker: waits for downlink frames, processes them (training
/// included) with the `busy` flag raised, parks briefly when idle.
fn worker_loop(
    mut pool: PartyPool<MemoryTransport>,
    state: &ShardState,
    shutdown: &AtomicBool,
    worker_error: &Mutex<Option<FlError>>,
    mut jitter: Jitter,
) -> PartyPool<MemoryTransport> {
    loop {
        if state.probe.pending() == 0 {
            // Exit only with a drained inbox, so chaos frames queued
            // before the shutdown flag was raised are still processed
            // (and counted) rather than silently abandoned.
            if shutdown.load(Ordering::SeqCst) {
                return pool;
            }
            std::thread::park_timeout(IDLE_PARK);
            continue;
        }
        // `busy` must be raised before the first pop and lowered only
        // after every reply is on the wire — the coordinator's quiet
        // check relies on exactly this window (see the module docs).
        state.busy.store(true, Ordering::SeqCst);
        jitter.perturb();
        let result = pool.pump();
        state.busy.store(false, Ordering::SeqCst);
        if let Err(e) = result {
            *worker_error.lock().expect("error slot") = Some(e);
            return pool;
        }
    }
}

/// The coordinator thread body.
fn drive<T: Transport + Send>(
    mut driver: MultiJobDriver<T>,
    states: &[ShardState],
    worker_error: &Mutex<Option<FlError>>,
) -> Result<MultiJobDriver<T>, FlError> {
    let run = (|| {
        driver.start()?;
        loop {
            if let Some(e) = worker_error.lock().expect("error slot").take() {
                return Err(e);
            }
            let progressed = driver.pump()?;
            if driver.is_finished() {
                return Ok(());
            }
            if progressed {
                continue;
            }
            let shards_idle =
                states.iter().all(|s| s.probe.pending() == 0 && !s.busy.load(Ordering::SeqCst));
            if !shards_idle {
                std::thread::yield_now();
                continue;
            }
            // Shards idle with empty inboxes: they cannot wake until we
            // send again, and any reply they produced is already
            // visible. One final drain, then time may advance.
            if driver.pump()? {
                continue;
            }
            if !driver.advance_clock()? {
                return Err(FlError::Protocol(
                    "sharded driver stalled: wire quiet, no live deadline, jobs unfinished".into(),
                ));
            }
        }
    })();
    run.map(|()| driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{frame, AGGREGATOR_DEST};
    use crate::WireMessage;

    #[test]
    fn zero_shards_is_rejected() {
        match run_sharded(Vec::new(), &RuntimeOptions::new(0)) {
            Err(FlError::InvalidConfig(m)) => assert!(m.contains("shard"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_job_set_is_rejected() {
        assert!(matches!(
            run_sharded(Vec::new(), &RuntimeOptions::new(2)),
            Err(FlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn router_rejects_unroutable_frames() {
        let (a, _b) = MemoryTransport::pair();
        let mut router = ShardRouter { links: vec![a], routes: HashMap::new() };
        let framed = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        assert!(matches!(router.send(framed.as_slice()), Err(FlError::Transport(_))));
        assert!(matches!(router.send(&[1, 2, 3]), Err(FlError::Transport(_))));
    }

    #[test]
    fn router_routes_by_job_and_dest_and_drains_all_links() {
        let (a0, mut b0) = MemoryTransport::pair();
        let (a1, mut b1) = MemoryTransport::pair();
        let mut routes = HashMap::new();
        routes.insert((9u64, 0u64), 0usize);
        routes.insert((9u64, 1u64), 1usize);
        let mut router = ShardRouter { links: vec![a0, a1], routes };
        let m0 = frame(0, &WireMessage::Heartbeat { job: 9, round: 0, party: 0 });
        let m1 = frame(1, &WireMessage::Heartbeat { job: 9, round: 0, party: 1 });
        router.send(m0.as_slice()).unwrap();
        router.send(m1.as_slice()).unwrap();
        assert_eq!(b0.try_recv().unwrap().unwrap(), m0);
        assert_eq!(b1.try_recv().unwrap().unwrap(), m1);
        // Uplink: both shard ends reply; the router drains both.
        let up = frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job: 9, round: 0, party: 0 });
        b0.send(up.as_slice()).unwrap();
        b1.send(up.as_slice()).unwrap();
        assert!(router.try_recv().unwrap().is_some());
        assert!(router.try_recv().unwrap().is_some());
        assert!(router.try_recv().unwrap().is_none());
    }
}
