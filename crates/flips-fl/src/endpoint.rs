//! The party-side protocol endpoint.
//!
//! [`PartyEndpoint`] is the participant half of the sans-IO protocol: it
//! wraps a [`Party`] (private dataset + local model) and turns inbound
//! wire messages into outbound ones — a [`WireMessage::SelectionNotice`]
//! into a [`WireMessage::Heartbeat`] ack, a [`WireMessage::GlobalModel`]
//! into a trained [`WireMessage::LocalUpdate`]. Like the coordinator it
//! performs no I/O itself; the driver moves the messages.

use crate::config::LocalTrainingConfig;
use crate::latency::LatencyModel;
use crate::message::WireMessage;
use crate::party::Party;
use crate::FlError;
use flips_ml::model::ModelSpec;
use flips_selection::PartyId;
use std::sync::Arc;

/// One participant's protocol endpoint.
pub struct PartyEndpoint {
    party: Party,
    job_id: u64,
    local: LocalTrainingConfig,
    proximal_mu: f32,
    latency: Arc<LatencyModel>,
    seed: u64,
    /// Highest round an [`WireMessage::Abort`] arrived for. Rounds are
    /// monotonic, so any `GlobalModel` at or below this high-water mark
    /// is stale and skipped without training.
    aborted_round: Option<u64>,
}

impl std::fmt::Debug for PartyEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartyEndpoint")
            .field("party", &self.party.id())
            .field("job_id", &self.job_id)
            .finish()
    }
}

impl PartyEndpoint {
    /// Creates the endpoint for party `id` of job `job_id`.
    ///
    /// `latency` is the shared platform-heterogeneity model (the
    /// simulation's stand-in for real device speed); `seed` is the job
    /// master seed every training stream derives from.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PartyId,
        data: flips_data::Dataset,
        spec: &ModelSpec,
        job_id: u64,
        local: LocalTrainingConfig,
        proximal_mu: f32,
        latency: Arc<LatencyModel>,
        seed: u64,
    ) -> Self {
        PartyEndpoint {
            party: Party::new(id, data, spec, seed),
            job_id,
            local,
            proximal_mu,
            latency,
            seed,
            aborted_round: None,
        }
    }

    /// This endpoint's party identifier.
    pub fn id(&self) -> PartyId {
        self.party.id()
    }

    /// Local sample count `n_i`.
    pub fn num_samples(&self) -> usize {
        self.party.num_samples()
    }

    /// The wrapped party (label-distribution provisioning and tests).
    pub fn party(&self) -> &Party {
        &self.party
    }

    /// The highest round an abort was received for, if any.
    pub fn aborted_round(&self) -> Option<u64> {
        self.aborted_round
    }

    /// Consumes one aggregator message and produces the party's replies.
    ///
    /// - `SelectionNotice` → `Heartbeat` ack;
    /// - `GlobalModel` → local training → `LocalUpdate`;
    /// - `Abort` → no reply (the round is noted as aborted);
    /// - messages stamped with a foreign job id are dropped without a
    ///   reply: answering would stamp *some* job id on the response, and
    ///   either choice lets one misrouted message mutate an innocent
    ///   job's round state (the coordinator's `Rejected` effects are the
    ///   observability point for misrouted traffic).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] on direction violations (a party
    /// receiving a `LocalUpdate` or `Heartbeat`) and on a `GlobalModel`
    /// whose parameters do not match the agreed architecture.
    pub fn handle(&mut self, msg: &WireMessage) -> Result<Vec<WireMessage>, FlError> {
        let me = self.party.id() as u64;
        if msg.job() != self.job_id {
            return Ok(Vec::new());
        }
        match msg {
            WireMessage::SelectionNotice { round, .. } => {
                Ok(vec![WireMessage::Heartbeat { job: self.job_id, round: *round, party: me }])
            }
            WireMessage::GlobalModel { round, params, .. } => {
                if self.aborted_round.is_some_and(|r| *round <= r) {
                    // The aggregator already told us this round (or a
                    // later one) is over — a reordering transport can
                    // deliver the model late; don't burn training on it.
                    return Ok(Vec::new());
                }
                if params.len() != self.party.num_params() {
                    return Err(FlError::Protocol(format!(
                        "global model has {} params, party {} architecture needs {}",
                        params.len(),
                        me,
                        self.party.num_params()
                    )));
                }
                let update = self.party.train(
                    params,
                    *round as usize,
                    &self.local,
                    self.proximal_mu,
                    &self.latency,
                    self.seed,
                );
                Ok(vec![WireMessage::LocalUpdate {
                    job: self.job_id,
                    round: *round,
                    party: me,
                    num_samples: update.num_samples as u64,
                    mean_loss: update.mean_loss,
                    duration: update.duration,
                    params: update.params,
                }])
            }
            WireMessage::Abort { round, .. } => {
                self.aborted_round = Some(self.aborted_round.map_or(*round, |r| r.max(*round)));
                Ok(Vec::new())
            }
            WireMessage::LocalUpdate { .. } | WireMessage::Heartbeat { .. } => {
                Err(FlError::Protocol(format!(
                    "party {me} received an aggregator-bound message: {msg:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_data::dataset::generate_population;
    use flips_data::DatasetProfile;
    use flips_ml::rng::seeded;

    fn endpoint(job_id: u64) -> PartyEndpoint {
        let profile = DatasetProfile::femnist();
        let data = generate_population(&profile, 60, 3);
        PartyEndpoint::new(
            4,
            data,
            &profile.model,
            job_id,
            LocalTrainingConfig { epochs: 1, ..Default::default() },
            0.0,
            Arc::new(LatencyModel::uniform(8)),
            42,
        )
    }

    fn global_params() -> Vec<f32> {
        DatasetProfile::femnist().model.build(&mut seeded(0)).params()
    }

    #[test]
    fn selection_notice_is_acked_with_a_heartbeat() {
        let mut ep = endpoint(7);
        let notice = WireMessage::SelectionNotice { job: 7, round: 3, party: 4 };
        let replies = ep.handle(&notice).unwrap();
        assert_eq!(replies, vec![WireMessage::Heartbeat { job: 7, round: 3, party: 4 }]);
    }

    #[test]
    fn global_model_trains_and_returns_a_local_update() {
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 7, round: 0, params: global_params() };
        let replies = ep.handle(&msg).unwrap();
        assert_eq!(replies.len(), 1);
        match &replies[0] {
            WireMessage::LocalUpdate {
                job, round, party, num_samples, mean_loss, params, ..
            } => {
                assert_eq!((*job, *round, *party), (7, 0, 4));
                assert_eq!(*num_samples, 60);
                assert!(*mean_loss > 0.0);
                assert_eq!(params.len(), global_params().len());
            }
            other => panic!("expected LocalUpdate, got {other:?}"),
        }
    }

    #[test]
    fn foreign_job_messages_are_dropped_without_a_reply() {
        // Replying would stamp some job id on the response and let one
        // misrouted message drop an innocent party in whichever job the
        // reply lands in — so misrouted traffic is ignored entirely.
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 8, round: 0, params: global_params() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        let notice = WireMessage::SelectionNotice { job: 8, round: 0, party: 4 };
        assert!(ep.handle(&notice).unwrap().is_empty());
    }

    #[test]
    fn architecture_mismatch_is_a_protocol_error() {
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 7, round: 0, params: vec![0.0; 3] };
        assert!(matches!(ep.handle(&msg), Err(FlError::Protocol(_))));
    }

    #[test]
    fn abort_is_noted_and_unanswered() {
        let mut ep = endpoint(7);
        let msg = WireMessage::Abort { job: 7, round: 2, party: 4, reason: "deadline".into() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        assert_eq!(ep.aborted_round(), Some(2));
    }

    #[test]
    fn global_model_for_an_aborted_round_is_not_trained() {
        // A reordering transport can deliver the round's model after its
        // abort; the endpoint must not waste training on it.
        let mut ep = endpoint(7);
        let abort = WireMessage::Abort { job: 7, round: 3, party: 4, reason: "deadline".into() };
        ep.handle(&abort).unwrap();
        let late = WireMessage::GlobalModel { job: 7, round: 3, params: global_params() };
        assert!(ep.handle(&late).unwrap().is_empty());
        // A newer abort must not forget older aborted rounds: after
        // Abort(5), the delayed model for round 3 stays skipped.
        let abort5 = WireMessage::Abort { job: 7, round: 5, party: 4, reason: "deadline".into() };
        ep.handle(&abort5).unwrap();
        let late3 = WireMessage::GlobalModel { job: 7, round: 3, params: global_params() };
        assert!(ep.handle(&late3).unwrap().is_empty());
        // A later round trains normally.
        let next = WireMessage::GlobalModel { job: 7, round: 6, params: global_params() };
        assert_eq!(ep.handle(&next).unwrap().len(), 1);
    }

    #[test]
    fn foreign_job_abort_is_ignored() {
        // Another job's abort must not cancel this job's round.
        let mut ep = endpoint(7);
        let msg = WireMessage::Abort { job: 8, round: 2, party: 4, reason: "not yours".into() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        assert_eq!(ep.aborted_round(), None);
    }

    #[test]
    fn aggregator_bound_messages_are_direction_violations() {
        let mut ep = endpoint(7);
        let hb = WireMessage::Heartbeat { job: 7, round: 0, party: 4 };
        assert!(matches!(ep.handle(&hb), Err(FlError::Protocol(_))));
    }
}
