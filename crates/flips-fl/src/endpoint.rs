//! The party-side protocol endpoint.
//!
//! [`PartyEndpoint`] is the participant half of the sans-IO protocol: it
//! wraps a [`Party`] (private dataset + local model) and turns inbound
//! wire messages into outbound ones — a [`WireMessage::SelectionNotice`]
//! into a [`WireMessage::Heartbeat`] ack, a [`WireMessage::GlobalModel`]
//! into a trained [`WireMessage::LocalUpdate`]. Like the coordinator it
//! performs no I/O itself; the driver moves the messages.

use crate::codec::ModelCodec;
use crate::config::LocalTrainingConfig;
use crate::latency::LatencyModel;
use crate::message::WireMessage;
use crate::party::Party;
use crate::FlError;
use flips_ml::model::ModelSpec;
use flips_selection::PartyId;
use std::sync::Arc;

/// One participant's protocol endpoint.
pub struct PartyEndpoint {
    party: Party,
    job_id: u64,
    local: LocalTrainingConfig,
    proximal_mu: f32,
    latency: Arc<LatencyModel>,
    seed: u64,
    /// Highest round an [`WireMessage::Abort`] arrived for. Rounds are
    /// monotonic, so any `GlobalModel` at or below this high-water mark
    /// is stale and skipped without training.
    aborted_round: Option<u64>,
    /// The model-payload codec pinned by the first selection notice
    /// (negotiated once; a conflicting later notice is refused).
    negotiated: Option<ModelCodec>,
    /// Round of the last acked selection notice — detects redelivery.
    last_notice_round: Option<u64>,
    /// Redelivered selection notices (same round, same codec): acked
    /// again — an at-least-once transport may retransmit — but counted.
    duplicate_notices: u64,
    /// Notices refused because they tried to renegotiate the codec.
    rejected_renegotiations: u64,
}

impl std::fmt::Debug for PartyEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartyEndpoint")
            .field("party", &self.party.id())
            .field("job_id", &self.job_id)
            .finish()
    }
}

impl PartyEndpoint {
    /// Creates the endpoint for party `id` of job `job_id`.
    ///
    /// `latency` is the shared platform-heterogeneity model (the
    /// simulation's stand-in for real device speed); `seed` is the job
    /// master seed every training stream derives from.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PartyId,
        data: flips_data::Dataset,
        spec: &ModelSpec,
        job_id: u64,
        local: LocalTrainingConfig,
        proximal_mu: f32,
        latency: Arc<LatencyModel>,
        seed: u64,
    ) -> Self {
        PartyEndpoint {
            party: Party::new(id, data, spec, seed),
            job_id,
            local,
            proximal_mu,
            latency,
            seed,
            aborted_round: None,
            negotiated: None,
            last_notice_round: None,
            duplicate_notices: 0,
            rejected_renegotiations: 0,
        }
    }

    /// This endpoint's party identifier.
    pub fn id(&self) -> PartyId {
        self.party.id()
    }

    /// Local sample count `n_i`.
    pub fn num_samples(&self) -> usize {
        self.party.num_samples()
    }

    /// The wrapped party (label-distribution provisioning and tests).
    pub fn party(&self) -> &Party {
        &self.party
    }

    /// The highest round an abort was received for, if any.
    pub fn aborted_round(&self) -> Option<u64> {
        self.aborted_round
    }

    /// The model-payload codec pinned by the first selection notice.
    pub fn negotiated_codec(&self) -> Option<ModelCodec> {
        self.negotiated
    }

    /// Redelivered selection notices seen (acked again, but counted).
    pub fn duplicate_notices(&self) -> u64 {
        self.duplicate_notices
    }

    /// Selection notices refused for trying to renegotiate the codec.
    pub fn rejected_renegotiations(&self) -> u64 {
        self.rejected_renegotiations
    }

    /// Consumes one aggregator message and produces the party's replies.
    ///
    /// - `SelectionNotice` → `Heartbeat` ack. The first notice pins the
    ///   job's model-payload codec; redelivered notices are idempotent
    ///   (acked again, counted) and a notice carrying a *different*
    ///   codec is refused without a reply — a job's codec is negotiated
    ///   exactly once;
    /// - `GlobalModel` → local training → `LocalUpdate`;
    /// - `Abort` → no reply (the round is noted as aborted);
    /// - messages stamped with a foreign job id are dropped without a
    ///   reply: answering would stamp *some* job id on the response, and
    ///   either choice lets one misrouted message mutate an innocent
    ///   job's round state (the coordinator's `Rejected` effects are the
    ///   observability point for misrouted traffic).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Protocol`] on direction violations (a party
    /// receiving a `LocalUpdate` or `Heartbeat`) and on a `GlobalModel`
    /// whose parameters do not match the agreed architecture.
    pub fn handle(&mut self, msg: &WireMessage) -> Result<Vec<WireMessage>, FlError> {
        let me = self.party.id() as u64;
        if msg.job() != self.job_id {
            return Ok(Vec::new());
        }
        match msg {
            WireMessage::SelectionNotice { round, codec, .. } => {
                match self.negotiated {
                    None => self.negotiated = Some(*codec),
                    Some(pinned) if pinned == *codec => {}
                    Some(_) => {
                        // Codec renegotiation mid-job: refuse without a
                        // reply (answering would ack a handshake this
                        // endpoint did not accept).
                        self.rejected_renegotiations += 1;
                        return Ok(Vec::new());
                    }
                }
                if self.last_notice_round == Some(*round) {
                    self.duplicate_notices += 1;
                }
                self.last_notice_round = Some(*round);
                Ok(vec![WireMessage::Heartbeat { job: self.job_id, round: *round, party: me }])
            }
            WireMessage::GlobalModel { round, params, .. } => {
                if self.aborted_round.is_some_and(|r| *round <= r) {
                    // The aggregator already told us this round (or a
                    // later one) is over — a reordering transport can
                    // deliver the model late; don't burn training on it.
                    return Ok(Vec::new());
                }
                if params.len() != self.party.num_params() {
                    return Err(FlError::Protocol(format!(
                        "global model has {} params, party {} architecture needs {}",
                        params.len(),
                        me,
                        self.party.num_params()
                    )));
                }
                let update = self.party.train(
                    params,
                    *round as usize,
                    &self.local,
                    self.proximal_mu,
                    &self.latency,
                    self.seed,
                );
                Ok(vec![WireMessage::LocalUpdate {
                    job: self.job_id,
                    round: *round,
                    party: me,
                    num_samples: update.num_samples as u64,
                    mean_loss: update.mean_loss,
                    duration: update.duration,
                    params: update.params,
                }])
            }
            WireMessage::Abort { round, .. } => {
                self.aborted_round = Some(self.aborted_round.map_or(*round, |r| r.max(*round)));
                Ok(Vec::new())
            }
            WireMessage::LocalUpdate { .. }
            | WireMessage::PartialUpdate { .. }
            | WireMessage::Heartbeat { .. } => Err(FlError::Protocol(format!(
                "party {me} received an aggregator-bound message: {msg:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_data::dataset::generate_population;
    use flips_data::DatasetProfile;
    use flips_ml::rng::seeded;

    fn endpoint(job_id: u64) -> PartyEndpoint {
        let profile = DatasetProfile::femnist();
        let data = generate_population(&profile, 60, 3);
        PartyEndpoint::new(
            4,
            data,
            &profile.model,
            job_id,
            LocalTrainingConfig { epochs: 1, ..Default::default() },
            0.0,
            Arc::new(LatencyModel::uniform(8)),
            42,
        )
    }

    fn global_params() -> Vec<f32> {
        DatasetProfile::femnist().model.build(&mut seeded(0)).params()
    }

    #[test]
    fn selection_notice_is_acked_with_a_heartbeat() {
        let mut ep = endpoint(7);
        let notice =
            WireMessage::SelectionNotice { job: 7, round: 3, party: 4, codec: ModelCodec::Raw };
        let replies = ep.handle(&notice).unwrap();
        assert_eq!(replies, vec![WireMessage::Heartbeat { job: 7, round: 3, party: 4 }]);
    }

    #[test]
    fn global_model_trains_and_returns_a_local_update() {
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 7, round: 0, params: global_params().into() };
        let replies = ep.handle(&msg).unwrap();
        assert_eq!(replies.len(), 1);
        match &replies[0] {
            WireMessage::LocalUpdate {
                job, round, party, num_samples, mean_loss, params, ..
            } => {
                assert_eq!((*job, *round, *party), (7, 0, 4));
                assert_eq!(*num_samples, 60);
                assert!(*mean_loss > 0.0);
                assert_eq!(params.len(), global_params().len());
            }
            other => panic!("expected LocalUpdate, got {other:?}"),
        }
    }

    #[test]
    fn foreign_job_messages_are_dropped_without_a_reply() {
        // Replying would stamp some job id on the response and let one
        // misrouted message drop an innocent party in whichever job the
        // reply lands in — so misrouted traffic is ignored entirely.
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 8, round: 0, params: global_params().into() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        let notice =
            WireMessage::SelectionNotice { job: 8, round: 0, party: 4, codec: ModelCodec::Raw };
        assert!(ep.handle(&notice).unwrap().is_empty());
    }

    #[test]
    fn architecture_mismatch_is_a_protocol_error() {
        let mut ep = endpoint(7);
        let msg = WireMessage::GlobalModel { job: 7, round: 0, params: vec![0.0; 3].into() };
        assert!(matches!(ep.handle(&msg), Err(FlError::Protocol(_))));
    }

    #[test]
    fn abort_is_noted_and_unanswered() {
        let mut ep = endpoint(7);
        let msg = WireMessage::Abort { job: 7, round: 2, party: 4, reason: "deadline".into() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        assert_eq!(ep.aborted_round(), Some(2));
    }

    #[test]
    fn global_model_for_an_aborted_round_is_not_trained() {
        // A reordering transport can deliver the round's model after its
        // abort; the endpoint must not waste training on it.
        let mut ep = endpoint(7);
        let abort = WireMessage::Abort { job: 7, round: 3, party: 4, reason: "deadline".into() };
        ep.handle(&abort).unwrap();
        let late = WireMessage::GlobalModel { job: 7, round: 3, params: global_params().into() };
        assert!(ep.handle(&late).unwrap().is_empty());
        // A newer abort must not forget older aborted rounds: after
        // Abort(5), the delayed model for round 3 stays skipped.
        let abort5 = WireMessage::Abort { job: 7, round: 5, party: 4, reason: "deadline".into() };
        ep.handle(&abort5).unwrap();
        let late3 = WireMessage::GlobalModel { job: 7, round: 3, params: global_params().into() };
        assert!(ep.handle(&late3).unwrap().is_empty());
        // A later round trains normally.
        let next = WireMessage::GlobalModel { job: 7, round: 6, params: global_params().into() };
        assert_eq!(ep.handle(&next).unwrap().len(), 1);
    }

    #[test]
    fn foreign_job_abort_is_ignored() {
        // Another job's abort must not cancel this job's round.
        let mut ep = endpoint(7);
        let msg = WireMessage::Abort { job: 8, round: 2, party: 4, reason: "not yours".into() };
        assert!(ep.handle(&msg).unwrap().is_empty());
        assert_eq!(ep.aborted_round(), None);
    }

    #[test]
    fn aggregator_bound_messages_are_direction_violations() {
        let mut ep = endpoint(7);
        let hb = WireMessage::Heartbeat { job: 7, round: 0, party: 4 };
        assert!(matches!(ep.handle(&hb), Err(FlError::Protocol(_))));
    }

    fn notice(round: u64, codec: ModelCodec) -> WireMessage {
        WireMessage::SelectionNotice { job: 7, round, party: 4, codec }
    }

    #[test]
    fn first_notice_pins_the_codec() {
        let mut ep = endpoint(7);
        assert_eq!(ep.negotiated_codec(), None);
        ep.handle(&notice(0, ModelCodec::DeltaLossless)).unwrap();
        assert_eq!(ep.negotiated_codec(), Some(ModelCodec::DeltaLossless));
    }

    #[test]
    fn duplicate_notices_are_idempotent_and_counted() {
        // An at-least-once transport may redeliver the notice within the
        // round window: the endpoint must re-ack (the lost-heartbeat
        // recovery path) while counting the redelivery — and the
        // coordinator's byte accounting already dedups the re-ack.
        let mut ep = endpoint(7);
        let n = notice(2, ModelCodec::DeltaLossless);
        assert_eq!(ep.handle(&n).unwrap().len(), 1);
        assert_eq!(ep.duplicate_notices(), 0);
        for dup in 1..=3 {
            let replies = ep.handle(&n).unwrap();
            assert_eq!(replies.len(), 1, "redelivered notice must still be acked");
            assert_eq!(ep.duplicate_notices(), dup);
        }
        // The next round's notice is not a duplicate.
        assert_eq!(ep.handle(&notice(3, ModelCodec::DeltaLossless)).unwrap().len(), 1);
        assert_eq!(ep.duplicate_notices(), 3);
    }

    #[test]
    fn codec_renegotiation_is_refused_without_a_reply() {
        let mut ep = endpoint(7);
        ep.handle(&notice(0, ModelCodec::DeltaLossless)).unwrap();
        let replies = ep.handle(&notice(1, ModelCodec::F16)).unwrap();
        assert!(replies.is_empty(), "a renegotiating notice must not be acked");
        assert_eq!(ep.rejected_renegotiations(), 1);
        assert_eq!(
            ep.negotiated_codec(),
            Some(ModelCodec::DeltaLossless),
            "the pinned codec must survive the renegotiation attempt"
        );
        // Matching notices keep working.
        assert_eq!(ep.handle(&notice(1, ModelCodec::DeltaLossless)).unwrap().len(), 1);
    }
}
