//! Server-side aggregation and optimization.
//!
//! All evaluated algorithms aggregate client updates into the weighted
//! average `x̄ = Σ nᵢ·xᵢ / Σ nᵢ` (paper §2.1). They differ in how the
//! global model advances:
//!
//! - **FedAvg / FedProx** — the global model *becomes* `x̄`;
//! - **FedYogi / FedAdam / FedAdagrad** — the server treats the
//!   pseudo-gradient `g = m − x̄` as a gradient and runs one adaptive
//!   optimizer step on the global parameters, keeping per-parameter
//!   moment state across rounds.

use crate::config::FlAlgorithm;
use crate::party::LocalUpdate;
use crate::FlError;
use flips_ml::optimizer::{Adagrad, Adam, Optimizer, Sgd, Yogi};

/// Accumulates the sample-weighted average of `updates` into `accum`
/// (resized to the parameter dimension; f64 accumulation as before).
///
/// # Errors
///
/// Returns [`FlError::InvalidConfig`] when `updates` is empty, all weights
/// are zero, or parameter lengths disagree.
fn weighted_average_into(accum: &mut Vec<f64>, updates: &[&LocalUpdate]) -> Result<(), FlError> {
    let first =
        updates.first().ok_or_else(|| FlError::InvalidConfig("no updates to aggregate".into()))?;
    let dim = first.params.len();
    let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
    if total <= 0.0 {
        return Err(FlError::InvalidConfig("aggregation weights sum to zero".into()));
    }
    accum.clear();
    accum.resize(dim, 0.0);
    for u in updates {
        if u.params.len() != dim {
            return Err(FlError::InvalidConfig(format!(
                "update length {} != {}",
                u.params.len(),
                dim
            )));
        }
        let w = u.num_samples as f64 / total;
        for (a, &p) in accum.iter_mut().zip(&u.params) {
            *a += w * p as f64;
        }
    }
    Ok(())
}

/// Computes the sample-weighted average of client updates.
///
/// (Allocating convenience wrapper; the round loop goes through
/// [`ServerState::apply_round_refs`], which reuses persistent buffers.)
///
/// # Errors
///
/// As the round loop's in-place aggregation.
pub fn weighted_average(updates: &[LocalUpdate]) -> Result<Vec<f32>, FlError> {
    let refs: Vec<&LocalUpdate> = updates.iter().collect();
    let mut accum = Vec::new();
    weighted_average_into(&mut accum, &refs)?;
    Ok(accum.into_iter().map(|x| x as f32).collect())
}

/// The server's persistent optimizer state for one FL job.
///
/// Holds the aggregation accumulator and pseudo-gradient scratch across
/// rounds, so a synchronization round performs no aggregation-side heap
/// allocation after the first round.
pub struct ServerState {
    algorithm: FlAlgorithm,
    optimizer: Option<Box<dyn Optimizer>>,
    accum: Vec<f64>,
    scratch: Vec<f32>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState").field("algorithm", &self.algorithm).finish()
    }
}

impl ServerState {
    /// Creates the server state for an algorithm.
    pub fn new(algorithm: FlAlgorithm) -> Self {
        let optimizer: Option<Box<dyn Optimizer>> = match algorithm {
            FlAlgorithm::FedAvg | FlAlgorithm::FedProx { .. } => None,
            FlAlgorithm::FedYogi { server_lr } => Some(Box::new(Yogi::new(server_lr))),
            FlAlgorithm::FedAdam { server_lr } => Some(Box::new(Adam::new(server_lr))),
            FlAlgorithm::FedAdagrad { server_lr } => Some(Box::new(Adagrad::new(server_lr))),
        };
        ServerState { algorithm, optimizer, accum: Vec::new(), scratch: Vec::new() }
    }

    /// The algorithm this state serves.
    pub fn algorithm(&self) -> FlAlgorithm {
        self.algorithm
    }

    /// Applies one round of aggregated client updates to the global model
    /// in place.
    ///
    /// # Errors
    ///
    /// Propagates aggregation errors; rejects a length mismatch between
    /// the global model and the aggregate.
    pub fn apply_round(
        &mut self,
        global: &mut [f32],
        updates: &[LocalUpdate],
    ) -> Result<(), FlError> {
        let refs: Vec<&LocalUpdate> = updates.iter().collect();
        self.apply_round_refs(global, &refs)
    }

    /// [`ServerState::apply_round`] over borrowed updates — the round
    /// loop's form, which never clones parameter vectors and reuses the
    /// server's persistent accumulator and scratch buffers.
    ///
    /// # Errors
    ///
    /// As [`ServerState::apply_round`].
    pub fn apply_round_refs(
        &mut self,
        global: &mut [f32],
        updates: &[&LocalUpdate],
    ) -> Result<(), FlError> {
        let mut accum = std::mem::take(&mut self.accum);
        weighted_average_into(&mut accum, updates)?;
        let result = self.apply_aggregate(global, &accum);
        self.accum = accum;
        result
    }

    /// Advances the global model from an already-computed weighted
    /// average `x̄` (`accum`) — the second half of
    /// [`ServerState::apply_round_refs`], split out so aggregation-tree
    /// paths that fold `x̄` elsewhere (see [`crate::aggtree`]) share the
    /// exact same optimizer step.
    ///
    /// # Errors
    ///
    /// Rejects a length mismatch between the global model and the
    /// aggregate.
    pub fn apply_aggregate(&mut self, global: &mut [f32], accum: &[f64]) -> Result<(), FlError> {
        if accum.len() != global.len() {
            return Err(FlError::InvalidConfig(format!(
                "aggregate length {} != global {}",
                accum.len(),
                global.len()
            )));
        }
        match &mut self.optimizer {
            None => {
                // FedAvg/FedProx: the global model becomes the average.
                for (g, &a) in global.iter_mut().zip(accum) {
                    *g = a as f32;
                }
            }
            Some(opt) => {
                // Pseudo-gradient g = m − x̄; step does m ← m − lr·f(g),
                // moving m toward x̄ adaptively.
                self.scratch.clear();
                self.scratch.extend(global.iter().zip(accum).map(|(m, a)| m - *a as f32));
                opt.step(global, &self.scratch);
            }
        }
        Ok(())
    }

    /// Resets optimizer state (new job on the same architecture).
    pub fn reset(&mut self) {
        if let Some(opt) = &mut self.optimizer {
            opt.reset();
        }
    }

    /// Exports the aggregation plane's persistent state: the server
    /// optimizer's accumulated moments/velocity, bit-exactly. The
    /// averaging buffers (`accum`, `scratch`) are per-call scratch and
    /// carry nothing across rounds, so the optimizer words are the
    /// complete snapshot; FedAvg/FedProx (no optimizer) export empty.
    pub fn export_optimizer(&self) -> Vec<f32> {
        self.optimizer.as_ref().map_or_else(Vec::new, |o| o.export_state())
    }

    /// Restores state previously produced by
    /// [`ServerState::export_optimizer`] on a server built for the same
    /// algorithm. Returns `false` (state untouched) on a layout the
    /// algorithm's optimizer rejects.
    pub fn import_optimizer(&mut self, state: &[f32]) -> bool {
        match &mut self.optimizer {
            Some(opt) => opt.import_state(state),
            None => state.is_empty(),
        }
    }
}

/// Convenience: one plain-SGD server step with learning rate 1 is exactly
/// FedAvg replacement — used by tests to cross-check the two paths.
pub fn fedavg_as_sgd(global: &mut [f32], updates: &[LocalUpdate]) -> Result<(), FlError> {
    let avg = weighted_average(updates)?;
    let mut opt = Sgd::new(1.0);
    let pseudo_grad: Vec<f32> = global.iter().zip(&avg).map(|(m, a)| m - a).collect();
    opt.step(global, &pseudo_grad);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(params: Vec<f32>, n: usize) -> LocalUpdate {
        LocalUpdate { params, num_samples: n, mean_loss: 0.0, duration: 0.0 }
    }

    #[test]
    fn weighted_average_respects_sample_counts() {
        let ups = vec![update(vec![0.0, 0.0], 10), update(vec![1.0, 2.0], 30)];
        let avg = weighted_average(&ups).unwrap();
        assert!((avg[0] - 0.75).abs() < 1e-6);
        assert!((avg[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let ups = vec![update(vec![1.0], 5), update(vec![3.0], 5)];
        assert_eq!(weighted_average(&ups).unwrap(), vec![2.0]);
    }

    #[test]
    fn rejects_empty_and_mismatched_updates() {
        assert!(weighted_average(&[]).is_err());
        let ups = vec![update(vec![1.0], 1), update(vec![1.0, 2.0], 1)];
        assert!(weighted_average(&ups).is_err());
        let ups = vec![update(vec![1.0], 0)];
        assert!(weighted_average(&ups).is_err());
    }

    #[test]
    fn fedavg_replaces_global_with_average() {
        let mut state = ServerState::new(FlAlgorithm::FedAvg);
        let mut global = vec![9.0, 9.0];
        let ups = vec![update(vec![1.0, 2.0], 10)];
        state.apply_round(&mut global, &ups).unwrap();
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn fedavg_equals_sgd_with_unit_lr() {
        let ups = vec![update(vec![1.0, -4.0], 3), update(vec![5.0, 2.0], 1)];
        let mut a = vec![0.5, 0.5];
        let mut b = a.clone();
        ServerState::new(FlAlgorithm::FedAvg).apply_round(&mut a, &ups).unwrap();
        fedavg_as_sgd(&mut b, &ups).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn fedyogi_moves_toward_average_but_keeps_momentum_state() {
        let mut state = ServerState::new(FlAlgorithm::fedyogi());
        let mut global = vec![1.0f32];
        let target = vec![update(vec![0.0], 1)];
        let before = global[0];
        state.apply_round(&mut global, &target).unwrap();
        assert!(global[0] < before, "must move toward the average");
        // Repeated application converges near the average.
        for _ in 0..600 {
            state.apply_round(&mut global, &target).unwrap();
        }
        assert!(global[0].abs() < 0.1, "global {global:?} should approach 0");
    }

    #[test]
    fn fedprox_server_side_is_plain_averaging() {
        // FedProx differs client-side only.
        let mut prox = ServerState::new(FlAlgorithm::fedprox());
        let mut avg = ServerState::new(FlAlgorithm::FedAvg);
        let ups = vec![update(vec![2.0, 4.0], 7)];
        let mut a = vec![0.0, 0.0];
        let mut b = vec![0.0, 0.0];
        prox.apply_round(&mut a, &ups).unwrap();
        avg.apply_round(&mut b, &ups).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_variants_all_advance() {
        for algo in [FlAlgorithm::fedyogi(), FlAlgorithm::fedadam(), FlAlgorithm::fedadagrad()] {
            let mut state = ServerState::new(algo);
            let mut global = vec![1.0f32, -1.0];
            let ups = vec![update(vec![0.0, 0.0], 1)];
            state.apply_round(&mut global, &ups).unwrap();
            assert!(global[0] < 1.0 && global[1] > -1.0, "{algo}: {global:?}");
        }
    }

    #[test]
    fn rejects_global_length_mismatch() {
        let mut state = ServerState::new(FlAlgorithm::FedAvg);
        let mut global = vec![0.0; 3];
        let ups = vec![update(vec![1.0], 1)];
        assert!(state.apply_round(&mut global, &ups).is_err());
    }

    #[test]
    fn reset_restores_fresh_adaptive_behavior() {
        let ups = vec![update(vec![0.0], 1)];
        let mut fresh = ServerState::new(FlAlgorithm::fedyogi());
        let mut reused = ServerState::new(FlAlgorithm::fedyogi());
        let mut g1 = vec![1.0f32];
        reused.apply_round(&mut g1, &ups).unwrap();
        reused.reset();
        let mut a = vec![1.0f32];
        let mut b = vec![1.0f32];
        reused.apply_round(&mut a, &ups).unwrap();
        fresh.apply_round(&mut b, &ups).unwrap();
        assert_eq!(a, b);
    }
}
