//! The serialized-transport driver: many concurrent FL jobs multiplexed
//! over one byte channel.
//!
//! This is the second driver over the sans-IO protocol (the first is the
//! in-process [`crate::FlJob`]). Where `FlJob` passes one job's messages
//! by value, the [`MultiJobDriver`] owns **N coordinators keyed by job
//! id** and speaks to the party side exclusively through a
//! [`Transport`]: every message is [`WireMessage::encode`]d, framed with
//! its destination, sent as bytes, and [`WireMessage::decode`]d on the
//! far side — the codec is on the hot path, not just under test.
//!
//! The pieces:
//!
//! - [`TimerWheel`] — a deterministic virtual clock. Each opened round
//!   schedules a `(job, round)` deadline entry; the wheel advances only
//!   when the wire is quiet (no frames in flight), so a run's timer
//!   order is a pure function of the job set, never of host scheduling.
//! - [`MultiJobDriver`] — demultiplexes inbound frames to the right
//!   coordinator by the job id every message carries, drains each
//!   coordinator's effects back onto the wire, and fires
//!   [`Event::DeadlineExpired`] per job from the wheel. Corrupt frames
//!   and unknown job ids are counted and dropped — they cannot disturb
//!   any job's round state.
//! - [`PartyPool`] — the party side of the wire: all jobs'
//!   [`PartyEndpoint`]s keyed by `(job, party)`, decoding inbound
//!   frames, training, and encoding replies.
//!
//! Who misses a deadline is decided by the job's [`Clock`] (the same
//! trait the in-process driver's straggler injector implements), so the
//! two drivers share deadline semantics by construction; a seeded run
//! over this path is bit-identical to the same seed under `FlJob` (see
//! `tests/protocol_equivalence.rs`).

use crate::aggtree::ExactWeightedSum;
use crate::checkpoint::{Checkpoint, CodecRefSnapshot, JobSnapshot};
use crate::codec::{CodecMap, ModelCodec, Negotiation, Role};
use crate::config::DeadlinePolicy;
use crate::coordinator::Coordinator;
use crate::events::{Effect, Event, RejectReason};
use crate::guard::{FrameKind, FrameVerdict, GuardConfig, GuardPlane};
use crate::history::History;
use crate::latency::{LatencyModel, ObservedLatency};
use crate::message::{
    deframe_with, frame_into, frame_job, frame_party_of, PartialEntry, AGGREGATOR_DEST,
};
use crate::straggler::Clock;
use crate::transport::{Transport, MAX_FRAME_BYTES};
use crate::{FlError, JobParts, PartyEndpoint, WireMessage};
use bytes::BytesMut;
use flips_selection::gradclus::sketch_update;
use flips_selection::PartyId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A deadline entry on the wheel: close `job`'s round `round` (if that
/// round is still the open one when the tick fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Deadline {
    job: u64,
    round: u64,
}

/// A deterministic timer wheel over virtual ticks.
///
/// Entries fire in `(tick, insertion order)` — no wall clock anywhere,
/// so two runs with the same schedule fire identically.
#[derive(Debug, Default)]
pub struct TimerWheel {
    /// `tick → entries`, fired front-to-back per tick.
    slots: BTreeMap<u64, Vec<Deadline>>,
    now: u64,
}

impl TimerWheel {
    /// An empty wheel at tick 0.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Timers currently scheduled.
    pub fn pending(&self) -> usize {
        self.slots.values().map(Vec::len).sum()
    }

    /// Schedules an entry `delay` ticks from now (clamped to ≥ 1 — a
    /// deadline in the past could fire before the round's own frames).
    fn schedule(&mut self, delay: u64, entry: Deadline) {
        self.slots.entry(self.now + delay.max(1)).or_default().push(entry);
    }

    /// Advances to the next tick holding entries and returns them, or
    /// `None` when the wheel is empty.
    fn advance(&mut self) -> Option<Vec<Deadline>> {
        let (&tick, _) = self.slots.iter().next()?;
        self.now = tick;
        self.slots.remove(&tick)
    }
}

/// Counters of what the driver saw on the wire. Purely observational —
/// none of these paths mutate round state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriverStats {
    /// Frames sent (downlink).
    pub frames_sent: u64,
    /// Frames received (uplink), including rejected ones.
    pub frames_received: u64,
    /// Bytes sent (downlink), as actually encoded by each job's
    /// negotiated codec — compare against the raw-canonical accounting
    /// in [`crate::RoundRecord`] to read off the compression win.
    pub bytes_sent: u64,
    /// Bytes received (uplink), frame headers included.
    pub bytes_received: u64,
    /// Frames that failed deframing/decoding (truncation, corruption).
    pub corrupt_frames: u64,
    /// Frames whose model payload carried a corrupt codec tag or one
    /// disagreeing with the job's negotiated codec — dropped without
    /// touching round state.
    pub codec_mismatch_frames: u64,
    /// Well-formed messages carrying a job id no coordinator owns.
    pub unknown_job_frames: u64,
    /// Messages a coordinator bounced ([`Effect::Rejected`]).
    pub rejected_messages: u64,
    /// Updates that arrived past their round's latency-derived deadline
    /// (withheld from the coordinator; the wheel closes the sender out
    /// as a straggler). Always 0 on the injected-clock path.
    pub late_updates: u64,
    /// Frames dropped by the guard plane's size cap before decode
    /// (see [`GuardConfig::max_frame_bytes`]).
    pub oversized_frames: u64,
    /// Frames refused because the sender's token bucket was empty
    /// (each refusal also strikes the sender's breaker).
    pub rate_limited_frames: u64,
    /// Frames dropped because the sender's circuit breaker was open.
    pub breaker_dropped_frames: u64,
    /// Frames refused by per-round admission control (round already at
    /// its admission budget).
    pub admission_refused_frames: u64,
    /// Breaker trips: parties ejected at a round open (a party
    /// re-tripping after a failed half-open probe counts again).
    pub parties_ejected: u64,
    /// Round opens refused because the driver was draining.
    pub drain_refused_selections: u64,
    /// Links whose peer died mid-run (EOF/reset/probe timeout) and whose
    /// slot state was parked awaiting a resume.
    pub links_lost: u64,
    /// Parked links a reconnecting peer successfully re-attached to.
    pub links_resumed: u64,
    /// Roster segments written to disk by attached [`crate::RosterStore`]s
    /// (see [`MultiJobDriver::attach_roster`]). Computed live from the
    /// stores, never checkpointed — a restored store re-counts from
    /// zero.
    pub roster_spilled: u64,
    /// Roster segments loaded back from disk by attached stores.
    pub roster_loaded: u64,
}

/// The final snapshot a drained driver reports (see
/// [`MultiJobDriver::drain_report`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Wire counters at quiescence.
    pub stats: DriverStats,
    /// The virtual tick the driver reached.
    pub tick: u64,
    /// `(job id, rounds completed)` per registered job, ascending by id.
    pub rounds_completed: Vec<(u64, usize)>,
    /// Jobs that still have a round open — empty once the drain is
    /// complete ([`MultiJobDriver::is_quiescent`]).
    pub open_rounds: Vec<u64>,
}

/// How a job under the driver decides its round deadlines.
///
/// The two variants are the two straggler models this workspace
/// supports:
///
/// - [`DeadlineSource::Injected`] — a seeded [`Clock`] designates each
///   round's victims up front and their model delivery is withheld (the
///   paper's §5 emulation; work whose result never arrives is not
///   simulated).
/// - [`DeadlineSource::Observed`] — every party trains and replies;
///   each reply's simulated round-trip duration feeds the job's
///   [`ObservedLatency`] samples, the [`DeadlinePolicy`] derives the next
///   round's deadline from them, and an update whose duration exceeds
///   the open round's deadline is withheld as late. No victim set is
///   ever injected on this path.
pub enum DeadlineSource {
    /// Victim sets decided a priori by a seeded clock.
    Injected(Box<dyn Clock>),
    /// Deadlines derived from observed round-trip latency.
    Observed {
        /// The policy deriving each round's deadline.
        policy: DeadlinePolicy,
        /// Round-trip samples observed so far.
        observed: ObservedLatency,
    },
}

impl DeadlineSource {
    /// An observed-latency source with no samples yet.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] if `policy` is invalid or is
    /// [`DeadlinePolicy::Injected`] (which needs a [`Clock`], not a
    /// sample set).
    pub fn observed(policy: DeadlinePolicy) -> Result<Self, FlError> {
        policy.validate()?;
        if !policy.is_latency_derived() {
            return Err(FlError::InvalidConfig(
                "DeadlinePolicy::Injected needs a Clock; use DeadlineSource::Injected".into(),
            ));
        }
        Ok(DeadlineSource::Observed { policy, observed: ObservedLatency::new() })
    }
}

impl std::fmt::Debug for DeadlineSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadlineSource::Injected(_) => f.write_str("Injected"),
            DeadlineSource::Observed { policy, observed } => f
                .debug_struct("Observed")
                .field("policy", policy)
                .field("samples", &observed.len())
                .finish(),
        }
    }
}

/// One job under the driver's management: its protocol state machine
/// plus the deadline machinery (see [`DeadlineSource`]).
struct JobState {
    coordinator: Coordinator,
    deadline: DeadlineSource,
    latency: Arc<LatencyModel>,
    /// The open round's latency-derived deadline in simulated seconds
    /// (`None` = unbounded). Meaningless on the injected path.
    current_deadline: Option<f64>,
    /// Parties whose round-trip sample was already recorded this round —
    /// an at-least-once transport may redeliver an update, and a
    /// duplicate must not inflate the sample multiset the next deadline
    /// derives from.
    sampled: HashSet<PartyId>,
}

/// The aggregator side of a serialized link: N coordinators multiplexed
/// over one [`Transport`].
///
/// Drive it with [`MultiJobDriver::start`], then alternate
/// [`MultiJobDriver::pump`] (while frames flow) and
/// [`MultiJobDriver::advance_clock`] (when the wire is quiet) until
/// [`MultiJobDriver::is_finished`] — or let [`run_lockstep`] do exactly
/// that against an in-process [`PartyPool`].
///
/// # Example
///
/// Serve one seeded job over an in-memory frame link — every message
/// crosses the wire as encoded bytes:
///
/// ```
/// use flips_data::dataset::{balanced_test_set, generate_population};
/// use flips_data::{partition, DatasetProfile, PartitionStrategy};
/// use flips_fl::{
///     run_lockstep, FlJob, FlJobConfig, LocalTrainingConfig, MemoryTransport, MultiJobDriver,
///     PartyPool,
/// };
/// use flips_selection::RandomSelector;
///
/// let profile = DatasetProfile::femnist().scaled(6, 30);
/// let population = generate_population(&profile, profile.default_total_samples, 3);
/// let parts = partition(&population, 6, PartitionStrategy::Iid, 5, 3).unwrap();
/// let config = FlJobConfig {
///     rounds: 1,
///     parties_per_round: 2,
///     local: LocalTrainingConfig { epochs: 1, ..Default::default() },
///     ..FlJobConfig::new(profile.model.clone())
/// };
/// let selector = Box::new(RandomSelector::new(6, 3));
/// let job =
///     FlJob::new(parts.parties, balanced_test_set(&profile, 4, 3), config, selector).unwrap();
///
/// let (agg_end, party_end) = MemoryTransport::pair();
/// let mut driver = MultiJobDriver::new(agg_end);
/// let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
/// let mut pool = PartyPool::new(party_end);
/// pool.add_job(id, endpoints);
///
/// run_lockstep(&mut driver, &mut pool).unwrap();
/// assert_eq!(driver.history(id).unwrap().len(), 1);
/// ```
pub struct MultiJobDriver<T: Transport> {
    transport: T,
    /// Job id → state; `BTreeMap` so every sweep is in stable id order.
    jobs: BTreeMap<u64, JobState>,
    wheel: TimerWheel,
    stats: DriverStats,
    /// Per-link, per-job payload codec state (sender side of global
    /// models), one map per transport link: the delta reference is
    /// *link* state — two shards of a sharded wire see different frame
    /// subsets, so sharing one reference across links would desync the
    /// moment a broadcast skips a shard (see [`Transport::links`]).
    /// Doubles as the per-link negotiation table: a link whose
    /// registered codec differs from the job-wide default
    /// ([`MultiJobDriver::set_link_codec`]) gets its selection notices
    /// rewritten to announce the link's codec.
    codecs: Vec<CodecMap>,
    /// Reused frame-encode scratch: grow-only, so the steady-state
    /// encode path performs no heap allocation.
    scratch: BytesMut,
    /// The inbound guard plane, if installed (see [`crate::guard`]).
    guard: Option<GuardPlane>,
    /// Graceful drain: open rounds finish, new opens are refused.
    draining: bool,
    started: bool,
    /// Deferred-open mode (strictly opt-in): a closed round queues its
    /// job here instead of reopening inline, so the caller can observe
    /// — and checkpoint — the round boundary before the next round's
    /// frames exist. See [`MultiJobDriver::set_deferred_opens`].
    deferred_opens: bool,
    /// Jobs whose next open is queued (close order; drained by
    /// [`MultiJobDriver::open_pending`]).
    pending_open: Vec<u64>,
    /// Roster stores attached for observability
    /// ([`MultiJobDriver::attach_roster`]); their spill/load counters
    /// surface through [`MultiJobDriver::stats`].
    rosters: Vec<std::sync::Arc<crate::RosterStore>>,
}

impl<T: Transport> std::fmt::Debug for MultiJobDriver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiJobDriver")
            .field("jobs", &self.jobs.len())
            .field("tick", &self.wheel.now())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T: Transport> MultiJobDriver<T> {
    /// A driver over `transport` with no jobs yet.
    pub fn new(transport: T) -> Self {
        let links = transport.links().max(1);
        MultiJobDriver {
            transport,
            jobs: BTreeMap::new(),
            wheel: TimerWheel::new(),
            stats: DriverStats::default(),
            codecs: (0..links).map(|_| CodecMap::new(Role::Sender)).collect(),
            scratch: BytesMut::new(),
            guard: None,
            draining: false,
            started: false,
            deferred_opens: false,
            pending_open: Vec::new(),
            rosters: Vec::new(),
        }
    }

    /// Attaches a roster store so its spill/load traffic shows up in
    /// [`MultiJobDriver::stats`] (`roster_spilled` / `roster_loaded`,
    /// summed across attached stores). Observability only: selection
    /// reads the store through its own handle; the driver never touches
    /// the records. Counters are live — they are *not* checkpointed,
    /// and a restored run re-counts from its own store's zero.
    pub fn attach_roster(&mut self, roster: std::sync::Arc<crate::RosterStore>) {
        self.rosters.push(roster);
    }

    /// Installs (or replaces) the inbound guard plane (see
    /// [`crate::guard`] for the stage order and breaker semantics).
    /// Guard decisions are part of the seeded history, so the guard must
    /// be in place before [`MultiJobDriver::start`].
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] if `config` fails
    /// [`GuardConfig::validate`]; [`FlError::Protocol`] after
    /// [`MultiJobDriver::start`].
    pub fn set_guard(&mut self, config: GuardConfig) -> Result<(), FlError> {
        if self.started {
            return Err(FlError::Protocol("cannot install a guard on a started driver".into()));
        }
        self.guard = Some(GuardPlane::new(config)?);
        Ok(())
    }

    /// The installed guard plane (breaker states and the transition
    /// log), if any.
    pub fn guard(&self) -> Option<&GuardPlane> {
        self.guard.as_ref()
    }

    /// Enters graceful drain: every open round runs to its deadline
    /// normally, but no further round is opened — each refused open is
    /// counted in [`DriverStats::drain_refused_selections`]. Once no
    /// round remains open the driver is
    /// [`MultiJobDriver::is_quiescent`] and [`run_lockstep`] returns
    /// with the partial histories intact.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`MultiJobDriver::begin_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether a draining driver has reached quiescence: no job has a
    /// round open (each is either finished or was refused its next
    /// open). Always `false` unless draining.
    pub fn is_quiescent(&self) -> bool {
        self.draining
            && self
                .jobs
                .values()
                .all(|j| j.coordinator.is_finished() || j.coordinator.open_cohort().is_none())
    }

    /// The final snapshot of a drained driver — call once
    /// [`MultiJobDriver::is_quiescent`].
    pub fn drain_report(&self) -> DrainReport {
        DrainReport {
            stats: self.stats,
            tick: self.wheel.now(),
            rounds_completed: self
                .jobs
                .iter()
                .map(|(&id, j)| (id, j.coordinator.history().len()))
                .collect(),
            open_rounds: self
                .jobs
                .iter()
                .filter(|(_, j)| j.coordinator.open_cohort().is_some())
                .map(|(&id, _)| id)
                .collect(),
        }
    }

    /// Strikes the sender an undecodable frame *claims* to be from, when
    /// the claimed job is registered and corrupt-striking is enabled.
    /// Attribution is necessarily header-claimed — an attacker can frame
    /// another party — but a forger who can write arbitrary headers
    /// could impersonate that party outright anyway; the guard's
    /// trust boundary is the frame header, same as routing's.
    fn strike_claimed_sender(&mut self, job: Option<u64>, party: Option<u64>) {
        let Some(guard) = &mut self.guard else { return };
        if !guard.strikes_on_corrupt() {
            return;
        }
        if let (Some(job), Some(party)) = (job, party) {
            if self.jobs.contains_key(&job) {
                guard.strike(job, party);
            }
        }
    }

    /// Registers a job: its coordinator (which carries the job id every
    /// message is keyed by), its deadline clock, and the latency model
    /// the clock consults. Returns the job id.
    ///
    /// This is the injected-victim path; for latency-derived deadlines
    /// use [`MultiJobDriver::add_job_observed`].
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] if the job id is already registered
    /// (two jobs seeded identically — re-seed one);
    /// [`FlError::Protocol`] after [`MultiJobDriver::start`].
    pub fn add_job(
        &mut self,
        coordinator: Coordinator,
        clock: Box<dyn Clock>,
        latency: Arc<LatencyModel>,
    ) -> Result<u64, FlError> {
        self.add_job_with(coordinator, DeadlineSource::Injected(clock), latency)
    }

    /// Registers a job whose round deadlines are derived from observed
    /// round-trip latency by `policy` (see [`DeadlineSource::Observed`]).
    /// No victim set is ever injected on this path. Returns the job id.
    ///
    /// # Errors
    ///
    /// As [`MultiJobDriver::add_job`], plus [`FlError::InvalidConfig`]
    /// for an invalid or [`DeadlinePolicy::Injected`] policy.
    pub fn add_job_observed(
        &mut self,
        coordinator: Coordinator,
        policy: DeadlinePolicy,
        latency: Arc<LatencyModel>,
    ) -> Result<u64, FlError> {
        let source = DeadlineSource::observed(policy)?;
        self.add_job_with(coordinator, source, latency)
    }

    /// Registers a split [`crate::FlJob`] (see [`crate::FlJob::into_parts`]),
    /// routing it to the deadline source its configuration asks for, and
    /// returns the job id together with the endpoints the caller must
    /// hand to the party side ([`PartyPool::add_job`] or a sharded
    /// runtime).
    ///
    /// # Errors
    ///
    /// As [`MultiJobDriver::add_job`].
    pub fn add_parts(&mut self, parts: JobParts) -> Result<(u64, Vec<PartyEndpoint>), FlError> {
        let JobParts { coordinator, endpoints, clock, latency, deadline } = parts;
        let source = if deadline.is_latency_derived() {
            DeadlineSource::observed(deadline)?
        } else {
            DeadlineSource::Injected(Box::new(clock))
        };
        let id = self.add_job_with(coordinator, source, latency)?;
        Ok((id, endpoints))
    }

    fn add_job_with(
        &mut self,
        coordinator: Coordinator,
        deadline: DeadlineSource,
        latency: Arc<LatencyModel>,
    ) -> Result<u64, FlError> {
        if self.started {
            return Err(FlError::Protocol("cannot add jobs to a started driver".into()));
        }
        let id = coordinator.job_id();
        if self.jobs.contains_key(&id) {
            return Err(FlError::InvalidConfig(format!("job id {id:#x} already registered")));
        }
        for link_codecs in &mut self.codecs {
            link_codecs.register(id, coordinator.codec());
        }
        self.jobs.insert(
            id,
            JobState {
                coordinator,
                deadline,
                latency,
                current_deadline: None,
                sampled: HashSet::new(),
            },
        );
        Ok(id)
    }

    /// Opens round 0 of every job (in job-id order) and puts the first
    /// frames on the wire.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] on a second `start` or an empty job set;
    /// selection/transport failures propagate.
    pub fn start(&mut self) -> Result<(), FlError> {
        if self.started {
            return Err(FlError::Protocol("driver already started".into()));
        }
        if self.jobs.is_empty() {
            return Err(FlError::Protocol("no jobs registered".into()));
        }
        self.started = true;
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            self.open_next_round(id)?;
        }
        Ok(())
    }

    /// Whether every job has exhausted its round budget.
    pub fn is_finished(&self) -> bool {
        self.jobs.values().all(|j| j.coordinator.is_finished())
    }

    /// The registered job ids, ascending.
    pub fn job_ids(&self) -> Vec<u64> {
        self.jobs.keys().copied().collect()
    }

    /// A job's history so far.
    pub fn history(&self, job: u64) -> Option<&History> {
        self.jobs.get(&job).map(|j| j.coordinator.history())
    }

    /// A job's coordinator (inspection in tests/examples).
    pub fn coordinator(&self, job: u64) -> Option<&Coordinator> {
        self.jobs.get(&job).map(|j| &j.coordinator)
    }

    /// Wire/rejection counters, with roster spill/load counters summed
    /// live from the attached stores ([`MultiJobDriver::attach_roster`]).
    pub fn stats(&self) -> DriverStats {
        let mut stats = self.stats;
        for roster in &self.rosters {
            stats.roster_spilled += roster.spilled();
            stats.roster_loaded += roster.loaded();
        }
        stats
    }

    /// The underlying transport — e.g. to read a
    /// [`crate::ChaosTransport`]'s applied-action log after a run.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The codec a job was registered with — the job-wide default its
    /// coordinator announces. Individual links may override it
    /// ([`MultiJobDriver::set_link_codec`]); what a given link actually
    /// speaks is [`MultiJobDriver::link_codec_of`].
    pub fn codec_of(&self, job: u64) -> Option<ModelCodec> {
        self.jobs.get(&job).map(|j| j.coordinator.codec())
    }

    /// The codec `job`'s model frames travel with on `link` — the
    /// per-link override if one was set, the job-wide default otherwise.
    pub fn link_codec_of(&self, job: u64, link: usize) -> Option<ModelCodec> {
        self.codecs.get(link)?.codec_of(job)
    }

    /// Overrides the codec `job`'s model frames travel with on one
    /// specific transport link (see [`crate::Transport::links`]), leaving
    /// every other link on the job-wide default. This is per-link
    /// negotiation's sender half: when the overridden link's selection
    /// notices go out, [`MultiJobDriver`] rewrites the announced codec to
    /// the link's pinned one, so each link's parties negotiate exactly
    /// the codec their frames will travel with. Per-link reference state
    /// already exists (one [`CodecMap`] per link), so heterogeneous
    /// codecs on one job never share a delta reference.
    ///
    /// Like [`PartyPool::pin_codec`], the pin is out-of-band
    /// configuration: both sides must agree (the sharded runtime threads
    /// one table to both — see [`crate::RuntimeOptions::with_link_codec`]),
    /// and a wire notice can never renegotiate it.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] after [`MultiJobDriver::start`];
    /// [`FlError::InvalidConfig`] for an unregistered job or a link index
    /// the transport does not have.
    pub fn set_link_codec(
        &mut self,
        job: u64,
        link: usize,
        codec: ModelCodec,
    ) -> Result<(), FlError> {
        if self.started {
            return Err(FlError::Protocol(
                "cannot change a link's codec on a started driver".into(),
            ));
        }
        if !self.jobs.contains_key(&job) {
            return Err(FlError::InvalidConfig(format!("job id {job:#x} not registered")));
        }
        let links = self.codecs.len();
        let Some(link_codecs) = self.codecs.get_mut(link) else {
            return Err(FlError::InvalidConfig(format!(
                "link {link} out of range: transport has {links}"
            )));
        };
        link_codecs.register(job, codec);
        Ok(())
    }

    /// The current virtual tick.
    pub fn tick(&self) -> u64 {
        self.wheel.now()
    }

    /// Drains every frame currently available on the transport, routing
    /// each decoded message to its job's coordinator and sending the
    /// resulting effects. Rounds that complete early (full cohort
    /// delivered) close and reopen inline.
    ///
    /// Returns whether any frame was processed — pump until `false`
    /// (the wire is quiet), then [`MultiJobDriver::advance_clock`].
    ///
    /// # Errors
    ///
    /// Transport failures and coordinator aggregation/evaluation
    /// failures propagate. Corrupt frames and unknown job ids do *not* —
    /// they are counted in [`DriverStats`] and dropped, leaving every
    /// job's round state untouched.
    pub fn pump(&mut self) -> Result<bool, FlError> {
        let mut progressed = false;
        while let Some((link, raw)) = self.transport.try_recv_tagged()? {
            progressed = true;
            self.stats.frames_received += 1;
            self.stats.bytes_received += raw.len() as u64;
            // Guard stage 1 — size cap, before any decode work touches
            // the payload. The claimed sender is struck like a corrupt
            // frame's: an oversized frame is hostile framing either way.
            if let Some(guard) = &self.guard {
                if !guard.frame_len_ok(raw.len()) {
                    self.stats.oversized_frames += 1;
                    let (job, party) = (frame_job(&raw), frame_party_of(&raw));
                    self.strike_claimed_sender(job, party);
                    continue;
                }
            }
            let peeked_job = frame_job(&raw);
            let peeked_party = frame_party_of(&raw);
            let Some(link_codecs) = self.codecs.get_mut(link) else {
                return Err(FlError::Transport(format!(
                    "transport tagged a frame with link {link}, but only {} exist",
                    self.codecs.len()
                )));
            };
            let msg = match deframe_with(raw, link_codecs) {
                Ok((AGGREGATOR_DEST, msg)) => msg,
                // A party-addressed frame on the uplink is misrouted;
                // treat like any other malformed traffic.
                Ok(_) | Err(FlError::Codec(_)) => {
                    self.stats.corrupt_frames += 1;
                    self.strike_claimed_sender(peeked_job, peeked_party);
                    continue;
                }
                Err(FlError::CodecMismatch(_)) => {
                    // A compressed frame for a job nobody owns fails
                    // the raw-fallback tag check before it can reach
                    // the unknown-job check below — attribute it to
                    // the routing counter, not the codec one.
                    if peeked_job.is_some_and(|j| self.jobs.contains_key(&j)) {
                        self.stats.codec_mismatch_frames += 1;
                        self.strike_claimed_sender(peeked_job, peeked_party);
                    } else {
                        self.stats.unknown_job_frames += 1;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            let job_id = msg.job();
            let Some(state) = self.jobs.get_mut(&job_id) else {
                self.stats.unknown_job_frames += 1;
                continue;
            };
            // Guard stages 2–4 — breaker, rate limit, admission — for
            // any message claiming a sender. The checks run in that
            // order: an ejected party's traffic never consumes tokens or
            // admission budget, and a rate-limited frame never consumes
            // admission budget. All three verdicts are pure functions of
            // the per-party frame sequence and round opens, so they are
            // identical under any transport interleaving that preserves
            // per-party order.
            if let Some(guard) = &mut self.guard {
                let party = match &msg {
                    WireMessage::LocalUpdate { party, .. }
                    | WireMessage::Heartbeat { party, .. }
                    | WireMessage::Abort { party, .. } => Some(*party),
                    _ => None,
                };
                if let Some(party) = party {
                    let kind = if matches!(msg, WireMessage::LocalUpdate { .. }) {
                        FrameKind::Update
                    } else {
                        FrameKind::Control
                    };
                    match guard.admit(job_id, party, kind) {
                        FrameVerdict::Admit => {}
                        FrameVerdict::BreakerOpen => {
                            self.stats.breaker_dropped_frames += 1;
                            continue;
                        }
                        FrameVerdict::RateLimited => {
                            self.stats.rate_limited_frames += 1;
                            continue;
                        }
                        FrameVerdict::RoundFull => {
                            self.stats.admission_refused_frames += 1;
                            continue;
                        }
                    }
                }
            }
            // The latency-derived deadline check: every cohort member's
            // simulated round-trip duration is a sample, and an update
            // slower than the open round's deadline is withheld — the
            // wheel will close its sender out as a straggler. The
            // decision compares two deterministic quantities (seeded
            // training duration vs. a deadline derived from the closed
            // rounds' sample multiset), so it is independent of arrival
            // order — which is what keeps sharded runs equivalent to
            // single-threaded ones. Samples are deduplicated per
            // `(round, party)` so replayed frames cannot perturb the
            // multiset, and only this round's cohort contributes.
            if let DeadlineSource::Observed { observed, .. } = &mut state.deadline {
                if let WireMessage::LocalUpdate { round, party, duration, .. } = &msg {
                    let pid = *party as PartyId;
                    let in_open_round = state.coordinator.round() as u64 == *round
                        && state.coordinator.open_cohort().is_some_and(|c| c.contains(&pid));
                    if in_open_round {
                        let first_arrival = state.sampled.insert(pid);
                        if first_arrival {
                            observed.record(*duration);
                        }
                        if state.current_deadline.is_some_and(|d| *duration > d) {
                            // Every copy is withheld (a redelivered late
                            // update reaching the coordinator would be
                            // *accepted* — the party is still pending),
                            // but only the first arrival counts, so
                            // `late_updates` equals the straggler count
                            // under at-least-once delivery too.
                            if first_arrival {
                                self.stats.late_updates += 1;
                                // Chronic lateness as a breaker signal is
                                // opt-in: a slow party is usually
                                // heterogeneity, not hostility.
                                if let Some(guard) = &mut self.guard {
                                    if guard.strikes_on_late() {
                                        guard.strike(job_id, pid as u64);
                                    }
                                }
                            }
                            continue;
                        }
                    }
                }
            }
            let effects = state.coordinator.handle(Event::UpdateReceived(msg))?;
            self.apply_effects(job_id, effects)?;
        }
        Ok(progressed)
    }

    /// Advances the timer wheel to the next live deadline and fires it
    /// (plus any stale entries for rounds that already closed early,
    /// which are skipped harmlessly). Call only when the wire is quiet —
    /// [`MultiJobDriver::pump`] returned `false` and the peer has
    /// nothing in flight — or simulated time will overtake in-flight
    /// frames.
    ///
    /// Returns whether any deadline fired; `false` means the wheel is
    /// empty (every job finished, or nothing was started).
    ///
    /// # Errors
    ///
    /// Aggregation/evaluation/selection and transport failures
    /// propagate.
    pub fn advance_clock(&mut self) -> Result<bool, FlError> {
        while let Some(entries) = self.wheel.advance() {
            let mut fired = false;
            for Deadline { job, round } in entries {
                let Some(state) = self.jobs.get_mut(&job) else { continue };
                // Stale entry: the round closed early (or the job
                // finished) before its deadline came up.
                let live = state.coordinator.open_cohort().is_some()
                    && state.coordinator.round() as u64 == round;
                if !live {
                    continue;
                }
                fired = true;
                let effects = state.coordinator.handle(Event::DeadlineExpired)?;
                self.apply_effects(job, effects)?;
            }
            if fired {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Executes a batch of coordinator effects: sends go on the wire
    /// (encoded + framed), rejections are counted, and a closed round
    /// immediately opens the job's next one.
    fn apply_effects(&mut self, job_id: u64, effects: Vec<Effect>) -> Result<(), FlError> {
        let mut reopen = false;
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.send_to_party(to, &msg)?,
                Effect::Rejected { party, reason, .. } => {
                    self.stats.rejected_messages += 1;
                    // A coordinator bounce is breaker evidence — except a
                    // duplicate, which is exactly what an at-least-once
                    // transport legitimately redelivers.
                    if reason != RejectReason::DuplicateUpdate {
                        if let (Some(guard), Some(p)) = (&mut self.guard, party) {
                            guard.strike(job_id, p as u64);
                        }
                    }
                }
                Effect::RoundClosed(_) => reopen = true,
                Effect::JobFinished(_) => {}
            }
        }
        if reopen {
            if self.deferred_opens {
                self.pending_open.push(job_id);
            } else {
                self.open_next_round(job_id)?;
            }
        }
        Ok(())
    }

    /// Opens a job's next round (unless finished): runs selection,
    /// resolves this round's deadline, schedules it on the wheel, and
    /// sends the round's frames.
    ///
    /// On the injected path the clock picks this round's victims and
    /// their model delivery is withheld (work whose result never arrives
    /// is not simulated). On the observed path every cohort member gets
    /// the model — who misses follows from each reply's duration against
    /// the latency-derived deadline, checked in [`MultiJobDriver::pump`].
    fn open_next_round(&mut self, job_id: u64) -> Result<(), FlError> {
        let state = self.jobs.get_mut(&job_id).expect("job registered");
        if state.coordinator.is_finished() {
            return Ok(());
        }
        if self.draining {
            self.stats.drain_refused_selections += 1;
            return Ok(());
        }
        let round = state.coordinator.round() as u64;
        let effects = state.coordinator.open_round()?;
        let selected: Vec<PartyId> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg: WireMessage::SelectionNotice { .. } } => Some(*to),
                _ => None,
            })
            .collect();
        state.sampled.clear();
        let (mut victims, deadline_ticks) = match &mut state.deadline {
            DeadlineSource::Injected(clock) => {
                let victim_idx = clock.missed_deadline(&selected, &state.latency);
                let victims: HashSet<PartyId> = victim_idx.iter().map(|&i| selected[i]).collect();
                (victims, clock.deadline_ticks())
            }
            DeadlineSource::Observed { policy, observed } => {
                let deadline = policy.deadline_secs(observed);
                state.current_deadline = deadline;
                // An unbounded (warm-up) deadline still schedules an
                // entry: it only fires if the round somehow stalls, and
                // a stale entry is skipped harmlessly.
                let ticks = deadline.map_or(1, DeadlinePolicy::ticks);
                (HashSet::new(), ticks)
            }
        };
        // Guard stage 5 — breaker evaluation at the deterministic point.
        // A round open is the one moment every execution mode reaches in
        // the same order with the same accumulated strikes, so breaker
        // transitions here are arrival-order-independent. An ejected
        // party is treated exactly like an injected victim: its model is
        // withheld and the round closes it out as a straggler, which is
        // what makes ejection equivalence testable against a
        // [`crate::ScriptedClock`] reference run.
        if let Some(guard) = &mut self.guard {
            let outcome = guard.on_round_open(job_id, &selected);
            self.stats.parties_ejected += u64::from(outcome.tripped);
            victims.extend(outcome.ejected);
        }
        self.wheel.schedule(deadline_ticks, Deadline { job: job_id, round });
        for effect in effects {
            let Effect::Send { to, msg } = effect else { continue };
            if victims.contains(&to) && matches!(msg, WireMessage::GlobalModel { .. }) {
                continue; // misses the deadline; never simulated
            }
            self.send_to_party(to, &msg)?;
        }
        Ok(())
    }

    /// The open round's latency-derived deadline for `job`, in simulated
    /// seconds (`None` = no such job, injected path, or unbounded
    /// warm-up round).
    pub fn current_deadline(&self, job: u64) -> Option<f64> {
        self.jobs.get(&job).and_then(|j| j.current_deadline)
    }

    /// Switches round reopening to deferred mode: a closed round queues
    /// its job on [`MultiJobDriver::open_pending`] instead of opening the
    /// next round inline, exposing the round boundary to the caller
    /// (the checkpoint hook). Opens still happen in close order, after
    /// the pump drains — chaos indices and seeded histories are
    /// unchanged, because chaos draws only against uplink frames and the
    /// uplink order is preserved.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] after [`MultiJobDriver::start`].
    pub fn set_deferred_opens(&mut self, deferred: bool) -> Result<(), FlError> {
        if self.started {
            return Err(FlError::Protocol("cannot change open mode on a started driver".into()));
        }
        self.deferred_opens = deferred;
        Ok(())
    }

    /// Whether any job's next round open is queued (deferred mode only).
    pub fn has_pending_opens(&self) -> bool {
        !self.pending_open.is_empty()
    }

    /// Opens every queued round (close order) and sends its frames.
    ///
    /// # Errors
    ///
    /// Selection and transport failures propagate.
    pub fn open_pending(&mut self) -> Result<(), FlError> {
        let pending = std::mem::take(&mut self.pending_open);
        for job_id in pending {
            self.open_next_round(job_id)?;
        }
        Ok(())
    }

    /// Whether every job sits at a round boundary (no round open) — the
    /// only state a [`MultiJobDriver::checkpoint`] can capture.
    pub fn at_round_boundary(&self) -> bool {
        self.jobs.values().all(|j| j.coordinator.open_cohort().is_none())
    }

    /// The transport lost a link's peer; its slot state was parked. Pure
    /// accounting — the net runtime calls this when it detects link
    /// death.
    pub fn note_link_lost(&mut self) {
        self.stats.links_lost += 1;
    }

    /// A parked link's peer reconnected and resumed its session.
    pub fn note_link_resumed(&mut self) {
        self.stats.links_resumed += 1;
    }

    /// A party left `job` for good: the coordinator stops selecting it
    /// (closing it out of any open round as a straggler) and its guard
    /// state — breaker, strikes, rate-limit bucket — retires with it.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] for an unregistered job; close/reopen
    /// failures propagate (departure can complete an open round).
    pub fn party_left(&mut self, job: u64, party: PartyId) -> Result<(), FlError> {
        let Some(state) = self.jobs.get_mut(&job) else {
            return Err(FlError::InvalidConfig(format!("job id {job:#x} not registered")));
        };
        let effects = state.coordinator.handle(Event::PartyLeft(party))?;
        if let Some(guard) = &mut self.guard {
            guard.retire(job, party as u64);
        }
        self.apply_effects(job, effects)
    }

    /// A departed roster slot rejoined `job`: eligible again at the next
    /// round open, with fresh guard state (like a first-seen party).
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] for an unregistered job.
    pub fn party_joined(&mut self, job: u64, party: PartyId) -> Result<(), FlError> {
        let Some(state) = self.jobs.get_mut(&job) else {
            return Err(FlError::InvalidConfig(format!("job id {job:#x} not registered")));
        };
        let effects = state.coordinator.handle(Event::PartyJoined(party))?;
        self.apply_effects(job, effects)
    }

    /// Captures a [`Checkpoint`] of the whole coordinator plane at a
    /// round boundary: per-job protocol state (model, optimizer,
    /// roster mask, history + feedback tapes, observed-latency store),
    /// the wire counters and virtual tick, the guard plane, and every
    /// link's delta-codec reference.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] unless every job is at a round boundary
    /// (checkpoints of half-open rounds cannot restore bit-identically —
    /// in-flight frames are not capturable state).
    pub fn checkpoint(&self) -> Result<Checkpoint, FlError> {
        if !self.at_round_boundary() {
            return Err(FlError::Protocol(
                "checkpoint requires a round boundary (a round is open)".into(),
            ));
        }
        let jobs = self
            .jobs
            .iter()
            .map(|(&id, state)| JobSnapshot {
                job: id,
                global: state.coordinator.global_params().to_vec(),
                optimizer: state.coordinator.export_optimizer(),
                active: state.coordinator.active_mask().to_vec(),
                history: state.coordinator.history().records().to_vec(),
                feedback: state.coordinator.feedback_log().to_vec(),
                observed: match &state.deadline {
                    DeadlineSource::Injected(_) => None,
                    DeadlineSource::Observed { observed, .. } => {
                        let (samples, batches) = observed.parts();
                        Some((samples.to_vec(), batches.to_vec()))
                    }
                },
            })
            .collect();
        let mut codec_refs = Vec::new();
        for (link, map) in self.codecs.iter().enumerate() {
            for (job, ref_round, params) in map.reference_snapshots() {
                codec_refs.push(CodecRefSnapshot { link: link as u32, job, ref_round, params });
            }
        }
        Ok(Checkpoint {
            tick: self.wheel.now(),
            draining: self.draining,
            stats: self.stats,
            jobs,
            guard: self.guard.as_ref().map(GuardPlane::export),
            codec_refs,
        })
    }

    /// Restores a freshly-built driver (same jobs, same guard config,
    /// same transport shape) to a checkpointed round boundary. After
    /// this, [`MultiJobDriver::start`] opens each unfinished job's next
    /// round exactly as the uninterrupted run would have — same
    /// selections, same victims, same deadline ticks, and (via the
    /// re-keyed per-link references) the same encoded bytes.
    ///
    /// # Errors
    ///
    /// [`FlError::Protocol`] on a started driver;
    /// [`FlError::InvalidConfig`] when the snapshot does not fit this
    /// driver's configuration (job set, deadline sources, guard
    /// presence, link count, codec kinds, model shapes). On error the
    /// driver must be discarded — selectors may be partially replayed.
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), FlError> {
        if self.started {
            return Err(FlError::Protocol("cannot restore a started driver".into()));
        }
        let snapshot_ids: Vec<u64> = cp.jobs.iter().map(|j| j.job).collect();
        let registered: Vec<u64> = self.jobs.keys().copied().collect();
        if snapshot_ids != registered {
            return Err(FlError::InvalidConfig(format!(
                "checkpoint covers jobs {snapshot_ids:x?}, driver has {registered:x?}"
            )));
        }
        match (&self.guard, &cp.guard) {
            (Some(_), Some(_)) | (None, None) => {}
            (Some(_), None) => {
                return Err(FlError::InvalidConfig(
                    "driver has a guard plane but the checkpoint carries none".into(),
                ));
            }
            (None, Some(_)) => {
                return Err(FlError::InvalidConfig(
                    "checkpoint carries guard state but no guard is installed".into(),
                ));
            }
        }
        for snap in &cp.jobs {
            let state = self.jobs.get_mut(&snap.job).expect("id sets match");
            state.coordinator.restore(
                snap.history.clone(),
                snap.feedback.clone(),
                snap.global.clone(),
                &snap.optimizer,
                &snap.active,
            )?;
            match (&mut state.deadline, &snap.observed) {
                (DeadlineSource::Injected(clock), None) => {
                    // The clock is stateful (its RNG advances once per
                    // round open, in round order) — replay each closed
                    // round's open against the recorded cohort.
                    for record in &snap.history {
                        let _ = clock.missed_deadline(&record.selected, &state.latency);
                    }
                }
                (DeadlineSource::Observed { observed, .. }, Some((samples, batches))) => {
                    *observed = ObservedLatency::from_parts(samples.clone(), batches.clone())
                        .ok_or_else(|| {
                            FlError::InvalidConfig(
                                "checkpoint observed-latency store is inconsistent".into(),
                            )
                        })?;
                }
                (DeadlineSource::Injected(_), Some(_)) => {
                    return Err(FlError::InvalidConfig(format!(
                        "job {:#x} uses an injected clock but the checkpoint has latency samples",
                        snap.job
                    )));
                }
                (DeadlineSource::Observed { .. }, None) => {
                    return Err(FlError::InvalidConfig(format!(
                        "job {:#x} derives deadlines from latency but the checkpoint has no samples",
                        snap.job
                    )));
                }
            }
            state.current_deadline = None;
            state.sampled.clear();
        }
        if let (Some(guard), Some(snap)) = (&mut self.guard, &cp.guard) {
            guard.import(snap.clone());
        }
        for r in &cp.codec_refs {
            let links = self.codecs.len();
            let Some(map) = self.codecs.get_mut(r.link as usize) else {
                return Err(FlError::InvalidConfig(format!(
                    "checkpoint re-keys link {}, transport has {links}",
                    r.link
                )));
            };
            if !map.seed_reference(r.job, r.ref_round, &r.params) {
                return Err(FlError::InvalidConfig(format!(
                    "cannot re-key job {:#x} on link {}: codec keeps no reference or shape differs",
                    r.job, r.link
                )));
            }
        }
        self.stats = cp.stats;
        self.draining = cp.draining;
        self.wheel.now = cp.tick;
        Ok(())
    }

    fn send_to_party(&mut self, to: PartyId, msg: &WireMessage) -> Result<(), FlError> {
        // Encode with the job's negotiated codec — against the codec
        // state of the link this frame will travel on — into the reused
        // scratch: zero allocation once the scratch has warmed up.
        let link = self.transport.link_for(msg.job(), to as u64);
        let Some(link_codecs) = self.codecs.get_mut(link) else {
            // Same contract violation `pump` hard-errors on: encoding
            // against the wrong link's CodecMap would silently desync
            // the delta reference, which is far worse than failing.
            return Err(FlError::Transport(format!(
                "transport routed a frame to link {link}, but only {} exist",
                self.codecs.len()
            )));
        };
        // Per-link negotiation: the coordinator announces its job-wide
        // codec, but this link may pin a different one — rewrite the
        // notice so every party negotiates the codec its link actually
        // speaks.
        if let WireMessage::SelectionNotice { job, round, party, codec } = msg {
            let pinned = link_codecs.codec_of(*job);
            if let Some(pinned) = pinned.filter(|p| p != codec) {
                let adjusted = WireMessage::SelectionNotice {
                    job: *job,
                    round: *round,
                    party: *party,
                    codec: pinned,
                };
                frame_into(to as u64, &adjusted, link_codecs.for_job(*job), &mut self.scratch);
                self.stats.frames_sent += 1;
                self.stats.bytes_sent += self.scratch.len() as u64;
                return self.transport.send(self.scratch.as_slice());
            }
        }
        frame_into(to as u64, msg, link_codecs.for_job(msg.job()), &mut self.scratch);
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += self.scratch.len() as u64;
        self.transport.send(self.scratch.as_slice())
    }
}

/// The party side of a serialized link: every job's endpoints, keyed by
/// `(job id, party id)`.
pub struct PartyPool<T: Transport> {
    transport: T,
    endpoints: BTreeMap<(u64, PartyId), PartyEndpoint>,
    /// Per-job payload codec state (receiver side of global models),
    /// negotiated from the codec each selection notice announces.
    codecs: CodecMap,
    /// Reused frame-encode scratch for uplink replies.
    scratch: BytesMut,
    /// Frames that failed to decode or addressed no registered endpoint.
    unroutable: u64,
    /// Routable frames the endpoint refused (direction/architecture
    /// protocol violations).
    rejected: u64,
    /// Frames dropped for a corrupt/mismatched model codec tag.
    codec_mismatch: u64,
    /// Selection notices dropped for trying to renegotiate a job codec.
    renegotiations_rejected: u64,
    /// Downlink frame-size cap, if a guard config was applied.
    max_frame: Option<usize>,
    /// Frames dropped by the size cap.
    oversized: u64,
    /// Jobs this pool folds as an aggregation-tree inner node
    /// ([`PartyPool::enable_tree`]), keyed by job id.
    tree: BTreeMap<u64, TreeJob>,
    /// Per-`(job, round)` partial fold accumulated since the last pump
    /// drain — one [`WireMessage::PartialUpdate`] is emitted per entry
    /// when the drain loop goes quiet, in ascending key order.
    tree_acc: BTreeMap<(u64, u64), (ExactWeightedSum, Vec<PartialEntry>)>,
}

/// Per-job state for a pool acting as an aggregation-tree inner node.
struct TreeJob {
    /// Selector-feedback sketch width the coordinator expects
    /// ([`crate::coordinator::Coordinator::sketch_dim`]).
    sketch_dim: usize,
    /// The last dispatched global this node saw, captured off the
    /// downlink so per-party sketches are taken against the exact bits
    /// the coordinator would have used.
    global: Option<(u64, Arc<[f32]>)>,
}

impl<T: Transport> std::fmt::Debug for PartyPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartyPool")
            .field("endpoints", &self.endpoints.len())
            .field("unroutable", &self.unroutable)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl<T: Transport> PartyPool<T> {
    /// An empty pool over `transport`.
    pub fn new(transport: T) -> Self {
        PartyPool {
            transport,
            endpoints: BTreeMap::new(),
            codecs: CodecMap::new(Role::Receiver),
            scratch: BytesMut::new(),
            unroutable: 0,
            rejected: 0,
            codec_mismatch: 0,
            renegotiations_rejected: 0,
            max_frame: None,
            oversized: 0,
            tree: BTreeMap::new(),
            tree_acc: BTreeMap::new(),
        }
    }

    /// Turns this pool into an aggregation-tree inner node for `job`:
    /// local updates its endpoints produce are folded into one exact
    /// 256-bit partial sum ([`ExactWeightedSum`]) per round and shipped
    /// uplink as a single [`WireMessage::PartialUpdate`] instead of
    /// O(parties) individual update frames. Fan-in at the coordinator
    /// becomes O(inner nodes).
    ///
    /// The receiving coordinator must be in exact-fold mode
    /// ([`crate::Coordinator::set_exact_fold`]); `sketch_dim` must match
    /// its configured sketch width, because selector-feedback sketches
    /// are computed *here*, against the dispatched global, and shipped
    /// inside the partial.
    ///
    /// Safety valve: an update the node cannot fold (no captured global
    /// yet, round mismatch after a resume, parameters outside the exact
    /// domain) is forwarded flat, unchanged — the exact coordinator
    /// merges mixed flat + partial cohorts bit-identically, so falling
    /// back never forks the history.
    pub fn enable_tree(&mut self, job: u64, sketch_dim: usize) {
        self.tree.insert(job, TreeJob { sketch_dim, global: None });
    }

    /// Whether `job` is folded at this node ([`PartyPool::enable_tree`]).
    pub fn tree_enabled(&self, job: u64) -> bool {
        self.tree.contains_key(&job)
    }

    /// Applies the guard plane's frame-size cap to this pool's inbound
    /// (downlink) frames. The party side trusts its own aggregator, so
    /// size is the only guard stage that applies down here — there is no
    /// per-party attribution or round-open signal on this side of the
    /// wire.
    pub fn set_guard(&mut self, config: &GuardConfig) {
        self.max_frame = Some(config.max_frame_bytes.min(MAX_FRAME_BYTES));
    }

    /// Frames dropped by the guard's size cap ([`PartyPool::set_guard`]).
    pub fn oversized(&self) -> u64 {
        self.oversized
    }

    /// Registers a job's endpoints (endpoint ids key the routing, the
    /// job id comes from each inbound message). The agreed architecture
    /// size is pinned on the job's codec state, so no wrong-length
    /// decoded model can ever become the job's delta reference.
    pub fn add_job(&mut self, job: u64, endpoints: Vec<PartyEndpoint>) {
        if let Some(ep) = endpoints.first() {
            self.codecs.expect_len(job, ep.party().num_params());
        }
        for ep in endpoints {
            self.endpoints.insert((job, ep.id()), ep);
        }
    }

    /// Endpoints registered.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the pool has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Frames this pool could not route (corrupt, or addressed to an
    /// unregistered `(job, party)`).
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Routable frames an endpoint refused as protocol violations.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Frames dropped for a corrupt or mismatched model codec tag.
    pub fn codec_mismatch(&self) -> u64 {
        self.codec_mismatch
    }

    /// Selection notices dropped for trying to renegotiate a job codec.
    pub fn renegotiations_rejected(&self) -> u64 {
        self.renegotiations_rejected
    }

    /// The codec negotiated for a job, if any notice arrived yet.
    pub fn negotiated_codec(&self, job: u64) -> Option<ModelCodec> {
        self.codecs.codec_of(job)
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport — a socket-backed
    /// pool's event loop needs it to answer link-level control traffic
    /// and to resume buffered writes on write readiness.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Pins a job's codec from out-of-band configuration instead of
    /// trusting the first wire notice (trust-on-first-frame lets one
    /// forged notice wedge a job before its real notice arrives — see
    /// the trust-boundary notes in [`crate::codec`]). Subsequent
    /// notices must match or they are dropped and counted as
    /// renegotiations.
    ///
    /// A pool serves exactly one transport link, so this pin is
    /// naturally per-link: pin the codec the sender registered for
    /// *this link* ([`MultiJobDriver::set_link_codec`]), which may
    /// differ from the same job's codec on a sibling link.
    pub fn pin_codec(&mut self, job: u64, codec: ModelCodec) {
        self.codecs.register(job, codec);
    }

    /// Re-keys a job's receive-side delta reference (resume/restore —
    /// see [`CodecMap::seed_reference`]): both ends of the wire
    /// resynchronize to the same last-acknowledged global, so the next
    /// delta frame decodes against the exact bits it was encoded
    /// against. Returns `false` when the job's codec keeps no reference
    /// or the shape disagrees with the pinned architecture.
    pub fn seed_reference(&mut self, job: u64, round: u64, params: &[f32]) -> bool {
        self.codecs.seed_reference(job, round, params)
    }

    /// Registers one more endpoint on a live pool (a party rejoining
    /// mid-job).
    pub fn add_endpoint(&mut self, job: u64, endpoint: PartyEndpoint) {
        self.endpoints.insert((job, endpoint.id()), endpoint);
    }

    /// Removes a departed party's endpoint; its inbound frames become
    /// unroutable, exactly like a party that never existed. Returns the
    /// endpoint for possible re-registration.
    pub fn retire_endpoint(&mut self, job: u64, party: PartyId) -> Option<PartyEndpoint> {
        self.endpoints.remove(&(job, party))
    }

    /// Processes every frame currently available: decode, route to the
    /// `(job, party)` endpoint, run the endpoint (training included),
    /// and send its replies back up the wire. Returns whether any frame
    /// was processed.
    ///
    /// Corrupt, unroutable and protocol-violating frames are counted
    /// and dropped — a bad frame must not take the pool (or any other
    /// job) down. That includes frames that *route* but that the
    /// endpoint refuses (a wrong-direction message, a model that does
    /// not match the agreed architecture): on the wire those are
    /// hostile traffic, mirroring how the coordinator bounces the
    /// symmetric cases with [`Effect::Rejected`].
    ///
    /// # Errors
    ///
    /// Only transport failures propagate.
    pub fn pump(&mut self) -> Result<bool, FlError> {
        let mut progressed = false;
        while let Some(raw) = self.transport.try_recv()? {
            progressed = true;
            if self.max_frame.is_some_and(|cap| raw.len() > cap) {
                self.oversized += 1;
                continue;
            }
            let peeked_job = frame_job(&raw);
            let msg = match deframe_with(raw, &mut self.codecs) {
                Ok((dest, msg)) => {
                    if self.endpoints.contains_key(&(msg.job(), dest as PartyId)) {
                        (dest, msg)
                    } else {
                        self.unroutable += 1;
                        continue;
                    }
                }
                Err(FlError::CodecMismatch(_)) => {
                    // Only a job with a negotiated codec can genuinely
                    // mismatch; anything else is unroutable traffic.
                    if peeked_job.is_some_and(|j| self.codecs.codec_of(j).is_some()) {
                        self.codec_mismatch += 1;
                    } else {
                        self.unroutable += 1;
                    }
                    continue;
                }
                Err(_) => {
                    self.unroutable += 1;
                    continue;
                }
            };
            let (dest, msg) = msg;
            // The wire-level half of codec negotiation: the first
            // notice for a job pins the codec its model frames will be
            // decoded with; a conflicting notice is dropped before it
            // can reach (and confuse) an endpoint. Idempotent repeats
            // pass through — the endpoint re-acks and counts them.
            if let WireMessage::SelectionNotice { job, codec, .. } = &msg {
                if self.codecs.negotiate(*job, *codec) == Negotiation::Conflict {
                    self.renegotiations_rejected += 1;
                    continue;
                }
            }
            // Tree mode captures each dispatched global off the downlink
            // *before* the endpoint consumes it: folded updates need the
            // exact broadcast bits as the sketch reference.
            if let WireMessage::GlobalModel { job, round, params } = &msg {
                if let Some(tree) = self.tree.get_mut(job) {
                    tree.global = Some((*round, Arc::clone(params)));
                }
            }
            let endpoint = self.endpoints.get_mut(&(msg.job(), dest as PartyId)).expect("checked");
            let Ok(replies) = endpoint.handle(&msg) else {
                self.rejected += 1;
                continue;
            };
            for reply in replies {
                if self.try_fold_tree(&reply) {
                    continue;
                }
                frame_into(
                    AGGREGATOR_DEST,
                    &reply,
                    self.codecs.for_job(reply.job()),
                    &mut self.scratch,
                );
                self.transport.send(self.scratch.as_slice())?;
            }
        }
        // Ship one partial per (job, round) folded during this drain, in
        // deterministic ascending order. Emitting only once the wire is
        // quiet batches every update the drain produced; a round whose
        // updates arrive across several drains simply ships several
        // partials, which the exact coordinator merges bit-identically.
        for ((job, round), (sum, entries)) in std::mem::take(&mut self.tree_acc) {
            if entries.is_empty() {
                continue;
            }
            let msg = WireMessage::PartialUpdate {
                job,
                round,
                total_weight: sum.total_weight(),
                dim: sum.dim() as u32,
                limbs: sum.raw_limbs(),
                entries,
            };
            frame_into(AGGREGATOR_DEST, &msg, self.codecs.for_job(job), &mut self.scratch);
            self.transport.send(self.scratch.as_slice())?;
        }
        Ok(progressed)
    }

    /// Folds a tree-job local update into the round's partial
    /// accumulator. Returns `false` when the reply is not a foldable
    /// update — the caller then forwards it flat (the safety valve
    /// documented on [`PartyPool::enable_tree`]).
    fn try_fold_tree(&mut self, reply: &WireMessage) -> bool {
        let WireMessage::LocalUpdate {
            job,
            round,
            party,
            num_samples,
            mean_loss,
            duration,
            params,
        } = reply
        else {
            return false;
        };
        let Some(tree) = self.tree.get(job) else {
            return false;
        };
        let Some((g_round, global)) = tree.global.as_ref() else {
            return false;
        };
        if g_round != round || global.len() != params.len() {
            return false;
        }
        let (sum, entries) = self
            .tree_acc
            .entry((*job, *round))
            .or_insert_with(|| (ExactWeightedSum::new(params.len()), Vec::new()));
        // `fold` validates everything (dimension, weight bounds, param
        // domain) before touching the limbs, so a refusal leaves the
        // accumulated partial intact and this one update goes up flat.
        if sum.dim() != params.len() || sum.fold(params, *num_samples).is_err() {
            return false;
        }
        let delta: Vec<f32> = params.iter().zip(global.iter()).map(|(x, g)| x - g).collect();
        entries.push(PartialEntry {
            party: *party,
            num_samples: *num_samples,
            mean_loss: *mean_loss,
            duration: *duration,
            sketch: sketch_update(&delta, tree.sketch_dim),
        });
        true
    }
}

/// Runs a driver and an in-process party pool to completion, lock-step:
/// pump both until the wire is quiet in both directions, then advance
/// the driver's clock; repeat until every job finishes — or, if the
/// driver is draining ([`MultiJobDriver::begin_drain`]), until it
/// reaches quiescence with its partial histories intact.
///
/// # Errors
///
/// Propagates the first driver/pool failure, and a
/// [`FlError::Protocol`] if the system stalls (quiet wire, no live
/// deadline, unfinished jobs — a wiring bug, e.g. endpoints registered
/// under the wrong job id).
pub fn run_lockstep<A: Transport, B: Transport>(
    driver: &mut MultiJobDriver<A>,
    pool: &mut PartyPool<B>,
) -> Result<(), FlError> {
    driver.start()?;
    loop {
        loop {
            let drove = driver.pump()?;
            let pooled = pool.pump()?;
            if !drove && !pooled {
                break;
            }
        }
        if driver.is_finished() || driver.is_quiescent() {
            return Ok(());
        }
        if !driver.advance_clock()? {
            return Err(FlError::Protocol(
                "driver stalled: wire quiet, no live deadline, jobs unfinished".into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemoryTransport;

    #[test]
    fn wheel_fires_in_tick_then_insertion_order() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(2, Deadline { job: 1, round: 0 });
        wheel.schedule(1, Deadline { job: 2, round: 0 });
        wheel.schedule(2, Deadline { job: 3, round: 0 });
        assert_eq!(wheel.pending(), 3);
        assert_eq!(wheel.advance().unwrap(), vec![Deadline { job: 2, round: 0 }]);
        assert_eq!(wheel.now(), 1);
        assert_eq!(
            wheel.advance().unwrap(),
            vec![Deadline { job: 1, round: 0 }, Deadline { job: 3, round: 0 }]
        );
        assert_eq!(wheel.now(), 2);
        assert!(wheel.advance().is_none());
    }

    #[test]
    fn zero_delay_schedules_are_clamped_forward() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(0, Deadline { job: 1, round: 0 });
        assert_eq!(wheel.advance().unwrap(), vec![Deadline { job: 1, round: 0 }]);
        assert_eq!(wheel.now(), 1, "a deadline can never fire at its own open tick");
    }

    #[test]
    fn empty_driver_refuses_to_start() {
        let (a, _b) = MemoryTransport::pair();
        let mut driver = MultiJobDriver::new(a);
        assert!(matches!(driver.start(), Err(FlError::Protocol(_))));
    }

    #[test]
    fn link_codec_overrides_validate_job_and_link() {
        let (a, _b) = MemoryTransport::pair();
        let mut driver = MultiJobDriver::new(a);
        // Unknown job: refused before any link state is touched.
        assert!(matches!(
            driver.set_link_codec(7, 0, ModelCodec::DeltaEntropy),
            Err(FlError::InvalidConfig(_))
        ));
        assert_eq!(driver.link_codec_of(7, 0), None);
        assert_eq!(driver.codec_of(7), None);
    }
}
