//! The deterministic guard plane: policy-driven inbound-frame
//! middleware in front of the protocol state machines.
//!
//! Every hostile input the drivers see — floods, forged senders,
//! corrupt payloads, chronic lateness — used to be merely *counted*
//! ([`crate::DriverStats`]); nothing ever throttled, ejected or
//! drained, so one misbehaving party degraded every round for
//! everyone. This module supplies the middleware-layer answer the
//! policy-free-middleware literature frames as the layer's core job:
//! enforcement as composable, configurable **stages in front of the
//! application state machine**, not ad-hoc checks inside it.
//!
//! Like everything else in this workspace the stack is **sans-IO and
//! deterministic**: the [`GuardPlane`] owns no sockets and reads no
//! wall clock. Drivers feed it observations (a frame's length, a
//! decoded sender, a coordinator rejection) and ask for verdicts; time
//! enters only through the driver's own simulated round cadence — every
//! bucket refill and breaker transition happens at a round open, which
//! the timer wheel fires deterministically. Two identical runs
//! therefore produce identical guard decisions, which is what makes
//! every guard behavior provable by replay (see `tests/guard_plane.rs`).
//!
//! # Stage order
//!
//! Inbound frames traverse the stages in a fixed order; the first
//! refusing stage wins and the frame is counted and dropped — no stage
//! ever touches round state:
//!
//! 1. **frame-size guard** ([`GuardConfig::max_frame_bytes`]) — before
//!    decode, so an oversized frame cannot cost an allocation;
//! 2. **decode** (the existing corrupt/codec-mismatch/unknown-job
//!    handling, unchanged — undecodable frames may still *strike* their
//!    claimed sender, see below);
//! 3. **circuit breaker** — a [`BreakerState::Open`] sender's model
//!    updates are dropped (control traffic still passes, see
//!    [Breakers](#circuit-breakers));
//! 4. **rate limit** — a per-`(job, party)` token bucket refilled at
//!    each round open;
//! 5. **admission control** — a per-job budget of frames admitted into
//!    the open round; a full round refuses the rest.
//!
//! # Circuit breakers
//!
//! Each `(job, party)` pair carries a three-state breaker:
//!
//! ```text
//!            strikes ≥ threshold at round open
//!   Closed ───────────────────────────────────▶ Open
//!     ▲                                          │ cooldown_rounds
//!     │ probe round with zero strikes            ▼ round opens later
//!     └────────────────────────────────────── HalfOpen
//!                 (any strike re-opens)
//! ```
//!
//! *Strikes* accumulate during a round from the hostile signals the
//! drivers already classify: rate-limit violations, coordinator
//! rejections (except benign at-least-once duplicates), corrupt or
//! codec-mismatched frames attributed by header peek, and — opt-in —
//! deadline-late updates. All transitions happen **at round open**, a
//! deterministic point on the driver thread, so mid-round arrival order
//! can never decide a state change.
//!
//! While a breaker is [`BreakerState::Open`] the party is **ejected**:
//! the driver withholds its global-model delivery exactly as it does
//! for an injected straggler victim, so the party closes out of each
//! round as a straggler without the job paying wire bytes or training
//! for it — and its inbound `LocalUpdate`s are dropped at the guard.
//! Control traffic (heartbeats, aborts) still passes, which keeps an
//! ejected round **bit-identical** to the same round under an injected
//! victim set (`tests/guard_plane.rs` pins this equivalence with a
//! scripted clock). After [`BreakerConfig::cooldown_rounds`] round
//! opens the breaker half-opens: one probe round with full delivery;
//! a clean probe closes the breaker, any strike re-opens it.
//!
//! Identity on this wire is *claimed*, not proven — a flood forging
//! party `p`'s id trips `p`'s breaker (authenticated framing is the
//! `flips-tee` roadmap item). Guards therefore default to thresholds
//! generous enough that protocol-conformant traffic, duplicates from
//! at-least-once delivery included, never strikes anyone into ejection.
//!
//! # Graceful drain
//!
//! Drain is driver-level ([`crate::MultiJobDriver::begin_drain`]): open
//! rounds run to their deadline, every subsequent round open is refused
//! (counted in [`crate::DriverStats::drain_refused_selections`]), and
//! the driver reports a final quiescent snapshot
//! ([`crate::MultiJobDriver::drain_report`]) once no round is open.

use crate::transport::MAX_FRAME_BYTES;
use crate::FlError;
use flips_selection::PartyId;
use std::collections::BTreeMap;

/// Per-party token-bucket rate limiting, refilled at each round open of
/// the job the bucket belongs to — the only deterministic clock the
/// drivers have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity (and the initial fill): the largest burst of
    /// frames one party may land between two round opens.
    pub burst: u32,
    /// Tokens granted to every tracked bucket of a job at each of the
    /// job's round opens (capped at `burst`).
    pub per_round: u32,
}

impl Default for RateLimit {
    /// Generous defaults: protocol-conformant traffic (one heartbeat
    /// plus one update per selected round, plus a handful of
    /// at-least-once redeliveries) never comes near them.
    fn default() -> Self {
        RateLimit { burst: 64, per_round: 16 }
    }
}

/// Circuit-breaker policy for one guard plane (applied per
/// `(job, party)` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Strikes within one round window that trip the breaker at the
    /// next round open.
    pub strike_threshold: u32,
    /// Round opens an [`BreakerState::Open`] party sits ejected before
    /// the breaker half-opens for a probe round (≥ 1).
    pub cooldown_rounds: u64,
    /// Whether a deadline-late update strikes its sender (off by
    /// default: on the observed-latency path lateness is routine, and
    /// ejecting the slow tail is a policy choice, not a default).
    pub strike_on_late: bool,
    /// Whether a corrupt or codec-mismatched frame strikes the sender
    /// its header claims (on by default; the claim is unauthenticated,
    /// see the module docs).
    pub strike_on_corrupt: bool,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            strike_threshold: 32,
            cooldown_rounds: 2,
            strike_on_late: false,
            strike_on_corrupt: true,
        }
    }
}

/// The state of one `(job, party)` circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: all traffic passes, strikes accumulate.
    #[default]
    Closed,
    /// Tripped: the party is ejected from rounds (model delivery
    /// withheld) and its updates are dropped at the guard.
    Open,
    /// Probing: one round of full delivery; a clean round closes the
    /// breaker, any strike re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Configuration of one [`GuardPlane`]. The default enables every
/// stage at thresholds protocol-conformant traffic never reaches, so
/// a guarded happy-path run is bit-identical to an unguarded one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Frames longer than this are dropped before decode (and a
    /// [`crate::StreamTransport`] built with
    /// [`crate::StreamTransport::with_frame_cap`] skips them before
    /// they are even assembled). Clamped to the hard transport ceiling
    /// [`MAX_FRAME_BYTES`].
    pub max_frame_bytes: usize,
    /// Per-party token-bucket rate limiting (`None` disables).
    pub rate_limit: Option<RateLimit>,
    /// Per-party circuit breakers (`None` disables).
    pub breaker: Option<BreakerConfig>,
    /// Admission control: at most `factor × |cohort|` frames are
    /// admitted into each open round of a job; the rest are refused
    /// (`None` disables).
    pub admission_factor: Option<u32>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            rate_limit: Some(RateLimit::default()),
            breaker: Some(BreakerConfig::default()),
            admission_factor: Some(16),
        }
    }
}

impl GuardConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] for a zero frame cap, a zero-capacity
    /// bucket, a zero strike threshold, a zero cooldown, or a zero
    /// admission factor.
    pub fn validate(&self) -> Result<(), FlError> {
        if self.max_frame_bytes == 0 {
            return Err(FlError::InvalidConfig("guard frame cap must be positive".into()));
        }
        if let Some(rl) = self.rate_limit {
            if rl.burst == 0 {
                return Err(FlError::InvalidConfig("rate-limit burst must be positive".into()));
            }
        }
        if let Some(b) = self.breaker {
            if b.strike_threshold == 0 {
                return Err(FlError::InvalidConfig("breaker strike threshold must be ≥ 1".into()));
            }
            if b.cooldown_rounds == 0 {
                return Err(FlError::InvalidConfig("breaker cooldown must be ≥ 1 round".into()));
            }
        }
        if self.admission_factor == Some(0) {
            return Err(FlError::InvalidConfig("admission factor must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// What an inbound frame is, as far as the guard cares: model payloads
/// are suppressed by an open breaker, control traffic passes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`crate::WireMessage::LocalUpdate`] — the payload an open
    /// breaker drops.
    Update,
    /// Control traffic (heartbeat, abort) — passes an open breaker so
    /// an ejected round stays bit-identical to a victim-injected one.
    Control,
}

/// The guard plane's decision for one admitted-or-refused frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// The frame proceeds to the coordinator.
    Admit,
    /// Dropped: the sender's breaker is open.
    BreakerOpen,
    /// Dropped: the sender's token bucket is empty (this also strikes
    /// the sender).
    RateLimited,
    /// Dropped: the job's open round already admitted its budget.
    RoundFull,
}

/// One recorded breaker transition — `(job, party)` moved to `to` at
/// the job's `open_index`-th round open. The log is a pure function of
/// the strike schedule, which the replay suite asserts by running the
/// same chaos schedule twice and comparing logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The job whose breaker moved.
    pub job: u64,
    /// The claimed sender the breaker guards.
    pub party: u64,
    /// How many rounds the job had opened when the transition fired
    /// (0-based: the transition evaluated at the k-th open).
    pub open_index: u64,
    /// The state entered.
    pub to: BreakerState,
}

/// Per-`(job, party)` guard state.
#[derive(Debug, Default)]
struct PartyGuard {
    state: BreakerState,
    /// Strikes since the job's last round open.
    strikes: u32,
    /// Rounds left before an open breaker half-opens.
    opens_left: u64,
    /// Token bucket; `None` until first sight (filled to burst).
    tokens: Option<u32>,
}

/// Per-job guard state.
#[derive(Debug, Default)]
struct JobGuard {
    /// Frames admitted into the open round so far.
    admitted: u32,
    /// The open round's admission budget (`None` = unlimited).
    budget: Option<u32>,
    /// Round opens seen (drives breaker cooldowns and the transition
    /// log's `open_index`).
    opens: u64,
}

/// The outcome of evaluating a job's guards at a round open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenOutcome {
    /// Cohort members whose breaker is open — the driver withholds
    /// their model delivery (they close as stragglers).
    pub ejected: Vec<PartyId>,
    /// Breakers newly tripped to [`BreakerState::Open`] at this open
    /// (feeds [`crate::DriverStats::parties_ejected`]).
    pub tripped: u32,
}

/// The sans-IO guard state machine: per-party breakers and buckets,
/// per-job admission budgets, and the breaker transition log.
///
/// Drivers own one guard plane per wire
/// ([`crate::MultiJobDriver::set_guard`]) and call into it from their
/// pump and round-open paths; the plane itself never performs I/O and
/// never touches round state.
#[derive(Debug)]
pub struct GuardPlane {
    config: GuardConfig,
    parties: BTreeMap<(u64, u64), PartyGuard>,
    jobs: BTreeMap<u64, JobGuard>,
    transitions: Vec<BreakerTransition>,
}

impl GuardPlane {
    /// A guard plane enforcing `config`.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] if the configuration is invalid (see
    /// [`GuardConfig::validate`]).
    pub fn new(mut config: GuardConfig) -> Result<Self, FlError> {
        config.validate()?;
        config.max_frame_bytes = config.max_frame_bytes.min(MAX_FRAME_BYTES);
        Ok(GuardPlane {
            config,
            parties: BTreeMap::new(),
            jobs: BTreeMap::new(),
            transitions: Vec::new(),
        })
    }

    /// The enforced configuration (frame cap already clamped to the
    /// transport ceiling).
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Whether a frame of `len` bytes passes the size guard.
    pub fn frame_len_ok(&self, len: usize) -> bool {
        len <= self.config.max_frame_bytes
    }

    /// Runs the post-decode stages — breaker, rate limit, admission —
    /// for a frame claiming to come from `(job, party)`. The first
    /// refusing stage wins; a rate-limit refusal also strikes the
    /// sender.
    pub fn admit(&mut self, job: u64, party: u64, kind: FrameKind) -> FrameVerdict {
        let breaker = self.config.breaker;
        let rate = self.config.rate_limit;
        let guard = self.parties.entry((job, party)).or_default();
        if breaker.is_some() && guard.state == BreakerState::Open && kind == FrameKind::Update {
            return FrameVerdict::BreakerOpen;
        }
        if let Some(rl) = rate {
            let tokens = guard.tokens.get_or_insert(rl.burst);
            if *tokens == 0 {
                guard.strikes = guard.strikes.saturating_add(1);
                return FrameVerdict::RateLimited;
            }
            *tokens -= 1;
        }
        let job_guard = self.jobs.entry(job).or_default();
        if let Some(budget) = job_guard.budget {
            if job_guard.admitted >= budget {
                return FrameVerdict::RoundFull;
            }
        }
        job_guard.admitted = job_guard.admitted.saturating_add(1);
        FrameVerdict::Admit
    }

    /// Records one hostile signal against `(job, party)` — a
    /// coordinator rejection, an attributed corrupt frame, a late
    /// update. Strikes accumulate until the job's next round open,
    /// where the breaker evaluates them (no mid-round transitions).
    pub fn strike(&mut self, job: u64, party: u64) {
        if self.config.breaker.is_none() {
            return;
        }
        let guard = self.parties.entry((job, party)).or_default();
        guard.strikes = guard.strikes.saturating_add(1);
    }

    /// Whether late updates strike their sender under this
    /// configuration.
    pub fn strikes_on_late(&self) -> bool {
        self.config.breaker.is_some_and(|b| b.strike_on_late)
    }

    /// Whether corrupt/codec-mismatched frames strike the sender their
    /// header claims.
    pub fn strikes_on_corrupt(&self) -> bool {
        self.config.breaker.is_some_and(|b| b.strike_on_corrupt)
    }

    /// Evaluates a job's guards at a round open: breaker transitions
    /// fire (the only place they may), every tracked bucket of the job
    /// refills, the admission budget resets, and the cohort members
    /// currently ejected are returned.
    pub fn on_round_open(&mut self, job: u64, cohort: &[PartyId]) -> OpenOutcome {
        let open_index = {
            let job_guard = self.jobs.entry(job).or_default();
            job_guard.admitted = 0;
            job_guard.budget =
                self.config.admission_factor.map(|f| f.saturating_mul(cohort.len().max(1) as u32));
            let idx = job_guard.opens;
            job_guard.opens += 1;
            idx
        };
        let mut tripped = 0u32;
        if let Some(cfg) = self.config.breaker {
            for ((j, party), guard) in self.parties.range_mut((job, 0)..=(job, u64::MAX)) {
                debug_assert_eq!(*j, job);
                let strikes = std::mem::take(&mut guard.strikes);
                let next = match guard.state {
                    BreakerState::Closed if strikes >= cfg.strike_threshold => {
                        Some(BreakerState::Open)
                    }
                    BreakerState::Closed => None,
                    BreakerState::Open if strikes >= cfg.strike_threshold => {
                        // Still under attack: re-arm the cooldown.
                        guard.opens_left = cfg.cooldown_rounds;
                        None
                    }
                    BreakerState::Open if guard.opens_left > 1 => {
                        guard.opens_left -= 1;
                        None
                    }
                    BreakerState::Open => Some(BreakerState::HalfOpen),
                    BreakerState::HalfOpen if strikes > 0 => Some(BreakerState::Open),
                    BreakerState::HalfOpen => Some(BreakerState::Closed),
                };
                if let Some(to) = next {
                    if to == BreakerState::Open {
                        guard.opens_left = cfg.cooldown_rounds;
                        tripped += 1;
                    }
                    guard.state = to;
                    self.transitions.push(BreakerTransition { job, party: *party, open_index, to });
                }
            }
        }
        if let Some(rl) = self.config.rate_limit {
            for (_, guard) in self.parties.range_mut((job, 0)..=(job, u64::MAX)) {
                let tokens = guard.tokens.get_or_insert(rl.burst);
                *tokens = tokens.saturating_add(rl.per_round).min(rl.burst);
            }
        }
        let ejected = cohort
            .iter()
            .copied()
            .filter(|&p| {
                self.parties.get(&(job, p as u64)).is_some_and(|g| g.state == BreakerState::Open)
            })
            .collect();
        OpenOutcome { ejected, tripped }
    }

    /// The breaker state of `(job, party)` (untracked pairs are
    /// [`BreakerState::Closed`]).
    pub fn breaker_state(&self, job: u64, party: u64) -> BreakerState {
        self.parties.get(&(job, party)).map_or(BreakerState::Closed, |g| g.state)
    }

    /// Every breaker transition so far, in firing order — a pure
    /// function of the strike schedule.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Retires a party's guard state: its breaker, strike count and
    /// token bucket leave with it. A churned party that later rejoins
    /// starts from a clean slate, exactly like a party seen for the
    /// first time.
    pub fn retire(&mut self, job: u64, party: u64) {
        self.parties.remove(&(job, party));
    }

    /// Snapshots the full mutable guard state (per-party breakers and
    /// buckets, per-job budgets, the transition log) for a checkpoint.
    /// The configuration is not included — a restore re-validates it
    /// through [`GuardPlane::new`].
    pub fn export(&self) -> GuardSnapshot {
        GuardSnapshot {
            parties: self
                .parties
                .iter()
                .map(|(&(job, party), g)| GuardPartySnapshot {
                    job,
                    party,
                    state: g.state,
                    strikes: g.strikes,
                    opens_left: g.opens_left,
                    tokens: g.tokens,
                })
                .collect(),
            jobs: self
                .jobs
                .iter()
                .map(|(&job, j)| GuardJobSnapshot {
                    job,
                    admitted: j.admitted,
                    budget: j.budget,
                    opens: j.opens,
                })
                .collect(),
            transitions: self.transitions.clone(),
        }
    }

    /// Replaces the mutable guard state with a snapshot previously
    /// produced by [`GuardPlane::export`] on a plane with the same
    /// configuration.
    pub fn import(&mut self, snapshot: GuardSnapshot) {
        self.parties = snapshot
            .parties
            .into_iter()
            .map(|p| {
                (
                    (p.job, p.party),
                    PartyGuard {
                        state: p.state,
                        strikes: p.strikes,
                        opens_left: p.opens_left,
                        tokens: p.tokens,
                    },
                )
            })
            .collect();
        self.jobs = snapshot
            .jobs
            .into_iter()
            .map(|j| (j.job, JobGuard { admitted: j.admitted, budget: j.budget, opens: j.opens }))
            .collect();
        self.transitions = snapshot.transitions;
    }
}

/// One party's guard state inside a [`GuardSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardPartySnapshot {
    /// The job the guard belongs to.
    pub job: u64,
    /// The claimed sender the guard watches.
    pub party: u64,
    /// The breaker state.
    pub state: BreakerState,
    /// Strikes since the job's last round open.
    pub strikes: u32,
    /// Rounds left before an open breaker half-opens.
    pub opens_left: u64,
    /// Token bucket level (`None` = party not yet seen).
    pub tokens: Option<u32>,
}

/// One job's guard state inside a [`GuardSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardJobSnapshot {
    /// The job.
    pub job: u64,
    /// Frames admitted into the open round so far.
    pub admitted: u32,
    /// The open round's admission budget (`None` = unlimited).
    pub budget: Option<u32>,
    /// Round opens seen.
    pub opens: u64,
}

/// The full mutable state of a [`GuardPlane`], as captured by
/// [`GuardPlane::export`] — everything a checkpoint must carry so a
/// restored run's guard verdicts replay bit-identically (open breakers,
/// partial admission budgets and half-spent token buckets included).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardSnapshot {
    /// Per-`(job, party)` breaker/bucket state, ascending by key.
    pub parties: Vec<GuardPartySnapshot>,
    /// Per-job admission/open state, ascending by job.
    pub jobs: Vec<GuardJobSnapshot>,
    /// The transition log so far.
    pub transitions: Vec<BreakerTransition>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(breaker: BreakerConfig) -> GuardPlane {
        GuardPlane::new(GuardConfig {
            breaker: Some(breaker),
            rate_limit: Some(RateLimit { burst: 4, per_round: 2 }),
            admission_factor: Some(2),
            ..GuardConfig::default()
        })
        .unwrap()
    }

    fn strict() -> BreakerConfig {
        BreakerConfig { strike_threshold: 2, cooldown_rounds: 2, ..BreakerConfig::default() }
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(GuardConfig::default().validate().is_ok());
        let bad = GuardConfig { max_frame_bytes: 0, ..GuardConfig::default() };
        assert!(bad.validate().is_err());
        let bad = GuardConfig {
            rate_limit: Some(RateLimit { burst: 0, per_round: 1 }),
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardConfig {
            breaker: Some(BreakerConfig { strike_threshold: 0, ..BreakerConfig::default() }),
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardConfig {
            breaker: Some(BreakerConfig { cooldown_rounds: 0, ..BreakerConfig::default() }),
            ..GuardConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardConfig { admission_factor: Some(0), ..GuardConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn frame_cap_is_clamped_to_the_transport_ceiling() {
        let g =
            GuardPlane::new(GuardConfig { max_frame_bytes: usize::MAX, ..GuardConfig::default() })
                .unwrap();
        assert_eq!(g.config().max_frame_bytes, MAX_FRAME_BYTES);
        assert!(g.frame_len_ok(MAX_FRAME_BYTES));
        assert!(!g.frame_len_ok(MAX_FRAME_BYTES + 1));
    }

    /// A plane with admission disabled, so bucket tests see only the
    /// rate-limit stage.
    fn bucket_plane() -> GuardPlane {
        GuardPlane::new(GuardConfig {
            breaker: Some(strict()),
            rate_limit: Some(RateLimit { burst: 4, per_round: 2 }),
            admission_factor: None,
            ..GuardConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn token_bucket_exhausts_and_refills_at_round_open() {
        let mut g = bucket_plane();
        g.on_round_open(7, &[1]);
        for _ in 0..4 {
            assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::Admit);
        }
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::RateLimited);
        // Refill grants per_round = 2, capped at burst.
        g.on_round_open(7, &[1]);
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::Admit);
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::Admit);
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::RateLimited);
    }

    #[test]
    fn rate_limits_are_per_party_isolated() {
        let mut g = bucket_plane();
        g.on_round_open(7, &[1, 2]);
        for _ in 0..8 {
            let _ = g.admit(7, 1, FrameKind::Control);
        }
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::RateLimited);
        assert_eq!(g.admit(7, 2, FrameKind::Control), FrameVerdict::Admit, "party 2 untouched");
    }

    #[test]
    fn admission_budget_refuses_a_full_round() {
        // factor 2 × cohort 1 = 2 admitted frames per round.
        let mut g = plane(strict());
        g.on_round_open(7, &[1]);
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::Admit);
        assert_eq!(g.admit(7, 2, FrameKind::Control), FrameVerdict::Admit);
        assert_eq!(g.admit(7, 3, FrameKind::Control), FrameVerdict::RoundFull);
        g.on_round_open(7, &[1]);
        assert_eq!(g.admit(7, 3, FrameKind::Control), FrameVerdict::Admit, "budget reset");
    }

    #[test]
    fn breaker_trips_only_at_round_open_and_ejects() {
        let mut g = plane(strict());
        g.on_round_open(7, &[1, 2]);
        g.strike(7, 1);
        g.strike(7, 1);
        // Mid-round: still closed (transitions only fire at opens).
        assert_eq!(g.breaker_state(7, 1), BreakerState::Closed);
        assert_eq!(g.admit(7, 1, FrameKind::Update), FrameVerdict::Admit);
        let out = g.on_round_open(7, &[1, 2]);
        assert_eq!(g.breaker_state(7, 1), BreakerState::Open);
        assert_eq!(out.ejected, vec![1]);
        assert_eq!(out.tripped, 1);
        // Open: updates drop, control passes.
        assert_eq!(g.admit(7, 1, FrameKind::Update), FrameVerdict::BreakerOpen);
        assert_eq!(g.admit(7, 1, FrameKind::Control), FrameVerdict::Admit);
        assert_eq!(g.admit(7, 2, FrameKind::Update), FrameVerdict::Admit, "party 2 unaffected");
    }

    #[test]
    fn breaker_cools_down_half_opens_and_closes_on_a_clean_probe() {
        let mut g = plane(strict());
        g.on_round_open(7, &[1]);
        g.strike(7, 1);
        g.strike(7, 1);
        assert_eq!(g.on_round_open(7, &[1]).ejected, vec![1], "open 1: tripped");
        assert_eq!(g.on_round_open(7, &[1]).ejected, vec![1], "open 2: cooling");
        let probe = g.on_round_open(7, &[1]);
        assert!(probe.ejected.is_empty(), "open 3: half-open probe participates");
        assert_eq!(g.breaker_state(7, 1), BreakerState::HalfOpen);
        let closed = g.on_round_open(7, &[1]);
        assert!(closed.ejected.is_empty());
        assert_eq!(g.breaker_state(7, 1), BreakerState::Closed, "clean probe closes");
    }

    #[test]
    fn dirty_probe_reopens_the_breaker() {
        let mut g = plane(strict());
        g.on_round_open(7, &[1]);
        g.strike(7, 1);
        g.strike(7, 1);
        g.on_round_open(7, &[1]); // open
        g.on_round_open(7, &[1]); // cooling
        g.on_round_open(7, &[1]); // half-open probe
        g.strike(7, 1);
        let out = g.on_round_open(7, &[1]);
        assert_eq!(g.breaker_state(7, 1), BreakerState::Open, "dirty probe re-opens");
        assert_eq!(out.tripped, 1, "a re-trip counts as a new ejection");
        assert_eq!(out.ejected, vec![1]);
    }

    #[test]
    fn sustained_strikes_keep_the_breaker_open() {
        let mut g = plane(strict());
        g.on_round_open(7, &[1]);
        for _ in 0..6 {
            g.strike(7, 1);
            g.strike(7, 1);
            let out = g.on_round_open(7, &[1]);
            assert_eq!(g.breaker_state(7, 1), BreakerState::Open);
            assert_eq!(out.ejected, vec![1], "under sustained attack the party stays ejected");
        }
    }

    #[test]
    fn transition_log_is_a_pure_function_of_the_strike_schedule() {
        let run = || {
            let mut g = plane(strict());
            g.on_round_open(7, &[1, 2]);
            g.strike(7, 1);
            g.strike(7, 1);
            g.on_round_open(7, &[1, 2]);
            g.on_round_open(7, &[1, 2]);
            g.on_round_open(7, &[1, 2]);
            g.on_round_open(7, &[1, 2]);
            g.transitions().to_vec()
        };
        let a = run();
        assert_eq!(a, run(), "same schedule, same transitions");
        assert_eq!(
            a.iter().map(|t| t.to).collect::<Vec<_>>(),
            vec![BreakerState::Open, BreakerState::HalfOpen, BreakerState::Closed]
        );
        assert!(a.iter().all(|t| t.job == 7 && t.party == 1));
    }

    #[test]
    fn disabled_stages_admit_everything() {
        let mut g = GuardPlane::new(GuardConfig {
            rate_limit: None,
            breaker: None,
            admission_factor: None,
            ..GuardConfig::default()
        })
        .unwrap();
        g.on_round_open(7, &[1]);
        for _ in 0..1000 {
            assert_eq!(g.admit(7, 1, FrameKind::Update), FrameVerdict::Admit);
        }
        g.strike(7, 1);
        assert!(g.on_round_open(7, &[1]).ejected.is_empty());
        assert!(g.transitions().is_empty());
    }
}
