//! Elbow-point selection of the cluster count `k` (paper §3.1, Eq. 3 and
//! Figure 2).
//!
//! The number of unique label distributions is unknown a priori (party data
//! is private), so FLIPS scans `k`, averages the Davies-Bouldin index over
//! `T = 20` K-Means restarts per `k` (K-Means is sensitive to centroid
//! initialization), and picks the **first sharp change in the slope** of
//! the `k → DBI` curve: the elbow.
//!
//! Eq. (3) formalizes the elbow via the relative DBI change
//! `|dbi(k) − dbi(k−1)| / dbi(k−1)`; the prose asks for the "(first) sharp
//! change in the slope of the curve". On label-distribution inputs the DBI
//! curve is V-shaped (steep descent to the true archetype count, then a
//! rise as clusters go sparse — exactly the small-k/large-k failure modes
//! §3.1 describes), so the sharp slope change is located by the **maximum
//! second difference** of the curve; degenerate flat curves fall back to
//! the DBI minimum.

use crate::dbi::davies_bouldin_index_flat;
use crate::kmeans::{kmeans_flat, FlatPoints, KMeansConfig};
use crate::ClusteringError;
use flips_ml::rng::{derive_seed, seeded};
use serde::{Deserialize, Serialize};

/// Configuration of the elbow scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElbowConfig {
    /// Smallest candidate `k` (inclusive); must be ≥ 2.
    pub k_min: usize,
    /// Largest candidate `k` (inclusive).
    pub k_max: usize,
    /// K-Means restarts averaged per candidate (paper uses `T = 20`).
    pub restarts: usize,
    /// Minimum second difference that counts as a "sharp" slope change;
    /// flatter curves fall back to the DBI minimum.
    pub flat_tolerance: f64,
    /// Seed for the restart RNG streams.
    pub seed: u64,
}

impl ElbowConfig {
    /// The paper's configuration: scan `2..=k_max`, 20 restarts.
    pub fn new(k_max: usize, seed: u64) -> Self {
        ElbowConfig { k_min: 2, k_max, restarts: 20, flat_tolerance: 0.02, seed }
    }
}

/// The outcome of an elbow scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElbowResult {
    /// The selected cluster count.
    pub k: usize,
    /// `(k, mean DBI)` pairs for every candidate — Figure 2's curve.
    pub curve: Vec<(usize, f64)>,
}

/// Scans candidate cluster counts and returns the elbow `k` plus the DBI
/// curve.
///
/// # Errors
///
/// Propagates K-Means errors; rejects `k_min < 2`, `k_min > k_max`, or a
/// scan exceeding the point count.
pub fn optimal_k(points: &[Vec<f32>], config: ElbowConfig) -> Result<ElbowResult, ClusteringError> {
    if config.k_min < 2 {
        return Err(ClusteringError::InvalidParameter("k_min must be >= 2".into()));
    }
    if config.k_min > config.k_max {
        return Err(ClusteringError::InvalidParameter(format!(
            "k_min {} > k_max {}",
            config.k_min, config.k_max
        )));
    }
    if config.k_max >= points.len() {
        return Err(ClusteringError::InvalidParameter(format!(
            "k_max {} must be < {} points",
            config.k_max,
            points.len()
        )));
    }
    if config.restarts == 0 {
        return Err(ClusteringError::InvalidParameter("restarts must be >= 1".into()));
    }

    // Flatten once; every restart of every candidate k reuses the buffer.
    let flat = FlatPoints::new(points)?;
    let mut curve = Vec::with_capacity(config.k_max - config.k_min + 1);
    for k in config.k_min..=config.k_max {
        let mut total = 0.0f64;
        for t in 0..config.restarts {
            let mut rng = seeded(derive_seed(config.seed, (k * 1000 + t) as u64));
            let clustering = kmeans_flat(&mut rng, &flat, KMeansConfig::new(k))?;
            total += davies_bouldin_index_flat(&flat, &clustering)?;
        }
        curve.push((k, total / config.restarts as f64));
    }

    Ok(ElbowResult { k: pick_elbow(&curve, config.flat_tolerance), curve })
}

/// Locates the sharpest slope change of a DBI curve (the elbow).
///
/// The elbow is the interior `k` maximizing the second difference
/// `(dbi(k+1) − dbi(k)) − (dbi(k) − dbi(k−1))` — large exactly where a
/// steep descent turns into a plateau or a rise. If no second difference
/// exceeds `flat_tolerance` (a flat, elbow-less curve), the first DBI
/// minimum is returned instead.
fn pick_elbow(curve: &[(usize, f64)], flat_tolerance: f64) -> usize {
    let argmin = curve
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|&(k, _)| k)
        .expect("non-empty curve");
    if curve.len() < 3 {
        return argmin;
    }
    let mut best: Option<(usize, f64)> = None;
    for w in curve.windows(3) {
        let (_, a) = w[0];
        let (k, b) = w[1];
        let (_, c) = w[2];
        let second_diff = (c - b) - (b - a);
        // Strictly-greater comparison keeps the *first* sharp change on
        // ties, per the paper's wording.
        if best.is_none_or(|(_, v)| second_diff > v) {
            best = Some((k, second_diff));
        }
    }
    match best {
        Some((k, v)) if v > flat_tolerance => k,
        _ => argmin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_ml::rng::seeded;
    use rand::Rng;

    /// Label-distribution-like data: `archetypes` one-hot distributions
    /// over `labels` labels, with small Dirichlet-ish jitter.
    fn archetype_points(archetypes: usize, labels: usize, per: usize) -> Vec<Vec<f32>> {
        let mut rng = seeded(42);
        let mut points = Vec::new();
        for a in 0..archetypes {
            for _ in 0..per {
                let mut p: Vec<f32> = (0..labels).map(|_| rng.random::<f32>() * 0.05).collect();
                p[a % labels] += 1.0;
                let sum: f32 = p.iter().sum();
                for x in &mut p {
                    *x /= sum;
                }
                points.push(p);
            }
        }
        points
    }

    #[test]
    fn recovers_archetype_count() {
        // 6 archetypes over 10 labels, 15 parties each.
        let points = archetype_points(6, 10, 15);
        let result = optimal_k(&points, ElbowConfig::new(15, 7)).unwrap();
        assert!(
            (5..=7).contains(&result.k),
            "expected elbow near 6, got {} (curve {:?})",
            result.k,
            result.curve
        );
    }

    #[test]
    fn curve_covers_requested_range() {
        let points = archetype_points(4, 8, 10);
        let cfg = ElbowConfig { k_min: 2, k_max: 9, restarts: 5, flat_tolerance: 0.1, seed: 1 };
        let result = optimal_k(&points, cfg).unwrap();
        let ks: Vec<usize> = result.curve.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, (2..=9).collect::<Vec<_>>());
        assert!(result.curve.iter().all(|&(_, dbi)| dbi.is_finite() && dbi >= 0.0));
    }

    #[test]
    fn dbi_at_archetype_count_is_near_minimum() {
        let points = archetype_points(5, 10, 12);
        let cfg = ElbowConfig { k_min: 2, k_max: 12, restarts: 8, flat_tolerance: 0.1, seed: 3 };
        let result = optimal_k(&points, cfg).unwrap();
        let dbi_at = |k: usize| {
            result.curve.iter().find(|&&(kk, _)| kk == k).map(|&(_, d)| d).expect("k in curve")
        };
        // DBI at the true k should be dramatically below DBI at k = 2.
        assert!(dbi_at(5) < dbi_at(2) * 0.7, "curve {:?}", result.curve);
    }

    #[test]
    fn deterministic_in_seed() {
        let points = archetype_points(3, 6, 10);
        let cfg = ElbowConfig { k_min: 2, k_max: 8, restarts: 4, flat_tolerance: 0.1, seed: 5 };
        assert_eq!(optimal_k(&points, cfg).unwrap(), optimal_k(&points, cfg).unwrap());
    }

    #[test]
    fn rejects_bad_configs() {
        let points = archetype_points(3, 6, 4);
        let base = ElbowConfig::new(5, 0);
        assert!(optimal_k(&points, ElbowConfig { k_min: 1, ..base }).is_err());
        assert!(optimal_k(&points, ElbowConfig { k_min: 6, k_max: 5, ..base }).is_err());
        assert!(optimal_k(&points, ElbowConfig { k_max: 500, ..base }).is_err());
        assert!(optimal_k(&points, ElbowConfig { restarts: 0, ..base }).is_err());
    }

    #[test]
    fn pick_elbow_flat_curve_returns_first_k() {
        let curve = vec![(2, 1.0), (3, 1.0), (4, 1.0)];
        assert_eq!(pick_elbow(&curve, 0.1), 2);
    }

    #[test]
    fn pick_elbow_knee_shape() {
        // Steep drop until k = 5, then flat ⇒ elbow at 5.
        let curve =
            vec![(2, 1.00), (3, 0.70), (4, 0.45), (5, 0.20), (6, 0.19), (7, 0.185), (8, 0.18)];
        assert_eq!(pick_elbow(&curve, 0.1), 5);
    }
}
