//! K-Means clustering with k-means++ seeding (paper §3.1).
//!
//! The paper chooses K-Means for its `O(N·k·I·d)` complexity and seeds it
//! with k-means++ (Arthur & Vassilvitskii, SODA'07), noting it scales to
//! millions of parties. This implementation adds empty-cluster repair
//! (re-seeding an empty centroid at the point farthest from its assigned
//! centroid), which matters on the near-discrete label-distribution inputs
//! FLIPS feeds it.
//!
//! # Hot-path layout
//!
//! Points live in a flat row-major buffer ([`FlatPoints`]) with cached
//! squared norms. The Lloyd assignment step uses the expansion
//! `‖x − c‖² = ‖x‖² + ‖c‖² − 2·x·c`, so the `n×k` distance table is one
//! GEMM (`X·Cᵀ`) against `flips-ml`'s blocked kernels plus an argmin
//! sweep — no `Vec<Vec<f32>>` pointer chasing and no per-pair `sqrt`.
//! The final assignment/inertia pass recomputes exact distances for the
//! winning centroids, keeping reported inertia free of expansion
//! cancellation error. The seed implementation is retained in
//! [`reference`] (behind `cfg(test)` / the `reference-impl` feature) as
//! the equivalence baseline.

use crate::{validate_points, ClusteringError};
use flips_ml::matrix::euclidean_distance;
use flips_ml::matrix::gemm::{gemm, Layout};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for one K-Means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tolerance: f32,
}

impl KMeansConfig {
    /// Sensible defaults: 100 iterations, 1e-6 tolerance.
    pub fn new(k: usize) -> Self {
        KMeansConfig { k, max_iters: 100, tolerance: 1e-6 }
    }
}

/// A completed clustering: assignments, centroids and diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster id of every input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids, length `k`.
    pub centroids: Vec<Vec<f32>>,
    /// Within-cluster sum of squared distances (inertia).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Point indices grouped per cluster: `members()[c]` lists the points
    /// assigned to cluster `c`.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }

    /// Number of points in each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.k()];
        for &c in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }
}

/// A point set flattened into one row-major buffer with cached squared
/// norms — the clustering hot-path representation.
///
/// Build once, cluster many times (the elbow scan runs `restarts ×
/// k_max` K-Means passes over the same points).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPoints {
    data: Vec<f32>,
    n: usize,
    dim: usize,
    norms_sq: Vec<f32>,
}

impl FlatPoints {
    /// Flattens a point set, validating shape.
    ///
    /// # Errors
    ///
    /// Rejects empty or ragged input.
    pub fn new(points: &[Vec<f32>]) -> Result<Self, ClusteringError> {
        let dim = validate_points(points)?;
        let n = points.len();
        let mut data = Vec::with_capacity(n * dim);
        for p in points {
            data.extend_from_slice(p);
        }
        let norms_sq = data.chunks_exact(dim).map(|row| row.iter().map(|x| x * x).sum()).collect();
        Ok(FlatPoints { data, n, dim, norms_sq })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Point `i` as a slice.
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Cached squared L2 norm of point `i`.
    pub fn norm_sq(&self, i: usize) -> f32 {
        self.norms_sq[i]
    }
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// # Errors
///
/// Returns an error for empty/ragged input or `k` outside `1..=n`.
pub fn kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    points: &[Vec<f32>],
    config: KMeansConfig,
) -> Result<Clustering, ClusteringError> {
    let flat = FlatPoints::new(points)?;
    kmeans_flat(rng, &flat, config)
}

/// [`kmeans`] over a pre-flattened point set (lets repeated runs — elbow
/// scans, restarts — skip re-flattening).
///
/// # Errors
///
/// Rejects `k` outside `1..=n`.
pub fn kmeans_flat<R: Rng + ?Sized>(
    rng: &mut R,
    points: &FlatPoints,
    config: KMeansConfig,
) -> Result<Clustering, ClusteringError> {
    let n = points.len();
    let dim = points.dim();
    let k = config.k;
    if k == 0 || k > n {
        return Err(ClusteringError::InvalidParameter(format!("k = {k} must be in 1..={n}")));
    }

    let mut centroids = plus_plus_seed(rng, points, k);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;

    // Reused per-iteration buffers: the Lloyd loop allocates nothing.
    let mut cnorms_sq = vec![0.0f32; k];
    let mut dots = vec![0.0f32; n * k];
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];

    for iter in 0..config.max_iters.max(1) {
        iterations = iter + 1;

        // Assignment step: one GEMM (X·Cᵀ) plus an argmin sweep over
        // ‖x‖² + ‖c‖² − 2·x·c.
        for (c, slot) in cnorms_sq.iter_mut().enumerate() {
            let row = &centroids[c * dim..(c + 1) * dim];
            *slot = row.iter().map(|x| x * x).sum();
        }
        gemm(Layout::Nt, n, dim, k, points.as_slice(), dim, &centroids, dim, &mut dots);
        for (i, slot) in assignments.iter_mut().enumerate() {
            let xn = points.norm_sq(i);
            let row = &dots[i * k..(i + 1) * k];
            let mut best = (0usize, f32::INFINITY);
            for (c, (&dot, &cn)) in row.iter().zip(&cnorms_sq).enumerate() {
                let d2 = xn + cn - 2.0 * dot;
                if d2 < best.1 {
                    best = (c, d2);
                }
            }
            *slot = best.0;
        }

        // Update step (f64 accumulation, as the seed implementation).
        sums.fill(0.0);
        counts.fill(0);
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let p = points.point(i);
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *s += v as f64;
            }
        }
        let mut movement = 0.0f32;
        for c in 0..k {
            if counts[c] == 0 {
                // Empty-cluster repair: re-seed at the point farthest from
                // its current centroid (exact distances — this is rare).
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let di = euclidean_distance(
                            points.point(i),
                            &centroids[assignments[i] * dim..(assignments[i] + 1) * dim],
                        );
                        let dj = euclidean_distance(
                            points.point(j),
                            &centroids[assignments[j] * dim..(assignments[j] + 1) * dim],
                        );
                        di.partial_cmp(&dj).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty points");
                movement +=
                    euclidean_distance(&centroids[c * dim..(c + 1) * dim], points.point(far));
                centroids[c * dim..(c + 1) * dim].copy_from_slice(points.point(far));
                continue;
            }
            // Divide (not multiply-by-reciprocal): bit-identical to the
            // reference implementation's `s / count` rounding.
            let count = counts[c] as f64;
            let mut delta_sq = 0.0f32;
            for (slot, &s) in centroids[c * dim..(c + 1) * dim].iter_mut().zip(&sums[c * dim..]) {
                let new = (s / count) as f32;
                delta_sq += (*slot - new) * (*slot - new);
                *slot = new;
            }
            movement += delta_sq.sqrt();
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids, plus inertia —
    // exact distances so cancellation error from the expansion never
    // reaches reported results.
    let mut inertia = 0.0f64;
    for (i, slot) in assignments.iter_mut().enumerate() {
        let (c, d) = nearest_flat(points.point(i), &centroids, dim);
        *slot = c;
        inertia += (d as f64) * (d as f64);
    }

    let centroids = centroids.chunks_exact(dim).map(<[f32]>::to_vec).collect();
    Ok(Clustering { assignments, centroids, inertia, iterations })
}

/// k-means++ seeding: first centroid uniform, each next centroid sampled
/// with probability proportional to squared distance from the nearest
/// chosen centroid. Consumes the RNG stream exactly like the seed
/// implementation, so fixed seeds reproduce historic runs.
fn plus_plus_seed<R: Rng + ?Sized>(rng: &mut R, points: &FlatPoints, k: usize) -> Vec<f32> {
    let n = points.len();
    let dim = points.dim();
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    centroids.extend_from_slice(points.point(rng.random_range(0..n)));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| {
            let d = euclidean_distance(points.point(i), &centroids[..dim]) as f64;
            d * d
        })
        .collect();
    while centroids.len() < k * dim {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; any point works.
            rng.random_range(0..n)
        } else {
            let mut t = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                t -= w;
                if t <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.extend_from_slice(points.point(next));
        let newest = &centroids[centroids.len() - dim..];
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = euclidean_distance(points.point(i), newest) as f64;
            *slot = slot.min(d * d);
        }
    }
    centroids
}

/// Index and exact distance of the nearest centroid (flat layout).
fn nearest_flat(point: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
        let d = euclidean_distance(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// The seed's `Vec<Vec<f32>>` implementation, retained as the behavioral
/// baseline for equivalence tests and benchmarks.
#[cfg(any(test, feature = "reference-impl"))]
pub mod reference {
    use super::{Clustering, KMeansConfig};
    use crate::{validate_points, ClusteringError};
    use flips_ml::matrix::euclidean_distance;
    use rand::Rng;

    /// The seed implementation of [`super::kmeans`].
    ///
    /// # Errors
    ///
    /// As [`super::kmeans`].
    pub fn kmeans<R: Rng + ?Sized>(
        rng: &mut R,
        points: &[Vec<f32>],
        config: KMeansConfig,
    ) -> Result<Clustering, ClusteringError> {
        let dim = validate_points(points)?;
        let n = points.len();
        if config.k == 0 || config.k > n {
            return Err(ClusteringError::InvalidParameter(format!(
                "k = {} must be in 1..={n}",
                config.k
            )));
        }

        let mut centroids = plus_plus_seed(rng, points, config.k);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for iter in 0..config.max_iters.max(1) {
            iterations = iter + 1;
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            let mut sums = vec![vec![0.0f64; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (p, &c) in points.iter().zip(&assignments) {
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(p) {
                    *s += v as f64;
                }
            }
            let mut movement = 0.0f32;
            for c in 0..config.k {
                if counts[c] == 0 {
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(i, p), (j, q)| {
                            let di = euclidean_distance(p, &centroids[assignments[*i]]);
                            let dj = euclidean_distance(q, &centroids[assignments[*j]]);
                            di.partial_cmp(&dj).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty points");
                    movement += euclidean_distance(&centroids[c], &points[far]);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let new: Vec<f32> =
                    sums[c].iter().map(|&s| (s / counts[c] as f64) as f32).collect();
                movement += euclidean_distance(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement <= config.tolerance {
                break;
            }
        }

        let mut inertia = 0.0f64;
        for (i, p) in points.iter().enumerate() {
            let (c, d) = nearest(p, &centroids);
            assignments[i] = c;
            inertia += (d as f64) * (d as f64);
        }

        Ok(Clustering { assignments, centroids, inertia, iterations })
    }

    fn plus_plus_seed<R: Rng + ?Sized>(
        rng: &mut R,
        points: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<f32>> {
        let n = points.len();
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
        centroids.push(points[rng.random_range(0..n)].clone());
        let mut d2: Vec<f64> = points
            .iter()
            .map(|p| {
                let d = euclidean_distance(p, &centroids[0]) as f64;
                d * d
            })
            .collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut t = rng.random::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    t -= w;
                    if t <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.push(points[next].clone());
            for (i, p) in points.iter().enumerate() {
                let d = euclidean_distance(p, centroids.last().expect("non-empty")) as f64;
                d2[i] = d2[i].min(d * d);
            }
        }
        centroids
    }

    /// Index and distance of the nearest centroid.
    pub(crate) fn nearest(point: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        for (c, centroid) in centroids.iter().enumerate() {
            let d = euclidean_distance(point, centroid);
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_ml::rng::seeded;

    /// Three tight, well-separated blobs in 2-D.
    fn three_blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = seeded(1);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..30 {
                points.push(vec![
                    c[0] + flips_ml::rng::normal(&mut rng, 0.0, 0.3) as f32,
                    c[1] + flips_ml::rng::normal(&mut rng, 0.0, 0.3) as f32,
                ]);
                truth.push(label);
            }
        }
        (points, truth)
    }

    /// Fraction of point pairs on which two labelings agree (Rand index).
    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, truth) = three_blobs();
        let mut rng = seeded(2);
        let result = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        assert!(rand_index(&result.assignments, &truth) > 0.99);
        assert_eq!(result.sizes().iter().sum::<usize>(), points.len());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (points, _) = three_blobs();
        let mut inertias = Vec::new();
        for k in 1..=5 {
            let mut rng = seeded(3);
            inertias.push(kmeans(&mut rng, &points, KMeansConfig::new(k)).unwrap().inertia);
        }
        for w in inertias.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "inertia must be non-increasing: {inertias:?}");
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32 * 3.0, -(i as f32)]).collect();
        let mut rng = seeded(4);
        let result = kmeans(&mut rng, &points, KMeansConfig::new(6)).unwrap();
        assert!(result.inertia < 1e-9);
        let mut sizes = result.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1; 6]);
    }

    #[test]
    fn handles_duplicate_points() {
        let points = vec![vec![1.0, 1.0]; 10];
        let mut rng = seeded(5);
        let result = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        assert_eq!(result.assignments.len(), 10);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn rejects_invalid_k() {
        let points = vec![vec![0.0], vec![1.0]];
        let mut rng = seeded(6);
        assert!(kmeans(&mut rng, &points, KMeansConfig::new(0)).is_err());
        assert!(kmeans(&mut rng, &points, KMeansConfig::new(3)).is_err());
    }

    #[test]
    fn rejects_empty_and_ragged_input() {
        let mut rng = seeded(7);
        let empty: Vec<Vec<f32>> = Vec::new();
        assert!(kmeans(&mut rng, &empty, KMeansConfig::new(1)).is_err());
        let ragged = vec![vec![0.0], vec![0.0, 1.0]];
        assert!(kmeans(&mut rng, &ragged, KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn is_seed_deterministic() {
        let (points, _) = three_blobs();
        let a = kmeans(&mut seeded(8), &points, KMeansConfig::new(3)).unwrap();
        let b = kmeans(&mut seeded(8), &points, KMeansConfig::new(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn members_partition_points() {
        let (points, _) = three_blobs();
        let mut rng = seeded(9);
        let result = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        let members = result.members();
        let mut all: Vec<usize> = members.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..points.len()).collect::<Vec<_>>());
    }

    #[test]
    fn assignments_match_nearest_centroid() {
        let (points, _) = three_blobs();
        let mut rng = seeded(10);
        let result = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        for (p, &c) in points.iter().zip(&result.assignments) {
            let (nearest_c, _) = reference::nearest(p, &result.centroids);
            assert_eq!(c, nearest_c);
        }
    }

    #[test]
    fn flat_and_reference_agree_on_blobs() {
        let (points, _) = three_blobs();
        for seed in 0..8 {
            let flat = kmeans(&mut seeded(seed), &points, KMeansConfig::new(3)).unwrap();
            let refr = reference::kmeans(&mut seeded(seed), &points, KMeansConfig::new(3)).unwrap();
            assert_eq!(flat.assignments, refr.assignments, "seed {seed}");
            assert!((flat.inertia - refr.inertia).abs() < 1e-3);
        }
    }

    #[test]
    fn flat_points_expose_layout() {
        let points = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let flat = FlatPoints::new(&points).unwrap();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.point(1), &[3.0, 4.0]);
        assert_eq!(flat.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!((flat.norm_sq(1) - 25.0).abs() < 1e-6);
    }
}
