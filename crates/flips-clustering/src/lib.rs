//! # flips-clustering — the clustering substrate
//!
//! FLIPS's core mechanism (§3.1 of the paper) is grouping parties whose
//! label distributions are similar. The subset-enumeration problem it
//! formalizes (Eq. 1) is NP-complete, so the paper — and this crate —
//! solves it heuristically:
//!
//! - [`mod@kmeans`] — Lloyd's algorithm with **k-means++** seeding and
//!   empty-cluster repair;
//! - [`dbi`] — the **Davies-Bouldin index**, the purity metric used to pick
//!   the number of clusters;
//! - [`elbow`] — the elbow-point criterion of Eq. (3): run K-Means for
//!   every candidate `k`, average DBI over `T` restarts, pick the first
//!   sharp slope change (Figure 2);
//! - [`hierarchical`] — average-linkage agglomerative clustering over a
//!   similarity matrix, the substrate of the GradClus baseline (Fraboni et
//!   al., ICML'21).
//!
//! # Example
//!
//! Two well-separated blobs cluster cleanly at `k = 2`:
//!
//! ```
//! use flips_clustering::kmeans::{kmeans, KMeansConfig};
//! use flips_ml::rng::seeded;
//!
//! let points: Vec<Vec<f32>> =
//!     vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
//! let clustering = kmeans(&mut seeded(7), &points, KMeansConfig::new(2)).unwrap();
//! assert_eq!(clustering.assignments[0], clustering.assignments[1]);
//! assert_eq!(clustering.assignments[2], clustering.assignments[3]);
//! assert_ne!(clustering.assignments[0], clustering.assignments[2]);
//! ```

pub mod dbi;
pub mod elbow;
pub mod hierarchical;
pub mod kmeans;

pub use dbi::{davies_bouldin_index, davies_bouldin_index_flat};
pub use elbow::{optimal_k, ElbowConfig};
pub use hierarchical::{hierarchical_clusters, Linkage};
pub use kmeans::{kmeans, kmeans_flat, Clustering, FlatPoints, KMeansConfig};

/// Errors produced by the clustering substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusteringError {
    /// A parameter was outside its valid domain (k = 0, k > n, ...).
    InvalidParameter(String),
    /// The input points were empty or ragged.
    BadInput(String),
}

impl std::fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusteringError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            ClusteringError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for ClusteringError {}

/// Validates a point set: non-empty, equal dimensions.
pub(crate) fn validate_points(points: &[Vec<f32>]) -> Result<usize, ClusteringError> {
    let first = points.first().ok_or_else(|| ClusteringError::BadInput("no points".into()))?;
    let dim = first.len();
    if dim == 0 {
        return Err(ClusteringError::BadInput("zero-dimensional points".into()));
    }
    if points.iter().any(|p| p.len() != dim) {
        return Err(ClusteringError::BadInput("ragged point dimensions".into()));
    }
    Ok(dim)
}
