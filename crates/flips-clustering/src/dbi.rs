//! Davies-Bouldin index (Davies & Bouldin, TPAMI 1979).
//!
//! The ratio of within-cluster scatter to between-cluster separation,
//! averaged over each cluster's worst pairing — lower is better. The paper
//! uses DBI as its cluster-purity metric when scanning `k` (§3.1, Eq. 3).

use crate::kmeans::{Clustering, FlatPoints};
use crate::ClusteringError;
use flips_ml::matrix::euclidean_distance;

/// Computes the Davies-Bouldin index of a clustering over its points.
///
/// `DBI = (1/k) Σ_i max_{j≠i} (S_i + S_j) / d(c_i, c_j)` where `S_i` is the
/// mean distance of cluster `i`'s members to its centroid. Singleton and
/// empty clusters contribute zero scatter. Returns `0.0` for `k < 2`
/// (no pairs to compare).
///
/// # Errors
///
/// Propagates input-validation errors; also rejects assignment/point
/// length mismatches.
pub fn davies_bouldin_index(
    points: &[Vec<f32>],
    clustering: &Clustering,
) -> Result<f64, ClusteringError> {
    let flat = FlatPoints::new(points)?;
    davies_bouldin_index_flat(&flat, clustering)
}

/// [`davies_bouldin_index`] over a pre-flattened point set — the form the
/// elbow scan drives, re-scoring the same points `restarts × k` times.
///
/// # Errors
///
/// Rejects assignment/point length mismatches.
pub fn davies_bouldin_index_flat(
    points: &FlatPoints,
    clustering: &Clustering,
) -> Result<f64, ClusteringError> {
    if clustering.assignments.len() != points.len() {
        return Err(ClusteringError::BadInput(format!(
            "{} assignments for {} points",
            clustering.assignments.len(),
            points.len()
        )));
    }
    let k = clustering.k();
    if k < 2 {
        return Ok(0.0);
    }

    // Per-cluster mean scatter S_i (flat row-major sweep).
    let mut scatter = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    for (i, &c) in clustering.assignments.iter().enumerate() {
        scatter[c] += euclidean_distance(points.point(i), &clustering.centroids[c]) as f64;
        counts[c] += 1;
    }
    for (s, &c) in scatter.iter_mut().zip(&counts) {
        if c > 0 {
            *s /= c as f64;
        }
    }

    let mut total = 0.0f64;
    let mut populated = 0usize;
    for i in 0..k {
        if counts[i] == 0 {
            continue;
        }
        populated += 1;
        let mut worst = 0.0f64;
        for j in 0..k {
            if i == j || counts[j] == 0 {
                continue;
            }
            let sep = euclidean_distance(&clustering.centroids[i], &clustering.centroids[j]) as f64;
            let ratio = if sep > 0.0 { (scatter[i] + scatter[j]) / sep } else { f64::INFINITY };
            worst = worst.max(ratio);
        }
        total += worst;
    }
    if populated == 0 {
        return Ok(0.0);
    }
    Ok(total / populated as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};
    use flips_ml::rng::seeded;

    fn blobs(spread: f64) -> Vec<Vec<f32>> {
        let mut rng = seeded(1);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut points = Vec::new();
        for c in centers {
            for _ in 0..20 {
                points.push(vec![
                    c[0] + flips_ml::rng::normal(&mut rng, 0.0, spread) as f32,
                    c[1] + flips_ml::rng::normal(&mut rng, 0.0, spread) as f32,
                ]);
            }
        }
        points
    }

    #[test]
    fn tighter_clusters_score_lower() {
        let tight = blobs(0.2);
        let loose = blobs(2.5);
        let mut rng = seeded(2);
        let ct = kmeans(&mut rng, &tight, KMeansConfig::new(3)).unwrap();
        let cl = kmeans(&mut rng, &loose, KMeansConfig::new(3)).unwrap();
        let dbi_tight = davies_bouldin_index(&tight, &ct).unwrap();
        let dbi_loose = davies_bouldin_index(&loose, &cl).unwrap();
        assert!(dbi_tight < dbi_loose, "tight {dbi_tight} should beat loose {dbi_loose}");
    }

    #[test]
    fn correct_k_scores_lower_than_wrong_k() {
        let points = blobs(0.3);
        let mut rng = seeded(3);
        let right = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        let wrong = kmeans(&mut rng, &points, KMeansConfig::new(2)).unwrap();
        let dbi_right = davies_bouldin_index(&points, &right).unwrap();
        let dbi_wrong = davies_bouldin_index(&points, &wrong).unwrap();
        assert!(dbi_right < dbi_wrong);
    }

    #[test]
    fn single_cluster_scores_zero() {
        let points = blobs(0.3);
        let mut rng = seeded(4);
        let c = kmeans(&mut rng, &points, KMeansConfig::new(1)).unwrap();
        assert_eq!(davies_bouldin_index(&points, &c).unwrap(), 0.0);
    }

    #[test]
    fn perfectly_separated_singletons_score_zero_scatter() {
        // k = n: every cluster is a singleton, scatter 0 ⇒ DBI 0.
        let points: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 5.0]).collect();
        let mut rng = seeded(5);
        let c = kmeans(&mut rng, &points, KMeansConfig::new(4)).unwrap();
        assert!(davies_bouldin_index(&points, &c).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_assignments() {
        let points = blobs(0.3);
        let mut rng = seeded(6);
        let mut c = kmeans(&mut rng, &points, KMeansConfig::new(3)).unwrap();
        c.assignments.pop();
        assert!(davies_bouldin_index(&points, &c).is_err());
    }
}
