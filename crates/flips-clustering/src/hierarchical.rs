//! Agglomerative hierarchical clustering over a distance matrix.
//!
//! The GradClus baseline (Fraboni et al., ICML'21 — "Clustered Sampling")
//! builds a similarity matrix across party gradients and cuts a hierarchy
//! into `S(r)` clusters, then samples one party per cluster (paper §4.1).
//! This module provides the substrate: bottom-up merging under a choice of
//! linkage until the requested number of clusters remains.

use crate::kmeans::FlatPoints;
use crate::ClusteringError;
use flips_ml::matrix::gemm::{gemm, Layout};
use serde::{Deserialize, Serialize};

/// Inter-cluster distance definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Mean pairwise distance between members (UPGMA) — GradClus's choice.
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// Cuts an agglomerative hierarchy over `points` into `num_clusters`
/// groups using Euclidean distance.
///
/// Returns the cluster id of every point (ids are `0..num_clusters`,
/// densely re-numbered).
///
/// # Errors
///
/// Rejects empty/ragged input and `num_clusters` outside `1..=n`.
pub fn hierarchical_clusters(
    points: &[Vec<f32>],
    num_clusters: usize,
    linkage: Linkage,
) -> Result<Vec<usize>, ClusteringError> {
    let matrix = pairwise_euclidean(points)?;
    hierarchical_from_distances(&matrix, num_clusters, linkage)
}

/// Pairwise Euclidean distance matrix (`n × n`, symmetric, zero diagonal).
///
/// Computed from a flat point buffer via the norm expansion
/// `‖x − y‖² = ‖x‖² + ‖y‖² − 2·x·y`: the full Gram matrix `X·Xᵀ` is one
/// blocked GEMM, turning the `O(n²·d)` pair loop into an array sweep.
pub fn pairwise_euclidean(points: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ClusteringError> {
    let flat = FlatPoints::new(points)?;
    let n = flat.len();
    let gram = gram_matrix(&flat);
    let mut m = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Cancellation in the expansion can dip below zero for
            // near-identical points; clamp before the square root.
            let d2 = (flat.norm_sq(i) + flat.norm_sq(j) - 2.0 * gram[i * n + j]).max(0.0);
            let d = d2.sqrt();
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    Ok(m)
}

/// Pairwise cosine-*distance* matrix (`1 − cos`), the similarity GradClus
/// uses on gradients. Zero vectors are treated as orthogonal to everything.
///
/// The dot products come from one Gram-matrix GEMM over the flat buffer.
pub fn pairwise_cosine_distance(points: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ClusteringError> {
    let flat = FlatPoints::new(points)?;
    let n = flat.len();
    let gram = gram_matrix(&flat);
    let norms: Vec<f32> = (0..n).map(|i| flat.norm_sq(i).sqrt()).collect();
    let mut m = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let denom = norms[i] * norms[j];
            let cos = if denom > 0.0 { gram[i * n + j] / denom } else { 0.0 };
            let d = 1.0 - cos.clamp(-1.0, 1.0);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    Ok(m)
}

/// `X·Xᵀ` over the flat point buffer.
fn gram_matrix(flat: &FlatPoints) -> Vec<f32> {
    let n = flat.len();
    let mut gram = vec![0.0f32; n * n];
    gemm(
        Layout::Nt,
        n,
        flat.dim(),
        n,
        flat.as_slice(),
        flat.dim(),
        flat.as_slice(),
        flat.dim(),
        &mut gram,
    );
    gram
}

/// Agglomerative clustering directly from a precomputed distance matrix.
///
/// # Errors
///
/// Rejects non-square matrices and out-of-range `num_clusters`.
pub fn hierarchical_from_distances(
    distances: &[Vec<f32>],
    num_clusters: usize,
    linkage: Linkage,
) -> Result<Vec<usize>, ClusteringError> {
    let n = distances.len();
    if n == 0 {
        return Err(ClusteringError::BadInput("empty distance matrix".into()));
    }
    if distances.iter().any(|row| row.len() != n) {
        return Err(ClusteringError::BadInput("distance matrix must be square".into()));
    }
    if num_clusters == 0 || num_clusters > n {
        return Err(ClusteringError::InvalidParameter(format!(
            "num_clusters = {num_clusters} must be in 1..={n}"
        )));
    }

    // active[c] = Some(member indices) while cluster c is alive.
    let mut active: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut alive = n;

    while alive > num_clusters {
        // Find the closest pair of live clusters under the linkage.
        let mut best: Option<(usize, usize, f32)> = None;
        let live: Vec<usize> = (0..n).filter(|&c| active[c].is_some()).collect();
        for (ai, &a) in live.iter().enumerate() {
            for &b in &live[ai + 1..] {
                let d = cluster_distance(
                    distances,
                    active[a].as_ref().expect("live"),
                    active[b].as_ref().expect("live"),
                    linkage,
                );
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, _) = best.expect("at least two live clusters");
        let mut merged = active[a].take().expect("live");
        merged.extend(active[b].take().expect("live"));
        active[a] = Some(merged);
        alive -= 1;
    }

    // Densely renumber the survivors.
    let mut labels = vec![0usize; n];
    for (next, slot) in active.iter().flatten().enumerate() {
        for &member in slot {
            labels[member] = next;
        }
    }
    Ok(labels)
}

fn cluster_distance(distances: &[Vec<f32>], a: &[usize], b: &[usize], linkage: Linkage) -> f32 {
    match linkage {
        Linkage::Average => {
            let mut total = 0.0f64;
            for &i in a {
                for &j in b {
                    total += distances[i][j] as f64;
                }
            }
            (total / (a.len() * b.len()) as f64) as f32
        }
        Linkage::Single => {
            let mut best = f32::INFINITY;
            for &i in a {
                for &j in b {
                    best = best.min(distances[i][j]);
                }
            }
            best
        }
        Linkage::Complete => {
            let mut worst = 0.0f32;
            for &i in a {
                for &j in b {
                    worst = worst.max(distances[i][j]);
                }
            }
            worst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_ml::rng::seeded;

    fn two_blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = seeded(1);
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for (center, label) in [(-5.0f32, 0usize), (5.0, 1)] {
            for _ in 0..12 {
                points.push(vec![center + flips_ml::rng::normal(&mut rng, 0.0, 0.4) as f32]);
                truth.push(label);
            }
        }
        (points, truth)
    }

    #[test]
    fn separates_two_blobs_under_every_linkage() {
        let (points, truth) = two_blobs();
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let labels = hierarchical_clusters(&points, 2, linkage).unwrap();
            // Consistent partition: all of blob 0 together, all of blob 1
            // together.
            for (l, t) in labels.iter().zip(&truth) {
                assert_eq!(*l == labels[0], *t == truth[0], "linkage {linkage:?} split a blob");
            }
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let (points, _) = two_blobs();
        let labels = hierarchical_clusters(&points, points.len(), Linkage::Average).unwrap();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), points.len());
    }

    #[test]
    fn k_one_merges_everything() {
        let (points, _) = two_blobs();
        let labels = hierarchical_clusters(&points, 1, Linkage::Complete).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_are_densely_numbered() {
        let (points, _) = two_blobs();
        let labels = hierarchical_clusters(&points, 5, Linkage::Average).unwrap();
        let max = *labels.iter().max().unwrap();
        for expect in 0..=max {
            assert!(labels.contains(&expect), "label {expect} missing");
        }
        assert_eq!(max, 4);
    }

    #[test]
    fn cosine_distance_matrix_properties() {
        let points = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 0.0], vec![-1.0, 0.0]];
        let m = pairwise_cosine_distance(&points).unwrap();
        assert!((m[0][2] - 0.0).abs() < 1e-6, "parallel vectors distance 0");
        assert!((m[0][1] - 1.0).abs() < 1e-6, "orthogonal vectors distance 1");
        assert!((m[0][3] - 2.0).abs() < 1e-6, "opposite vectors distance 2");
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
    }

    #[test]
    fn from_distances_respects_matrix_not_geometry() {
        // A crafted matrix where 0-2 are close and 1 is far from both.
        let d = vec![vec![0.0, 9.0, 1.0], vec![9.0, 0.0, 8.0], vec![1.0, 8.0, 0.0]];
        let labels = hierarchical_from_distances(&d, 2, Linkage::Average).unwrap();
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let (points, _) = two_blobs();
        assert!(hierarchical_clusters(&points, 0, Linkage::Average).is_err());
        assert!(hierarchical_clusters(&points, points.len() + 1, Linkage::Average).is_err());
        let empty: Vec<Vec<f32>> = Vec::new();
        assert!(hierarchical_clusters(&empty, 1, Linkage::Average).is_err());
        let ragged = vec![vec![0.0], vec![0.0, 1.0]];
        assert!(hierarchical_clusters(&ragged, 1, Linkage::Average).is_err());
        let nonsquare = vec![vec![0.0, 1.0]];
        assert!(hierarchical_from_distances(&nonsquare, 1, Linkage::Average).is_err());
    }
}
