//! Property tests: the flat-buffer clustering hot path is behaviorally
//! equivalent to the seed (`Vec<Vec<f32>>`) implementation.

use flips_clustering::kmeans::reference;
use flips_clustering::{kmeans, FlatPoints, KMeansConfig};
use flips_ml::matrix::euclidean_distance;
use flips_ml::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

/// Gaussian blobs with centers far apart relative to their spread, so
/// nearest-centroid decisions never ride on float rounding.
fn blobs(seed: u64, archetypes: usize, dim: usize, per: usize, spread: f64) -> Vec<Vec<f32>> {
    let mut rng = seeded(seed);
    let mut centers = Vec::new();
    for a in 0..archetypes {
        let mut c = vec![0.0f32; dim];
        c[a % dim] = 40.0 + 10.0 * (a / dim) as f32;
        centers.push(c);
    }
    let mut points = Vec::new();
    for c in &centers {
        for _ in 0..per {
            points.push(
                c.iter()
                    .map(|&x| x + flips_ml::rng::normal(&mut rng, 0.0, spread) as f32)
                    .collect(),
            );
        }
    }
    points
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_kmeans_assignments_match_seed_implementation(
        seed in 0u64..10_000,
        archetypes in 2usize..6,
        dim in 2usize..10,
        per in 3usize..12,
    ) {
        let points = blobs(seed, archetypes, dim, per, 0.6);
        let k = archetypes.min(points.len());
        let flat = kmeans(&mut seeded(seed ^ 0xF1A7), &points, KMeansConfig::new(k)).unwrap();
        let refr =
            reference::kmeans(&mut seeded(seed ^ 0xF1A7), &points, KMeansConfig::new(k)).unwrap();
        // Identical RNG stream + well-separated data ⇒ identical
        // trajectories: assignments must agree exactly.
        prop_assert_eq!(&flat.assignments, &refr.assignments);
        prop_assert_eq!(flat.iterations, refr.iterations);
        prop_assert!(
            (flat.inertia - refr.inertia).abs() <= 1e-3 * (1.0 + refr.inertia),
            "inertia {} vs {}", flat.inertia, refr.inertia
        );
        for (a, b) in flat.centroids.iter().zip(&refr.centroids) {
            prop_assert!(euclidean_distance(a, b) < 1e-3);
        }
    }

    #[test]
    fn flat_kmeans_is_deterministic_and_valid(
        seed in 0u64..10_000,
        n in 4usize..40,
        dim in 1usize..8,
        k in 1usize..5,
    ) {
        // Arbitrary (non-separated) data: structural invariants and
        // determinism must hold even when cluster boundaries are noisy.
        let mut rng = seeded(seed);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f32>() * 10.0 - 5.0).collect())
            .collect();
        let k = k.min(n);
        let a = kmeans(&mut seeded(seed), &points, KMeansConfig::new(k)).unwrap();
        let b = kmeans(&mut seeded(seed), &points, KMeansConfig::new(k)).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.assignments.len(), n);
        prop_assert!(a.assignments.iter().all(|&c| c < k));
        prop_assert_eq!(a.sizes().iter().sum::<usize>(), n);
        prop_assert!(a.inertia >= 0.0);
    }

    #[test]
    fn pairwise_matrices_match_direct_computation(
        seed in 0u64..5_000,
        n in 2usize..20,
        dim in 1usize..10,
    ) {
        use flips_clustering::hierarchical::{pairwise_cosine_distance, pairwise_euclidean};
        use flips_ml::matrix::{dot, l2_norm};

        let mut rng = seeded(seed);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f32>() * 4.0 - 2.0).collect())
            .collect();

        let eu = pairwise_euclidean(&points).unwrap();
        let co = pairwise_cosine_distance(&points).unwrap();
        for i in 0..n {
            prop_assert_eq!(eu[i][i], 0.0);
            prop_assert_eq!(co[i][i], 0.0);
            for j in 0..n {
                prop_assert_eq!(eu[i][j], eu[j][i]);
                prop_assert_eq!(co[i][j], co[j][i]);
                let direct = euclidean_distance(&points[i], &points[j]);
                prop_assert!(
                    (eu[i][j] - direct).abs() <= 1e-4 * (1.0 + direct),
                    "euclidean mismatch at ({}, {}): {} vs {}", i, j, eu[i][j], direct
                );
                let denom = l2_norm(&points[i]) * l2_norm(&points[j]);
                let direct_cos = if denom > 0.0 {
                    1.0 - (dot(&points[i], &points[j]) / denom).clamp(-1.0, 1.0)
                } else {
                    1.0
                };
                if i != j {
                    prop_assert!(
                        (co[i][j] - direct_cos).abs() <= 1e-4,
                        "cosine mismatch at ({}, {}): {} vs {}", i, j, co[i][j], direct_cos
                    );
                }
            }
        }
    }

    #[test]
    fn flat_points_round_trip(
        seed in 0u64..1_000,
        n in 1usize..30,
        dim in 1usize..12,
    ) {
        let mut rng = seeded(seed);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f32>()).collect())
            .collect();
        let flat = FlatPoints::new(&points).unwrap();
        prop_assert_eq!(flat.len(), n);
        prop_assert_eq!(flat.dim(), dim);
        for (i, p) in points.iter().enumerate() {
            prop_assert_eq!(flat.point(i), p.as_slice());
            let norm: f32 = p.iter().map(|x| x * x).sum();
            prop_assert!((flat.norm_sq(i) - norm).abs() <= 1e-5 * (1.0 + norm));
        }
    }
}
