//! Regenerates the paper's Tables 1–24.
//!
//! ```text
//! cargo run --release -p flips-bench --bin tables -- --table 1
//! cargo run --release -p flips-bench --bin tables -- --table 1 --table 2
//! cargo run --release -p flips-bench --bin tables -- --all
//! cargo run --release -p flips-bench --bin tables -- --table 1 --full
//! ```
//!
//! Without `--full`, a scaled-down grid runs (60 parties, shorter round
//! budgets, 2 seeds) that preserves the paper's qualitative shape on a
//! laptop. `--full` uses the paper's scale (100–200 parties, 200–400
//! rounds, 6 seeds) and takes hours.
//!
//! Tables come in (rounds-to-target, peak-accuracy) pairs over the same
//! runs, so requesting both numbers of a pair costs one sweep.

use flips_bench::{
    dataset, run_cell, table_layout, Cell, CellResult, Scale, NO_STRAGGLER_COLUMNS,
    STRAGGLER_COLUMNS, TABLE_ROWS,
};
use flips_core::prelude::*;
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!("usage: tables [--table N]... [--all] [--full]");
    eprintln!("  N in 1..=24 (paper numbering; see DESIGN.md experiment index)");
    std::process::exit(2);
}

fn main() {
    let mut tables: Vec<usize> = Vec::new();
    let mut scale = Scale::Fast;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" => {
                let n = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                if table_layout(n).is_none() {
                    usage();
                }
                tables.push(n);
            }
            "--all" => tables.extend(1..=24),
            "--full" => scale = Scale::Full,
            _ => usage(),
        }
    }
    if tables.is_empty() {
        usage();
    }
    tables.sort_unstable();
    tables.dedup();

    // Group requested tables by (algorithm index, dataset) so each sweep
    // is executed once and serves both metrics.
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for &n in &tables {
        let idx = n - 1;
        groups.entry((idx / 8, (idx % 8) / 2)).or_default().push(n);
    }

    for ((algo_idx, dataset_idx), table_nums) in groups {
        let algorithm = FlAlgorithm::paper_algorithms()[algo_idx];
        let sweep = run_sweep(algorithm, dataset_idx, scale);
        for n in table_nums {
            let (_, _, metric) = table_layout(n).expect("validated");
            print_table(n, algorithm, dataset_idx, metric, scale, &sweep);
        }
    }
}

type Sweep = BTreeMap<(usize, usize, String), CellResult>;

/// Runs the full grid for one (algorithm, dataset): 4 rows × (5 + 3 + 3)
/// selector columns.
fn run_sweep(algorithm: FlAlgorithm, dataset_idx: usize, scale: Scale) -> Sweep {
    let mut sweep = Sweep::new();
    for (row, &(alpha, participation)) in TABLE_ROWS.iter().enumerate() {
        let blocks: [(usize, &[SelectorKind]); 3] =
            [(0, &NO_STRAGGLER_COLUMNS), (1, &STRAGGLER_COLUMNS), (2, &STRAGGLER_COLUMNS)];
        for (block, selectors) in blocks {
            let straggler_rate = [0.0, 0.10, 0.20][block];
            for &selector in selectors {
                let cell = Cell {
                    dataset: dataset_idx,
                    algorithm,
                    alpha,
                    participation,
                    straggler_rate,
                    selector,
                };
                eprintln!(
                    "running {} {} α={alpha} p={participation} strg={straggler_rate} {}",
                    dataset(dataset_idx).name,
                    algorithm.label(),
                    selector.label()
                );
                let result = run_cell(&cell, scale);
                sweep.insert((row, block, selector.label().to_string()), result);
            }
        }
    }
    sweep
}

fn print_table(
    n: usize,
    algorithm: FlAlgorithm,
    dataset_idx: usize,
    metric: usize,
    scale: Scale,
    sweep: &Sweep,
) {
    let profile = dataset(dataset_idx);
    let budget = scale.rounds(&profile);
    let metric_name = if metric == 0 {
        format!(
            "Rounds required to attain Target Accuracy ({:.0}%)",
            profile.target_accuracy * 100.0
        )
    } else {
        "Highest accuracy attained within the rounds threshold".to_string()
    };
    println!();
    println!("Table {n}: {} — {metric_name}", profile.name);
    println!(
        "FL Algorithm: {} | scale: {:?} ({} parties, {budget} rounds, {} seeds)",
        algorithm.label(),
        scale,
        scale.parties(&profile),
        scale.seeds()
    );
    let header_cols: Vec<String> = NO_STRAGGLER_COLUMNS
        .iter()
        .map(|s| s.label().to_string())
        .chain(STRAGGLER_COLUMNS.iter().map(|s| format!("{}@10", s.label())))
        .chain(STRAGGLER_COLUMNS.iter().map(|s| format!("{}@20", s.label())))
        .collect();
    println!(
        "{:>5} {:>7} {}",
        "α",
        "party%",
        header_cols.iter().map(|c| format!("{c:>10}")).collect::<String>()
    );
    for (row, &(alpha, participation)) in TABLE_ROWS.iter().enumerate() {
        let mut line = format!("{:>5} {:>7}", alpha, format!("{:.0}", participation * 100.0));
        let cols: Vec<(usize, SelectorKind)> = NO_STRAGGLER_COLUMNS
            .iter()
            .map(|&s| (0usize, s))
            .chain(STRAGGLER_COLUMNS.iter().map(|&s| (1usize, s)))
            .chain(STRAGGLER_COLUMNS.iter().map(|&s| (2usize, s)))
            .collect();
        for (block, selector) in cols {
            let cell = &sweep[&(row, block, selector.label().to_string())];
            let text = if metric == 0 {
                match cell.rounds_to_target {
                    Some(r) => format!("{r:.0}"),
                    None => format!(">{budget}"),
                }
            } else {
                format!("{:.2}", cell.peak_accuracy * 100.0)
            };
            line += &format!("{text:>10}");
        }
        println!("{line}");
    }
}
