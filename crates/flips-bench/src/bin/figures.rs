//! Regenerates the paper's Figures 2 and 5–13, plus the DESIGN.md
//! ablations, as CSV series on stdout.
//!
//! ```text
//! cargo run --release -p flips-bench --bin figures -- --figure 2
//! cargo run --release -p flips-bench --bin figures -- --figure 5
//! cargo run --release -p flips-bench --bin figures -- --figure 13
//! cargo run --release -p flips-bench --bin figures -- --figure ablation-k
//! cargo run --release -p flips-bench --bin figures -- --figure ablation-overprovision
//! cargo run --release -p flips-bench --bin figures -- --figure ablation-distance
//! ```
//!
//! Figure → dataset mapping follows the paper: 5/6 = MIT-BIH ECG,
//! 7/8 = HAM10000, 9/10 = FEMNIST, 11/12 = FashionMNIST; odd figures are
//! straggler-free (all five selectors), even figures inject 10%/20%
//! stragglers (FLIPS/Oort/TiFL). All curves use FedYogi, as the paper's
//! plots do. `--full` switches to paper scale.

use flips_bench::{dataset, Scale, NO_STRAGGLER_COLUMNS, STRAGGLER_COLUMNS};
use flips_core::clustering::{optimal_k, ElbowConfig};
use flips_core::data::dataset::generate_population;
use flips_core::middleware::LdTransform;
use flips_core::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: figures --figure <2|5|6|7|8|9|10|11|12|13|ablation-k|ablation-overprovision|ablation-distance> [--full]"
    );
    std::process::exit(2);
}

fn main() {
    let mut figure: Option<String> = None;
    let mut scale = Scale::Fast;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" => figure = Some(args.next().unwrap_or_else(|| usage())),
            "--full" => scale = Scale::Full,
            _ => usage(),
        }
    }
    let figure = figure.unwrap_or_else(|| usage());
    match figure.as_str() {
        "2" => figure2(scale),
        "5" => convergence(0, false, scale),
        "6" => convergence(0, true, scale),
        "7" => convergence(1, false, scale),
        "8" => convergence(1, true, scale),
        "9" => convergence(2, false, scale),
        "10" => convergence(2, true, scale),
        "11" => convergence(3, false, scale),
        "12" => convergence(3, true, scale),
        "13" => figure13(scale),
        "ablation-k" => ablation_k(scale),
        "ablation-overprovision" => ablation_overprovision(scale),
        "ablation-distance" => ablation_distance(scale),
        _ => usage(),
    }
}

fn builder(dataset_idx: usize, scale: Scale) -> SimulationBuilder {
    let profile = dataset(dataset_idx);
    SimulationBuilder::new(profile.clone())
        .parties(scale.parties(&profile))
        .rounds(scale.rounds(&profile))
        .clustering_restarts(scale.restarts())
        .test_per_class(scale.test_per_class())
        .parallel(true)
        .seed(1)
}

/// Figure 2: Davies-Bouldin score vs cluster size, with the elbow point.
fn figure2(scale: Scale) {
    let profile = dataset(0);
    let parties = scale.parties(&profile);
    let pop = generate_population(&profile, parties * 200, 1);
    let parts =
        partition(&pop, parties, PartitionStrategy::Dirichlet { alpha: 0.3 }, 5, 1).unwrap();
    let points: Vec<Vec<f32>> =
        parts.label_distributions().iter().map(|ld| ld.normalized()).collect();
    let cfg = ElbowConfig {
        restarts: scale.restarts().max(10),
        ..ElbowConfig::new(30.min(parties - 1), 1)
    };
    let result = optimal_k(&points, cfg).unwrap();
    println!("# Figure 2: DBI vs cluster size ({} label distributions)", parties);
    println!("# elbow point: k = {}", result.k);
    println!("k,davies_bouldin");
    for (k, dbi) in result.curve {
        println!("{k},{dbi:.6}");
    }
}

/// Figures 5/7/9/11 (and 6/8/10/12 with `stragglers`): convergence curves.
fn convergence(dataset_idx: usize, stragglers: bool, scale: Scale) {
    let profile = dataset(dataset_idx);
    let panels: &[(f64, f64)] = &[(0.3, 0.15), (0.3, 0.20), (0.6, 0.15), (0.6, 0.20)];
    for &(alpha, participation) in panels {
        let mut names: Vec<String> = Vec::new();
        let mut series: Vec<Vec<f64>> = Vec::new();
        if stragglers {
            for &kind in &STRAGGLER_COLUMNS {
                for rate in [0.10, 0.20] {
                    let report = builder(dataset_idx, scale)
                        .alpha(alpha)
                        .participation(participation)
                        .selector(kind)
                        .straggler_rate(rate)
                        .run()
                        .expect("figure run");
                    names.push(format!("{}_{:.0}pct_strg", kind.label(), rate * 100.0));
                    series.push(report.history.accuracy_series());
                }
            }
        } else {
            for &kind in &NO_STRAGGLER_COLUMNS {
                let report = builder(dataset_idx, scale)
                    .alpha(alpha)
                    .participation(participation)
                    .selector(kind)
                    .run()
                    .expect("figure run");
                names.push(kind.label().to_string());
                series.push(report.history.accuracy_series());
            }
        }
        println!(
            "# {}: convergence, alpha={alpha}, participation={:.0}%, stragglers={}",
            profile.name,
            participation * 100.0,
            stragglers
        );
        println!("round,{}", names.join(","));
        let rounds = series.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rounds {
            let row: Vec<String> = series
                .iter()
                .map(|s| s.get(r).map(|a| format!("{a:.4}")).unwrap_or_default())
                .collect();
            println!("{},{}", r + 1, row.join(","));
        }
        println!();
    }
}

/// Figure 13: recall trajectory of underrepresented labels (ECG
/// arrhythmia classes; HAM `bcc`).
fn figure13(scale: Scale) {
    for (dataset_idx, label_idx, label_name) in
        [(0usize, 3usize, "F (fusion beats)"), (1, 1, "bcc")]
    {
        let profile = dataset(dataset_idx);
        let mut names = Vec::new();
        let mut series: Vec<Vec<Option<f64>>> = Vec::new();
        for &kind in &NO_STRAGGLER_COLUMNS {
            let report = builder(dataset_idx, scale)
                .alpha(0.3)
                .participation(0.20)
                .selector(kind)
                .run()
                .expect("figure run");
            names.push(kind.label().to_string());
            series.push(report.history.label_recall_series(label_idx));
        }
        println!(
            "# Figure 13: recall of underrepresented label '{label_name}' on {}",
            profile.name
        );
        println!("round,{}", names.join(","));
        let rounds = series.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rounds {
            let row: Vec<String> = series
                .iter()
                .map(|s| s.get(r).copied().flatten().map(|a| format!("{a:.4}")).unwrap_or_default())
                .collect();
            println!("{},{}", r + 1, row.join(","));
        }
        println!();
    }
}

/// Ablation: FLIPS sensitivity to the cluster count k (§3.1's small-k /
/// large-k failure modes).
fn ablation_k(scale: Scale) {
    let profile = dataset(0);
    let parties = scale.parties(&profile);
    println!("# Ablation: FLIPS cluster-count sensitivity on {}", profile.name);
    println!("k,peak_accuracy,rounds_to_target");
    for k in [2usize, 5, 10, 14, 20, parties / 2] {
        let report = builder(0, scale)
            .alpha(0.3)
            .participation(0.20)
            .selector(SelectorKind::Flips)
            .fixed_k(k)
            .run()
            .expect("ablation run");
        println!(
            "{k},{:.4},{}",
            report.peak_accuracy(),
            report
                .rounds_to_target()
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!(">{}", report.meta.rounds))
        );
    }
    let elbow = builder(0, scale)
        .alpha(0.3)
        .participation(0.20)
        .selector(SelectorKind::Flips)
        .run()
        .expect("ablation run");
    println!(
        "elbow(k={}),{:.4},{}",
        elbow.meta.k.unwrap_or(0),
        elbow.peak_accuracy(),
        elbow
            .rounds_to_target()
            .map(|r| r.to_string())
            .unwrap_or_else(|| format!(">{}", elbow.meta.rounds))
    );
}

/// Ablation: straggler overprovisioning on/off at 10%/20% drop rates.
fn ablation_overprovision(scale: Scale) {
    println!("# Ablation: FLIPS straggler overprovisioning on {}", dataset(0).name);
    println!("straggler_rate,overprovision,peak_accuracy,rounds_to_target");
    for rate in [0.10, 0.20] {
        for overprovision in [true, false] {
            let mut b = builder(0, scale)
                .alpha(0.3)
                .participation(0.20)
                .selector(SelectorKind::Flips)
                .straggler_rate(rate);
            if !overprovision {
                b = b.without_overprovisioning();
            }
            let report = b.run().expect("ablation run");
            println!(
                "{rate},{overprovision},{:.4},{}",
                report.peak_accuracy(),
                report
                    .rounds_to_target()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| format!(">{}", report.meta.rounds))
            );
        }
    }
}

/// Ablation: clustering geometry (plain Euclidean vs Hellinger vs
/// unit-norm/cosine) on ECG and HAM.
fn ablation_distance(scale: Scale) {
    println!("# Ablation: label-distribution clustering geometry");
    println!("dataset,transform,peak_accuracy,rounds_to_target,k");
    for dataset_idx in [0usize, 1] {
        for (name, transform) in [
            ("euclidean", LdTransform::None),
            ("hellinger", LdTransform::Hellinger),
            ("unit-norm", LdTransform::UnitNorm),
        ] {
            let report = builder(dataset_idx, scale)
                .alpha(0.3)
                .participation(0.20)
                .selector(SelectorKind::Flips)
                .ld_transform(transform)
                .run()
                .expect("ablation run");
            println!(
                "{},{name},{:.4},{},{}",
                dataset(dataset_idx).name,
                report.peak_accuracy(),
                report
                    .rounds_to_target()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| format!(">{}", report.meta.rounds)),
                report.meta.k.unwrap_or(0)
            );
        }
    }
}
