//! Emits `BENCH_fl_round.json`: machine-readable perf numbers tracked
//! across PRs (median ns per FL round, GEMM GFLOP/s, wire bytes per
//! round under the negotiated model codec).
//!
//! Usage: `cargo run --release -p flips-bench --bin bench_json [out.json]`
//!
//! The file lands in the current directory as `BENCH_fl_round.json`
//! unless a path is given. Run once per PR (optionally also with
//! `--features baseline`) and compare medians; see PERFORMANCE.md.

use flips_core::prelude::*;
use flips_ml::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// Median of per-iteration times for `samples` runs of `f`, in ns.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn gemm_matrices(n: usize) -> (Matrix, Matrix) {
    let data = |salt: u32| -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                ((h >> 16) as f32 / 65536.0) - 0.5
            })
            .collect()
    };
    (Matrix::from_vec(n, n, data(1)), Matrix::from_vec(n, n, data(2)))
}

fn gemm_gflops(n: usize, samples: usize) -> f64 {
    let (a, b) = gemm_matrices(n);
    let mut out = Matrix::zeros(n, n);
    let ns = median_ns(samples, || {
        a.matmul_into(&b, &mut out);
        black_box(out.as_slice()[0]);
    });
    2.0 * (n * n * n) as f64 / ns
}

fn gemm_tn_gflops(n: usize, samples: usize) -> f64 {
    let (a, b) = gemm_matrices(n);
    let mut out = Matrix::zeros(n, n);
    let ns = median_ns(samples, || {
        a.matmul_tn_into(&b, &mut out);
        black_box(out.as_slice()[0]);
    });
    2.0 * (n * n * n) as f64 / ns
}

/// The round benchmarks' shared workload: `fl_round_ns` and
/// `transport_round_ns` must drive the *same* seeded job — one
/// configuration, two drivers — or their ratio stops meaning "the price
/// of the wire".
fn mlp256_job(
    parties: usize,
    per_round: usize,
    total_rounds: usize,
    codec: ModelCodec,
) -> flips_core::fl::FlJob {
    let mut profile = DatasetProfile::femnist();
    profile.name = "femnist-mlp256".into();
    profile.model = ModelSpec::Mlp { dims: vec![16, 256, 192, 10] };
    SimulationBuilder::new(profile)
        .parties(parties)
        .rounds(total_rounds)
        .participation(per_round as f64 / parties as f64)
        .selector(SelectorKind::Random)
        .test_per_class(20)
        .codec(codec)
        .seed(3)
        .build()
        .expect("bench simulation builds")
        .0
}

fn fl_round_ns(parties: usize, per_round: usize, rounds: usize, samples: usize) -> f64 {
    // Job construction (dataset synthesis, partitioning) stays outside
    // the timed region: only the synchronization rounds are measured.
    let mut job = mlp256_job(parties, per_round, rounds * (samples + 1), ModelCodec::Raw);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for sample in 0..=samples {
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(job.step().expect("round runs").accuracy);
        }
        if sample > 0 {
            // Sample 0 is warm-up.
            times.push(start.elapsed().as_nanos() as f64);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2] / rounds as f64
}

/// Median ns per round for the same workload as [`fl_round_ns`], driven
/// through the serialized transport stack: every message encoded, framed
/// onto a length-prefixed in-process byte pipe, reassembled and decoded.
/// The delta against `fl_round_median_ns` is the price of the wire.
///
/// Methodology mirrors [`fl_round_ns`] exactly — ONE continuously
/// running job with a `rounds · (samples + 1)` budget, timed in
/// `rounds`-round windows with window 0 discarded as warm-up — so the
/// two medians compare the same rounds of the same seeded trajectory.
/// Returns `(median ns/round, exact wire bytes/round)` — the byte count
/// is a pure function of the seeded trajectory and the codec, so it is
/// gated exactly (not with a tolerance band) in CI.
fn transport_round_ns(
    parties: usize,
    per_round: usize,
    rounds: usize,
    samples: usize,
    codec: ModelCodec,
) -> (f64, u64) {
    let total_rounds = rounds * (samples + 1);
    let job = mlp256_job(parties, per_round, total_rounds, codec);
    let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let id = driver.add_job(coordinator, Box::new(clock), latency).expect("fresh job id");
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    pool.add_job(id, endpoints);

    driver.start().expect("round 0 opens");
    let mut window_starts = vec![Instant::now()];
    let mut next_boundary = rounds;
    loop {
        let drove = driver.pump().expect("driver pumps");
        while driver.history(id).expect("job").len() >= next_boundary {
            window_starts.push(Instant::now());
            next_boundary += rounds;
        }
        let pooled = pool.pump().expect("pool pumps");
        if !drove && !pooled {
            if driver.is_finished() {
                break;
            }
            assert!(driver.advance_clock().expect("clock advances"), "driver stalled");
        }
    }
    black_box(driver.history(id).expect("history").len());
    let stats = driver.stats();
    let bytes_per_round = (stats.bytes_sent + stats.bytes_received) / total_rounds as u64;

    let mut times: Vec<f64> =
        window_starts.windows(2).skip(1).map(|w| (w[1] - w[0]).as_nanos() as f64).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2] / rounds as f64, bytes_per_round)
}

/// Median ns per round for the [`fl_round_ns`] workload executed on the
/// threaded sharded runtime: the roster split across `shards` worker
/// threads, the driver on a dedicated coordinator thread, every message
/// crossing a per-shard in-memory link. The delta against
/// `fl_round_median_ns` is the price of the threads (spawn, routing,
/// quiet detection) — on a multi-core host the parallel training should
/// win it back and more; on a single-core CI box it is pure overhead
/// and the number keeps that honest.
///
/// Unlike the continuously-running single-job benches, `run_sharded`
/// consumes its jobs, so each sample times a fresh `rounds`-round run
/// (construction excluded); sample 0 is discarded as warm-up.
fn sharded_round_ns(
    parties: usize,
    per_round: usize,
    rounds: usize,
    samples: usize,
    shards: usize,
) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for sample in 0..=samples {
        let job = mlp256_job(parties, per_round, rounds, ModelCodec::Raw);
        let parts = job.into_parts();
        // Default guards ride on the measured path: the perf gate on
        // this number is what keeps the guard plane's per-frame cost
        // honest (a regression here means admit() got expensive).
        let opts = RuntimeOptions::new(shards).with_guard(GuardConfig::default());
        let start = Instant::now();
        let outcome = run_sharded(vec![parts], &opts).expect("sharded run completes");
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(outcome.histories.len());
        if sample > 0 {
            times.push(elapsed / rounds as f64);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median ns per round for the [`fl_round_ns`] workload executed on the
/// epoll socket runtime: the roster split across `links` real TCP
/// loopback connections, one party worker thread per link, the
/// coordinator behind `epoll_wait`. The delta against
/// `sharded_round_median_ns` is the price of the kernel — syscalls,
/// socket buffers and the quiescence probe round trips that replace
/// in-memory quiet detection.
///
/// Methodology mirrors [`sharded_round_ns`]: `run_socket` consumes its
/// jobs, so each sample times a fresh `rounds`-round run (construction
/// and the TCP accept handshake are excluded by nothing — connection
/// setup is part of what a deployment pays per run); sample 0 is
/// discarded as warm-up. Default guards ride on the measured path.
fn socket_round_ns(
    parties: usize,
    per_round: usize,
    rounds: usize,
    samples: usize,
    links: usize,
) -> f64 {
    use flips_net::SocketOptions;
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for sample in 0..=samples {
        let job = mlp256_job(parties, per_round, rounds, ModelCodec::Raw);
        let parts = job.into_parts();
        let opts = SocketOptions::new(links).with_guard(GuardConfig::default());
        let start = Instant::now();
        let outcome = flips_net::run_socket(vec![parts], &opts).expect("socket run completes");
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(outcome.histories.len());
        if sample > 0 {
            times.push(elapsed / rounds as f64);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median ns per round of a run resumed from a checkpoint: one mid-run
/// snapshot is captured at the first round boundary (untimed setup),
/// then each sample pays the full recovery path a crashed deployment
/// pays — decode the snapshot bytes, rebuild the job from its seed,
/// restore the driver, re-key the party pool's delta reference, and
/// drive the remaining rounds to completion. The delta against
/// `fl_round_median_ns` is the price of coming back from the dead.
fn resume_round_ns(parties: usize, per_round: usize, rounds: usize, samples: usize) -> f64 {
    let build_pair = || {
        let job = mlp256_job(parties, per_round, rounds, ModelCodec::DeltaLossless);
        let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
        let (agg_pipe, party_pipe) = duplex();
        let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
        let id = driver.add_job(coordinator, Box::new(clock), latency).expect("fresh job id");
        let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
        pool.add_job(id, endpoints);
        (driver, pool, id)
    };

    // Untimed: drive to the first round boundary and snapshot it.
    let (mut driver, mut pool, _) = build_pair();
    driver.set_deferred_opens(true).expect("unstarted driver");
    driver.start().expect("round 0 opens");
    let snapshot = loop {
        let drove = driver.pump().expect("driver pumps");
        let pooled = pool.pump().expect("pool pumps");
        if drove || pooled {
            continue;
        }
        if driver.has_pending_opens() {
            break driver.checkpoint().expect("boundary snapshot");
        }
        assert!(driver.advance_clock().expect("clock advances"), "driver stalled");
    };
    let bytes = snapshot.encode();
    let remaining = rounds - snapshot.jobs[0].history.len();
    assert!(remaining > 0, "nothing left to resume");

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for sample in 0..=samples {
        let start = Instant::now();
        let cp = flips_core::fl::Checkpoint::decode(&bytes).expect("snapshot decodes");
        let (mut driver, mut pool, id) = build_pair();
        driver.restore(&cp).expect("snapshot restores");
        pool.pin_codec(id, ModelCodec::DeltaLossless);
        for r in &cp.codec_refs {
            assert!(pool.seed_reference(r.job, r.ref_round, &r.params), "reference re-keys");
        }
        run_lockstep(&mut driver, &mut pool).expect("resumed run completes");
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(driver.history(id).expect("history").len());
        if sample > 0 {
            times.push(elapsed / remaining as f64);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Synthetic roster records for the scale benches: deterministic, cheap,
/// and non-uniform enough to spread Tifl's latency tiers.
fn roster_record(i: usize) -> PartyRecord {
    PartyRecord {
        data_size: ((i * 31) % 97 + 5) as u64,
        latency_hint: 0.05 + ((i as f64) * 0.37) % 1.0,
        label_counts: vec![((i * 7) % 13) as u64, ((i * 11) % 17) as u64, 3],
    }
}

/// Median ns for one selection round over a 100 000-party spilled
/// roster: a full streamed Tifl tiering pass — every sealed segment
/// paged through a 4-segment cache — plus one 64-party draw. Roster
/// construction (record synthesis, disk sealing) stays outside the
/// timed region; the number prices the steady-state cost of selecting
/// from a roster that does not fit in memory.
fn roster_100k_round_ns(samples: usize) -> f64 {
    use flips_core::selection::tifl::TiflConfig;
    use flips_core::selection::TiflSelector;
    let dir = std::env::temp_dir().join(format!("flips-bench-roster-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut rb = RosterBuilder::spilling(&dir, 4).expect("spill dir").segment_cap(4096);
    for i in 0..100_000 {
        rb.push(roster_record(i)).expect("roster push");
    }
    let store = rb.finish().expect("roster seals");
    let ns = median_ns(samples, || {
        let mut sel = TiflSelector::from_source(&store, TiflConfig::default(), 7)
            .expect("tifl streams the roster");
        black_box(sel.select(0, 64).expect("selection").len());
    });
    assert!(store.resident_segments() <= 4, "roster cache exceeded its budget");
    std::fs::remove_dir_all(&dir).ok();
    ns
}

/// The million-party memory-ceiling smoke: seal a 10⁶-party roster to
/// disk behind an 8-segment cache, draw a seeded cohort, page each
/// member's record back in, and fold the cohort through the exact
/// aggregation-tree arithmetic — one round's worth of scale-plane work,
/// completed without ever holding more than the budget resident.
fn roster_million_smoke() {
    use flips_core::fl::ExactWeightedSum;
    use flips_core::selection::RandomSelector;
    const PARTIES: usize = 1_000_000;
    const BUDGET: usize = 8;
    let dir = std::env::temp_dir().join(format!("flips-bench-roster1m-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut rb = RosterBuilder::spilling(&dir, BUDGET).expect("spill dir");
    for i in 0..PARTIES {
        rb.push(roster_record(i)).expect("roster push");
    }
    let store = rb.finish().expect("roster seals");
    assert_eq!(store.spilled() as usize, PARTIES.div_ceil(4096), "every segment sealed");
    let mut sel = RandomSelector::from_source(&store, 11);
    let cohort = sel.select(0, 64).expect("selection");
    assert_eq!(cohort.len(), 64);
    let params = [0.125f32; 32];
    let mut sum = ExactWeightedSum::new(params.len());
    for &p in &cohort {
        let w = store.record(p).expect("record pages in").data_size;
        sum.fold(&params, w.max(1)).expect("cohort folds");
    }
    let mut agg = Vec::new();
    sum.finish_into(&mut agg).expect("aggregate finishes");
    black_box(agg[0]);
    assert!(store.resident_segments() <= BUDGET, "cache exceeded {BUDGET} segments");
    assert!(store.loaded() > 0, "nothing paged back in — the smoke is vacuous");
    eprintln!(
        "  1e6 parties: {} segments sealed, {} resident (budget {BUDGET}), {} page-ins",
        store.spilled(),
        store.resident_segments(),
        store.loaded()
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fl_round.json".into());
    let kernel = if cfg!(feature = "baseline") { "naive-baseline" } else { "blocked" };

    eprintln!("measuring GEMM 256x256 ({kernel}) ...");
    let gflops_256 = gemm_gflops(256, 15);
    eprintln!("  {gflops_256:.1} GFLOP/s");

    eprintln!("measuring GEMM-TN 256x256 ({kernel}) ...");
    let tn_gflops_256 = gemm_tn_gflops(256, 15);
    eprintln!("  {tn_gflops_256:.1} GFLOP/s");

    eprintln!("measuring fl_round (femnist-mlp256, 16 parties, 4/round) ...");
    let round_ns = fl_round_ns(16, 4, 3, 7);
    eprintln!("  {:.2} ms/round", round_ns / 1e6);

    eprintln!("measuring transport_round (same workload, serialized stream, raw codec) ...");
    let (transport_ns, raw_bytes) = transport_round_ns(16, 4, 3, 7, ModelCodec::Raw);
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs in-process), {} B/round on the wire",
        transport_ns / 1e6,
        100.0 * (transport_ns - round_ns) / round_ns,
        raw_bytes
    );

    eprintln!("measuring transport_round (DeltaLossless codec) ...");
    let (delta_ns, delta_bytes) = transport_round_ns(16, 4, 3, 7, ModelCodec::DeltaLossless);
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs in-process), {} B/round on the wire ({:.1}% of raw)",
        delta_ns / 1e6,
        100.0 * (delta_ns - round_ns) / round_ns,
        delta_bytes,
        100.0 * delta_bytes as f64 / raw_bytes as f64
    );

    eprintln!("measuring transport_round (DeltaEntropy codec) ...");
    let (entropy_ns, entropy_bytes) = transport_round_ns(16, 4, 3, 7, ModelCodec::DeltaEntropy);
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs in-process), {} B/round on the wire ({:.1}% of lossless delta)",
        entropy_ns / 1e6,
        100.0 * (entropy_ns - round_ns) / round_ns,
        entropy_bytes,
        100.0 * entropy_bytes as f64 / delta_bytes as f64
    );

    eprintln!("measuring transport_round (TopK k=4096 codec) ...");
    let (topk_ns, topk_bytes) = transport_round_ns(16, 4, 3, 7, ModelCodec::TopK { k: 4096 });
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs in-process), {} B/round on the wire ({:.1}% of raw)",
        topk_ns / 1e6,
        100.0 * (topk_ns - round_ns) / round_ns,
        topk_bytes,
        100.0 * topk_bytes as f64 / raw_bytes as f64
    );

    eprintln!("measuring sharded_round (same workload, threaded runtime, shard sweep) ...");
    let mut sharded_sweep = Vec::new();
    for shards in [1usize, 2, 4] {
        let ns = sharded_round_ns(16, 4, 3, 5, shards);
        eprintln!(
            "  {shards} shard(s): {:.2} ms/round ({:+.1}% vs in-process)",
            ns / 1e6,
            100.0 * (ns - round_ns) / round_ns
        );
        sharded_sweep.push((shards, ns));
    }
    let sharded_ns = sharded_sweep[1].1;

    eprintln!("measuring socket_round (same workload, epoll TCP runtime, 2 links) ...");
    let socket_ns = socket_round_ns(16, 4, 3, 5, 2);
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs sharded)",
        socket_ns / 1e6,
        100.0 * (socket_ns - sharded_ns) / sharded_ns
    );

    eprintln!("measuring resume_round (same workload, checkpoint decode + restore + finish) ...");
    let resume_ns = resume_round_ns(16, 4, 3, 5);
    eprintln!(
        "  {:.2} ms/round ({:+.1}% vs in-process)",
        resume_ns / 1e6,
        100.0 * (resume_ns - round_ns) / round_ns
    );

    eprintln!("measuring roster_100k_round (spilled roster, streamed Tifl pass + draw) ...");
    let roster_ns = roster_100k_round_ns(5);
    eprintln!("  {:.2} ms/round", roster_ns / 1e6);

    eprintln!("running the million-party memory-ceiling smoke ...");
    roster_million_smoke();

    let json = format!(
        "{{\n  \"schema\": \"flips-bench/fl_round/v1\",\n  \"kernel\": \"{kernel}\",\n  \
         \"fl_round_median_ns\": {round_ns:.0},\n  \"transport_round_median_ns\": {transport_ns:.0},\n  \
         \"transport_round_delta_median_ns\": {delta_ns:.0},\n  \
         \"sharded_round_median_ns\": {sharded_ns:.0},\n  \
         \"sharded_round_1shard_median_ns\": {:.0},\n  \
         \"sharded_round_4shard_median_ns\": {:.0},\n  \
         \"socket_round_median_ns\": {socket_ns:.0},\n  \
         \"resume_round_median_ns\": {resume_ns:.0},\n  \
         \"roster_100k_round_median_ns\": {roster_ns:.0},\n  \
         \"transport_bytes_per_round\": {delta_bytes},\n  \
         \"transport_bytes_per_round_raw\": {raw_bytes},\n  \
         \"transport_bytes_per_round_entropy\": {entropy_bytes},\n  \
         \"transport_bytes_per_round_topk\": {topk_bytes},\n  \
         \"gemm_256_gflops\": {gflops_256:.2},\n  \"gemm_tn_256_gflops\": {tn_gflops_256:.2},\n  \
         \"model\": \"mlp-16x256x192x10\",\n  \"parties\": 16,\n  \"parties_per_round\": 4\n}}\n",
        sharded_sweep[0].1, sharded_sweep[2].1
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
