//! # flips-bench — the paper's evaluation harness
//!
//! Shared machinery for the `tables` and `figures` binaries and the
//! criterion micro-benchmarks. The paper's grid (§5):
//!
//! - 4 datasets × 3 FL algorithms × α ∈ {0.3, 0.6} × participation ∈
//!   {15%, 20%} × straggler rate ∈ {0%, 10%, 20%};
//! - without stragglers all five selectors run; with stragglers the
//!   paper keeps the three best (FLIPS, Oort, TiFL);
//! - two report dimensions per grid cell: rounds-to-target (odd-numbered
//!   tables) and peak accuracy (even-numbered tables).
//!
//! Table numbering matches the paper: tables 1–8 are FedYogi, 9–16
//! FedProx, 17–24 FedAvg; within each algorithm block the datasets run
//! ECG, HAM10000, FEMNIST, FashionMNIST with (rounds, peak) pairs.
//!
//! # Example
//!
//! A [`Scale`] maps the paper's grid onto a machine budget:
//!
//! ```
//! use flips_bench::Scale;
//! use flips_core::prelude::DatasetProfile;
//!
//! let profile = DatasetProfile::femnist();
//! assert!(Scale::Fast.parties(&profile) <= Scale::Full.parties(&profile));
//! assert!(Scale::Fast.rounds(&profile) <= Scale::Full.rounds(&profile));
//! ```

use flips_core::prelude::*;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale defaults: fewer parties/rounds/seeds; minutes per
    /// table, same qualitative shape.
    Fast,
    /// The paper's scale: 100–200 parties, 200–400 rounds, 6 seeds.
    Full,
}

impl Scale {
    /// Parties for a profile at this scale.
    pub fn parties(&self, profile: &DatasetProfile) -> usize {
        match self {
            Scale::Fast => profile.default_parties.min(40),
            Scale::Full => profile.default_parties,
        }
    }

    /// Round budget for a profile at this scale.
    pub fn rounds(&self, profile: &DatasetProfile) -> usize {
        match self {
            Scale::Fast => profile.max_rounds.min(if profile.max_rounds > 200 { 100 } else { 80 }),
            Scale::Full => profile.max_rounds,
        }
    }

    /// Seeds averaged per cell (paper: 6).
    pub fn seeds(&self) -> u64 {
        match self {
            Scale::Fast => 2,
            Scale::Full => 6,
        }
    }

    /// K-Means restarts for the elbow scan (paper: 20).
    pub fn restarts(&self) -> usize {
        match self {
            Scale::Fast => 6,
            Scale::Full => 20,
        }
    }

    /// Test-set size per class.
    pub fn test_per_class(&self) -> usize {
        match self {
            Scale::Fast => 20,
            Scale::Full => 50,
        }
    }
}

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Dataset index (0 = ECG, 1 = HAM, 2 = FEMNIST, 3 = FashionMNIST).
    pub dataset: usize,
    /// FL algorithm.
    pub algorithm: FlAlgorithm,
    /// Dirichlet α.
    pub alpha: f64,
    /// Participation fraction.
    pub participation: f64,
    /// Straggler drop rate.
    pub straggler_rate: f64,
    /// Selector.
    pub selector: SelectorKind,
}

/// The averaged outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Mean rounds-to-target across seeds that reached it; `None` when no
    /// seed reached the target within the budget (reported "> budget").
    pub rounds_to_target: Option<f64>,
    /// How many seeds reached the target.
    pub reached: usize,
    /// Mean peak accuracy across seeds.
    pub peak_accuracy: f64,
    /// Mean bytes to target across seeds that reached it.
    pub bytes_to_target: Option<f64>,
    /// FLIPS cluster count (last seed).
    pub k: Option<usize>,
}

/// The profile for a dataset index.
pub fn dataset(index: usize) -> DatasetProfile {
    DatasetProfile::all().into_iter().nth(index).expect("dataset index in 0..4")
}

/// Runs one grid cell at the given scale, averaging over seeds.
pub fn run_cell(cell: &Cell, scale: Scale) -> CellResult {
    let profile = dataset(cell.dataset);
    let mut rtts = Vec::new();
    let mut peaks = Vec::new();
    let mut bytes = Vec::new();
    let mut k = None;
    for seed in 0..scale.seeds() {
        let report = SimulationBuilder::new(profile.clone())
            .parties(scale.parties(&profile))
            .rounds(scale.rounds(&profile))
            .participation(cell.participation)
            .alpha(cell.alpha)
            .algorithm(cell.algorithm)
            .selector(cell.selector)
            .straggler_rate(cell.straggler_rate)
            .clustering_restarts(scale.restarts())
            .test_per_class(scale.test_per_class())
            .parallel(true)
            .seed(seed * 7919 + 1)
            .run()
            .expect("cell simulation runs");
        if let Some(r) = report.rounds_to_target() {
            rtts.push(r as f64);
        }
        if let Some(b) = report.history.bytes_to_target(report.meta.target_accuracy) {
            bytes.push(b as f64);
        }
        peaks.push(report.peak_accuracy());
        k = k.or(report.meta.k);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    CellResult {
        rounds_to_target: if rtts.is_empty() { None } else { Some(mean(&rtts)) },
        reached: rtts.len(),
        peak_accuracy: mean(&peaks),
        bytes_to_target: if bytes.is_empty() { None } else { Some(mean(&bytes)) },
        k,
    }
}

/// The paper's table layout: `(algorithm, dataset, metric)` for table `n`
/// in 1..=24; metric 0 = rounds-to-target, 1 = peak accuracy.
pub fn table_layout(n: usize) -> Option<(FlAlgorithm, usize, usize)> {
    if !(1..=24).contains(&n) {
        return None;
    }
    let idx = n - 1;
    let algorithm = FlAlgorithm::paper_algorithms()[idx / 8];
    let dataset = (idx % 8) / 2;
    let metric = idx % 2;
    Some((algorithm, dataset, metric))
}

/// Selector columns of the no-straggler block, in the paper's order.
pub const NO_STRAGGLER_COLUMNS: [SelectorKind; 5] = [
    SelectorKind::Random,
    SelectorKind::Flips,
    SelectorKind::Oort,
    SelectorKind::GradClus,
    SelectorKind::Tifl,
];

/// Selector columns of the straggler blocks (the paper's three best).
pub const STRAGGLER_COLUMNS: [SelectorKind; 3] =
    [SelectorKind::Flips, SelectorKind::Oort, SelectorKind::Tifl];

/// Row settings of every table: (α, participation).
pub const TABLE_ROWS: [(f64, f64); 4] = [(0.3, 0.20), (0.3, 0.15), (0.6, 0.20), (0.6, 0.15)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_matches_paper_numbering() {
        // Table 1: ECG rounds, FedYogi; Table 2: ECG peak, FedYogi.
        let (a, d, m) = table_layout(1).unwrap();
        assert_eq!((a.label(), d, m), ("FedYoGi", 0, 0));
        let (a, d, m) = table_layout(2).unwrap();
        assert_eq!((a.label(), d, m), ("FedYoGi", 0, 1));
        // Table 9: ECG rounds, FedProx.
        let (a, d, m) = table_layout(9).unwrap();
        assert_eq!((a.label(), d, m), ("FedProx", 0, 0));
        // Table 20: HAM peak, FedAvg.
        let (a, d, m) = table_layout(20).unwrap();
        assert_eq!((a.label(), d, m), ("FedAvg", 1, 1));
        // Table 23: FashionMNIST rounds, FedAvg.
        let (a, d, m) = table_layout(23).unwrap();
        assert_eq!((a.label(), d, m), ("FedAvg", 3, 0));
        assert!(table_layout(0).is_none());
        assert!(table_layout(25).is_none());
    }

    #[test]
    fn datasets_are_the_paper_four() {
        assert_eq!(dataset(0).name, "mit-bih-ecg");
        assert_eq!(dataset(1).name, "ham10000");
        assert_eq!(dataset(2).name, "femnist");
        assert_eq!(dataset(3).name, "fashion-mnist");
    }

    #[test]
    fn scales_are_ordered() {
        let p = DatasetProfile::ecg();
        assert!(Scale::Fast.parties(&p) <= Scale::Full.parties(&p));
        assert!(Scale::Fast.rounds(&p) <= Scale::Full.rounds(&p));
        assert!(Scale::Fast.seeds() <= Scale::Full.seeds());
    }
}
