//! GEMM kernel benchmarks: blocked/panel-packed kernels vs the retained
//! naive baseline, across the shapes the training stack actually hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flips_ml::Matrix;
use std::hint::black_box;

fn filled(rows: usize, cols: usize, scale: f32) -> Matrix {
    // Dense pseudo-random data with no exact zeros (the naive kernels
    // skip zero multipliers, which would skew the comparison).
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(11);
            (((h >> 16) as f32 / 65536.0) - 0.5) * scale + scale * 1e-3
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nn");
    group.sample_size(20);
    for &n in &[64usize, 256, 512] {
        let a = filled(n, n, 0.01);
        let b = filled(n, n, 0.02);
        let mut out = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                a.matmul_into(black_box(&b), &mut out);
                black_box(out.as_slice()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(flips_ml::matrix::reference::matmul(black_box(&a), black_box(&b)))
            })
        });
    }
    group.finish();
}

fn bench_transposed(c: &mut Criterion) {
    // `Aᵀ·B` across sizes: the flavor the backward pass leans on, and the
    // one the lhs A-panel pack exists for (strided lhs loads otherwise
    // left it ~1.7× over naive at 256).
    let mut group = c.benchmark_group("gemm_tn");
    group.sample_size(20);
    for &n in &[64usize, 256, 512] {
        let a = filled(n, n, 0.01);
        let b = filled(n, n, 0.02);
        let mut out = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                a.matmul_tn_into(&b, &mut out);
                black_box(out.as_slice()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(flips_ml::matrix::reference::matmul_tn(black_box(&a), black_box(&b)))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gemm_transposed_256");
    group.sample_size(20);
    let a = filled(256, 256, 0.01);
    let b = filled(256, 256, 0.02);
    let mut out = Matrix::zeros(256, 256);
    group.bench_function("nt_blocked", |bch| {
        bch.iter(|| {
            a.matmul_nt_into(&b, &mut out);
            black_box(out.as_slice()[0])
        })
    });
    group.bench_function("nt_naive", |bch| {
        bch.iter(|| black_box(flips_ml::matrix::reference::matmul_nt(&a, &b)))
    });
    group.finish();
}

fn bench_training_shapes(c: &mut Criterion) {
    // The minibatch shapes the FL training loop actually produces.
    let mut group = c.benchmark_group("gemm_training_shapes");
    group.sample_size(30);
    for &(m, k, n) in &[(32usize, 16usize, 24usize), (32, 128, 256), (200, 16, 24)] {
        let a = filled(m, k, 0.05);
        let b = filled(k, n, 0.05);
        group.bench_function(BenchmarkId::new("blocked", format!("{m}x{k}x{n}")), |bch| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_function(BenchmarkId::new("naive", format!("{m}x{k}x{n}")), |bch| {
            bch.iter(|| black_box(flips_ml::matrix::reference::matmul(&a, &b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_square, bench_transposed, bench_training_shapes);
criterion_main!(benches);
