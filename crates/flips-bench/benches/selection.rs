//! Per-round selection latency of every policy at paper scale (200
//! parties, Nr = 40). Selection must be negligible next to training.

use criterion::{criterion_group, criterion_main, Criterion};
use flips_core::prelude::*;
use flips_core::selection::oort::OortConfig;
use flips_core::selection::tifl::TiflConfig;
use flips_core::selection::{
    FlipsSelector, GradClusSelector, OortSelector, RandomSelector, TiflSelector,
};
use std::hint::black_box;

const N: usize = 200;
const NR: usize = 40;

fn feedback(picks: &[usize], round: usize) -> RoundFeedback {
    RoundFeedback {
        round,
        selected: picks.to_vec(),
        completed: picks.to_vec(),
        train_loss: picks.iter().map(|&p| (p, 1.0)).collect(),
        duration: picks.iter().map(|&p| (p, 0.5)).collect(),
        global_accuracy: 0.5,
        ..Default::default()
    }
}

fn drive(selector: &mut dyn ParticipantSelector) {
    for round in 0..5 {
        let picks = selector.select(round, NR).unwrap();
        selector.report(&feedback(&picks, round));
        black_box(picks);
    }
}

fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_5_rounds_200_parties");
    group.bench_function("random", |b| b.iter(|| drive(&mut RandomSelector::new(N, 1))));
    group.bench_function("flips", |b| {
        let clusters: Vec<Vec<usize>> =
            (0..10).map(|c| (0..N).filter(|p| p % 10 == c).collect()).collect();
        b.iter(|| drive(&mut FlipsSelector::new(clusters.clone()).unwrap()))
    });
    group.bench_function("oort", |b| {
        b.iter(|| drive(&mut OortSelector::new(vec![200; N], OortConfig::default(), 1)))
    });
    group.bench_function("grad_cls", |b| {
        b.iter(|| drive(&mut GradClusSelector::new(N, 32, 1).unwrap()))
    });
    group.bench_function("tifl", |b| {
        let lat: Vec<f64> = (0..N).map(|i| (i % 13) as f64 + 0.1).collect();
        b.iter(|| drive(&mut TiflSelector::new(lat.clone(), TiflConfig::default(), 1).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
