//! K-Means / elbow scaling benchmarks: the paper reports label
//! distribution clustering takes <1s for 200 parties (§5.1); this bench
//! verifies the substrate's scaling with party count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flips_core::clustering::{kmeans, optimal_k, ElbowConfig, KMeansConfig};
use flips_core::data::dataset::generate_population;
use flips_core::prelude::*;
use std::hint::black_box;

fn label_distribution_points(parties: usize) -> Vec<Vec<f32>> {
    let profile = DatasetProfile::ecg();
    let pop = generate_population(&profile, parties * 100, 7);
    let parts =
        partition(&pop, parties, PartitionStrategy::Dirichlet { alpha: 0.3 }, 2, 7).unwrap();
    parts.label_distributions().iter().map(|ld| ld.normalized()).collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_k10");
    group.sample_size(20);
    for &parties in &[50usize, 200, 800] {
        let points = label_distribution_points(parties);
        group.bench_with_input(BenchmarkId::from_parameter(parties), &points, |b, points| {
            b.iter(|| {
                let mut rng = flips_core::ml::rng::seeded(1);
                kmeans(&mut rng, black_box(points), KMeansConfig::new(10)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_elbow_scan(c: &mut Criterion) {
    let points = label_distribution_points(200);
    let mut group = c.benchmark_group("elbow");
    group.sample_size(10);
    group.bench_function("elbow_scan_200_parties_k2_to_15_t3", |b| {
        b.iter(|| {
            let cfg = ElbowConfig { restarts: 3, ..ElbowConfig::new(15, 1) };
            optimal_k(black_box(&points), cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_elbow_scan);
criterion_main!(benches);
