//! Model-payload codec micro-benchmarks: encode/decode cost and encoded
//! bytes per codec on the tracked mlp-16×256×192×10 model.
//!
//! Three sizes print per codec, mirroring the wire's life cycle:
//! `first_global` (no reference yet — delta goes inline), `rebroadcast`
//! (the same round's 2nd..Nth model copy — deltas collapse to RLE
//! zeros), and `next_round` (an SGD-sized nudge — small-exponent
//! deltas). Encoded bytes print alongside the timings, since bytes, not
//! ns, are what a codec buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flips_core::fl::codec::{CodecMap, ModelCodec, PayloadCodec, Role};
use flips_core::fl::WireMessage;
use flips_core::prelude::ModelSpec;
use flips_ml::rng::seeded;
use std::hint::black_box;

fn model_params() -> Vec<f32> {
    ModelSpec::Mlp { dims: vec![16, 256, 192, 10] }.build(&mut seeded(3)).params()
}

/// An SGD-sized perturbation: same exponents, low-mantissa churn.
fn nudged(params: &[f32]) -> Vec<f32> {
    params.iter().map(|x| x * (1.0 + 1e-4) + 1e-7).collect()
}

fn global(round: u64, params: &[f32]) -> WireMessage {
    WireMessage::GlobalModel { job: 1, round, params: params.to_vec().into() }
}

fn bench_codec(c: &mut Criterion) {
    let params = model_params();
    let next = nudged(&params);
    let mut group = c.benchmark_group("model_codec_mlp256");

    for codec in [
        ModelCodec::Raw,
        ModelCodec::DeltaLossless,
        ModelCodec::DeltaEntropy,
        ModelCodec::TopK { k: 4096 },
        ModelCodec::F16,
    ] {
        // Encoded bytes per scenario — the headline numbers for
        // PERFORMANCE.md's wire table.
        let mut tx = PayloadCodec::new(codec, Role::Sender);
        let mut buf = bytes::BytesMut::new();
        global(0, &params).encode_into(&mut tx, &mut buf);
        let first_bytes = buf.len();
        buf.clear();
        global(0, &params).encode_into(&mut tx, &mut buf);
        let rebroadcast_bytes = buf.len();
        buf.clear();
        global(1, &next).encode_into(&mut tx, &mut buf);
        let next_round_bytes = buf.len();
        eprintln!(
            "codec {:>14}: first_global {:>7} B, rebroadcast {:>7} B, next_round {:>7} B",
            codec.label(),
            first_bytes,
            rebroadcast_bytes,
            next_round_bytes
        );

        group.bench_with_input(
            BenchmarkId::new("encode_next_round", codec.label()),
            &codec,
            |b, &codec| {
                let mut tx = PayloadCodec::new(codec, Role::Sender);
                let mut scratch = bytes::BytesMut::new();
                global(0, &params).encode_into(&mut tx, &mut scratch);
                // Alternate two payloads so every iteration is a
                // genuine cross-round delta, never the O(1)
                // rebroadcast fast path.
                let msgs = [global(1, &next), global(2, &params)];
                let mut i = 0usize;
                b.iter(|| {
                    scratch.clear();
                    msgs[i & 1].encode_into(&mut tx, &mut scratch);
                    i += 1;
                    black_box(scratch.len())
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("decode_next_round", codec.label()),
            &codec,
            |b, &codec| {
                let mut tx = PayloadCodec::new(codec, Role::Sender);
                let mut rx = CodecMap::new(Role::Receiver);
                rx.register(1, codec);
                let mut scratch = bytes::BytesMut::new();
                // Establish the reference on both ends, then measure
                // decoding an SGD-sized LocalUpdate delta — the update
                // path never advances the reference, so every
                // iteration decodes the same steady-state frame to the
                // same (checked) values.
                global(0, &params).encode_into(&mut tx, &mut scratch);
                WireMessage::decode_with(scratch.clone().freeze(), &mut rx).unwrap();
                scratch.clear();
                let update = WireMessage::LocalUpdate {
                    job: 1,
                    round: 1,
                    party: 2,
                    num_samples: 64,
                    mean_loss: 0.5,
                    duration: 0.1,
                    params: next.clone(),
                };
                update.encode_into(&mut tx, &mut scratch);
                let encoded = scratch.freeze();
                b.iter(|| {
                    let msg = WireMessage::decode_with(encoded.clone(), &mut rx).unwrap();
                    let WireMessage::LocalUpdate { params, .. } = &msg else { unreachable!() };
                    assert_eq!(params.len(), next.len());
                    if codec.is_lossless() {
                        assert_eq!(params[0].to_bits(), next[0].to_bits());
                    }
                    black_box(params.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
