//! The §5.1 experiment: clustering label distributions inside the
//! simulated TEE vs outside. The paper measures 105.4 ms vs 100.5 ms
//! (≈5%) under AMD SEV; the enclave's calibrated overhead model should
//! reproduce that ratio here (absolute times differ — different machine,
//! different k-scan).

use criterion::{criterion_group, criterion_main, Criterion};
use flips_core::data::dataset::generate_population;
use flips_core::middleware::{FlipsMiddleware, MiddlewareConfig};
use flips_core::prelude::*;
use std::hint::black_box;

fn distributions() -> Vec<LabelDistribution> {
    let profile = DatasetProfile::ham10000();
    let pop = generate_population(&profile, 200 * 100, 3);
    let parts = partition(&pop, 200, PartitionStrategy::Dirichlet { alpha: 0.3 }, 2, 3).unwrap();
    parts.label_distributions()
}

fn bench_tee_overhead(c: &mut Criterion) {
    let lds = distributions();
    let mut group = c.benchmark_group("private_clustering_200_parties");
    group.sample_size(20);
    for (name, overhead) in [
        ("no_tee", OverheadModel::none()),
        // `realtime()` opts into actually spinning for the modeled
        // penalty — this bench *is* the wall-clock ratio measurement.
        ("sev_like_tee", OverheadModel::sev_like().realtime()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = MiddlewareConfig {
                    restarts: 3,
                    k_max: 15,
                    overhead,
                    seed: 1,
                    ..Default::default()
                };
                black_box(FlipsMiddleware::cluster_privately(&lds, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tee_overhead);
criterion_main!(benches);
