//! Wire-codec throughput: encoding/decoding model updates of realistic
//! sizes (the communication path every FL round pays twice per party).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flips_core::fl::message::WireMessage;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for &params in &[1_000usize, 10_000, 100_000] {
        let msg = WireMessage::LocalUpdate {
            job: 9,
            round: 7,
            party: 42,
            num_samples: 250,
            mean_loss: 0.5,
            duration: 1.25,
            params: (0..params).map(|i| i as f32 * 0.001).collect(),
        };
        group.throughput(Throughput::Bytes(msg.wire_size() as u64));
        group.bench_with_input(BenchmarkId::new("encode", params), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode()))
        });
        let encoded = msg.encode();
        group.bench_with_input(BenchmarkId::new("decode", params), &encoded, |b, encoded| {
            b.iter(|| black_box(WireMessage::decode(encoded.clone()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
