//! End-to-end cost of one FL synchronization round (select → train →
//! aggregate → evaluate) at a moderate scale, sequential vs parallel
//! local training.

use criterion::{criterion_group, criterion_main, Criterion};
use flips_core::prelude::*;
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round_40_parties_8_per_round");
    group.sample_size(10);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    SimulationBuilder::new(DatasetProfile::femnist())
                        .parties(40)
                        .rounds(1)
                        .participation(0.2)
                        .selector(SelectorKind::Random)
                        .test_per_class(20)
                        .parallel(parallel)
                        .seed(3)
                        .build()
                        .unwrap()
                        .0
                },
                |mut job| black_box(job.step().unwrap().accuracy),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
