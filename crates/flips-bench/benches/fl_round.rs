//! End-to-end cost of one FL synchronization round (select → train →
//! aggregate → evaluate) at a moderate scale, sequential vs parallel
//! local training.
//!
//! Run with `--features baseline` to route the same workload through the
//! naive GEMM kernels and the allocating training path — the before/after
//! comparison for the zero-allocation hot-path work.

use criterion::{criterion_group, criterion_main, Criterion};
use flips_core::prelude::*;
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round_40_parties_8_per_round");
    group.sample_size(10);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    SimulationBuilder::new(DatasetProfile::femnist())
                        .parties(40)
                        .rounds(1)
                        .participation(0.2)
                        .selector(SelectorKind::Random)
                        .test_per_class(20)
                        .parallel(parallel)
                        .seed(3)
                        .build()
                        .unwrap()
                        .0
                },
                |mut job| black_box(job.step().unwrap().accuracy),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// A FEMNIST-schema profile with a production-sized MLP (≈72k params):
/// the GEMM-bound regime the paper's GPU models live in.
pub fn large_profile() -> DatasetProfile {
    let mut profile = DatasetProfile::femnist();
    profile.name = "femnist-mlp256".into();
    profile.model = ModelSpec::Mlp { dims: vec![16, 256, 192, 10] };
    profile
}

fn bench_round_large_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round_mlp256_16_parties_4_per_round");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter_batched(
            || {
                SimulationBuilder::new(large_profile())
                    .parties(16)
                    .rounds(1)
                    .participation(0.25)
                    .selector(SelectorKind::Random)
                    .test_per_class(20)
                    .seed(3)
                    .build()
                    .unwrap()
                    .0
            },
            |mut job| black_box(job.step().unwrap().accuracy),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_round_large_model);
criterion_main!(benches);
