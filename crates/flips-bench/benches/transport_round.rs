//! End-to-end cost of FL rounds driven through the serialized transport
//! stack (encode → frame → length-prefixed byte pipe → decode), versus
//! the in-process pass-by-value driver on the identical seeded workload.
//!
//! The delta between the two groups is the full price of the wire: two
//! codec passes and two framed copies per message, plus the driver's
//! demux/timer machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use flips_core::prelude::*;
use std::hint::black_box;

fn builder() -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(16)
        .rounds(3)
        .participation(0.25)
        .selector(SelectorKind::Random)
        .test_per_class(20)
        .seed(3)
}

fn bench_transport_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_round_16_parties_4_per_round");
    group.sample_size(10);

    group.bench_function("in_process_by_value", |b| {
        b.iter_batched(
            || builder().build().unwrap().0,
            |mut job| black_box(job.run().unwrap().peak_accuracy()),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("serialized_stream", |b| {
        b.iter_batched(
            || {
                let JobParts { coordinator, endpoints, clock, latency, .. } =
                    builder().build().unwrap().0.into_parts();
                let (agg_pipe, party_pipe) = duplex();
                let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
                let id = driver.add_job(coordinator, Box::new(clock), latency).unwrap();
                let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
                pool.add_job(id, endpoints);
                (driver, pool)
            },
            |(mut driver, mut pool)| {
                run_lockstep(&mut driver, &mut pool).unwrap();
                let id = driver.job_ids()[0];
                black_box(driver.history(id).unwrap().peak_accuracy())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_transport_round);
criterion_main!(benches);
