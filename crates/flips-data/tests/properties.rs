//! Property-based tests of the data substrate's invariants.

use flips_data::dataset::{balanced_test_set, generate_population};
use flips_data::dist::{dirichlet_symmetric, gamma, largest_remainder};
use flips_data::{partition, DatasetProfile, LabelDistribution, PartitionStrategy};
use flips_ml::rng::seeded;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gamma_samples_are_positive_and_finite(
        seed in 0u64..10_000,
        shape in 0.05f64..20.0,
    ) {
        let mut rng = seeded(seed);
        let x = gamma(&mut rng, shape);
        prop_assert!(x.is_finite());
        prop_assert!(x > 0.0);
    }

    #[test]
    fn dirichlet_is_a_probability_vector(
        seed in 0u64..10_000,
        alpha in 0.05f64..50.0,
        dim in 1usize..20,
    ) {
        let mut rng = seeded(seed);
        let p = dirichlet_symmetric(&mut rng, alpha, dim);
        prop_assert_eq!(p.len(), dim);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn largest_remainder_conserves_total(
        props in proptest::collection::vec(0.0f64..10.0, 1..12),
        total in 0usize..500,
    ) {
        prop_assume!(props.iter().sum::<f64>() > 0.0);
        let counts = largest_remainder(&props, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        prop_assert_eq!(counts.len(), props.len());
    }

    #[test]
    fn partition_conserves_samples_and_labels(
        seed in 0u64..1000,
        parties in 2usize..20,
        alpha in 0.05f64..5.0,
    ) {
        let profile = DatasetProfile::femnist();
        let pop = generate_population(&profile, 600, seed);
        let parts = partition(
            &pop,
            parties,
            PartitionStrategy::Dirichlet { alpha },
            1,
            seed,
        ).unwrap();
        // Sample conservation.
        prop_assert_eq!(parts.sample_counts().iter().sum::<usize>(), 600);
        // Label multiset conservation.
        let mut remaining = pop.label_counts();
        for party in &parts.parties {
            for (slot, c) in remaining.iter_mut().zip(party.label_counts()) {
                prop_assert!(*slot >= c, "label over-allocated");
                *slot -= c;
            }
        }
        prop_assert!(remaining.iter().all(|&c| c == 0));
        // Minimum guarantee.
        prop_assert!(parts.sample_counts().iter().all(|&c| c >= 1));
    }

    #[test]
    fn every_partition_strategy_is_exhaustive(
        seed in 0u64..500,
        parties in 2usize..12,
    ) {
        let profile = DatasetProfile::ecg();
        let pop = generate_population(&profile, 400, seed);
        for strategy in [
            PartitionStrategy::Iid,
            PartitionStrategy::Dirichlet { alpha: 0.3 },
            PartitionStrategy::OneLabelPerParty,
        ] {
            let parts = partition(&pop, parties, strategy, 1, seed).unwrap();
            prop_assert_eq!(parts.num_parties(), parties);
            prop_assert_eq!(parts.sample_counts().iter().sum::<usize>(), 400);
        }
    }

    #[test]
    fn label_distribution_normalization_invariants(
        counts in proptest::collection::vec(0u64..10_000, 1..16),
    ) {
        let ld = LabelDistribution::from_counts(counts.clone());
        let n = ld.normalized();
        prop_assert!((n.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(n.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Scaling counts leaves the normalized vector unchanged.
        let scaled: Vec<u64> = counts.iter().map(|&c| c * 3).collect();
        let ld3 = LabelDistribution::from_counts(scaled);
        if ld.total() > 0 {
            prop_assert!(ld.distance(&ld3) < 1e-5);
        }
    }

    #[test]
    fn balanced_test_set_is_exactly_balanced(
        seed in 0u64..200,
        per_class in 1usize..40,
    ) {
        let profile = DatasetProfile::ham10000();
        let ts = balanced_test_set(&profile, per_class, seed);
        prop_assert!(ts.label_counts().iter().all(|&c| c == per_class as u64));
    }

    #[test]
    fn population_generation_is_deterministic_per_seed(seed in 0u64..200) {
        let profile = DatasetProfile::fashion_mnist();
        let a = generate_population(&profile, 300, seed);
        let b = generate_population(&profile, 300, seed);
        prop_assert_eq!(a, b);
    }
}
