//! Label distributions — FLIPS's semantic party descriptor.
//!
//! The paper (§3.1) defines the label distribution of party `p_i` as
//! `ld_i = {l_1, ..., l_g}` where `l_j` counts datapoints of label `j` at
//! the party. FLIPS clusters these vectors to discover groups of parties
//! with similar data. Clustering operates on the *normalized* distribution
//! so that parties with proportionally identical data but different volumes
//! land in the same cluster.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Per-label datapoint counts at one party.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelDistribution {
    counts: Vec<u64>,
}

impl LabelDistribution {
    /// Creates a distribution from raw per-label counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "label distribution needs at least one label");
        LabelDistribution { counts }
    }

    /// Tallies the labels of a dataset.
    pub fn from_dataset(ds: &Dataset) -> Self {
        LabelDistribution { counts: ds.label_counts() }
    }

    /// Tallies a raw label slice over `classes` labels.
    pub fn from_labels(labels: &[usize], classes: usize) -> Self {
        let mut counts = vec![0u64; classes];
        for &l in labels {
            assert!(l < classes, "label {l} out of range");
            counts[l] += 1;
        }
        LabelDistribution { counts }
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of labels in the schema.
    pub fn num_labels(&self) -> usize {
        self.counts.len()
    }

    /// Total datapoints.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The normalized distribution (sums to 1; all-zeros maps to uniform).
    ///
    /// This is the vector FLIPS feeds to K-Means: proportions, not raw
    /// counts, so data volume does not confound label similarity.
    pub fn normalized(&self) -> Vec<f32> {
        let total = self.total();
        if total == 0 {
            return vec![1.0 / self.counts.len() as f32; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f32 / total as f32).collect()
    }

    /// Euclidean distance between normalized distributions.
    pub fn distance(&self, other: &LabelDistribution) -> f32 {
        flips_ml::matrix::euclidean_distance(&self.normalized(), &other.normalized())
    }

    /// The label with the most datapoints (ties → lowest label).
    pub fn dominant_label(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty counts")
    }

    /// Shannon entropy (nats) of the normalized distribution — a diversity
    /// measure used in tests and diagnostics.
    pub fn entropy(&self) -> f64 {
        self.normalized().iter().filter(|&&p| p > 0.0).map(|&p| -(p as f64) * (p as f64).ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_sums_to_one() {
        let ld = LabelDistribution::from_counts(vec![10, 30, 60]);
        let n = ld.normalized();
        assert!((n.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((n[2] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn empty_party_normalizes_to_uniform() {
        let ld = LabelDistribution::from_counts(vec![0, 0, 0, 0]);
        assert_eq!(ld.normalized(), vec![0.25; 4]);
    }

    #[test]
    fn volume_does_not_affect_distance() {
        let a = LabelDistribution::from_counts(vec![1, 1]);
        let b = LabelDistribution::from_counts(vec![1000, 1000]);
        assert!(a.distance(&b) < 1e-6);
    }

    #[test]
    fn from_labels_counts_correctly() {
        let ld = LabelDistribution::from_labels(&[0, 1, 1, 2, 2, 2], 4);
        assert_eq!(ld.counts(), &[1, 2, 3, 0]);
        assert_eq!(ld.total(), 6);
    }

    #[test]
    fn dominant_label_picks_mode() {
        let ld = LabelDistribution::from_counts(vec![5, 9, 2]);
        assert_eq!(ld.dominant_label(), 1);
    }

    #[test]
    fn entropy_extremes() {
        let one_hot = LabelDistribution::from_counts(vec![100, 0, 0, 0]);
        assert!(one_hot.entropy() < 1e-9);
        let uniform = LabelDistribution::from_counts(vec![25, 25, 25, 25]);
        assert!((uniform.entropy() - 4.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = LabelDistribution::from_counts(vec![3, 1, 0]);
        let b = LabelDistribution::from_counts(vec![0, 1, 3]);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }
}
