//! Dataset profiles mirroring the paper's four evaluation datasets (§4.2).
//!
//! A [`DatasetProfile`] bundles the *statistical shape* of a dataset — class
//! count, class imbalance, feature dimensionality, difficulty — with the
//! experiment defaults the paper used for it (party count, round budget,
//! target accuracy, model architecture, learning-rate schedule). The
//! generators in [`crate::dataset`] consume the shape; the benchmark
//! harness consumes the defaults.

use flips_ml::model::ModelSpec;
use flips_ml::optimizer::StepDecay;
use serde::{Deserialize, Serialize};

/// The statistical and experimental description of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Short identifier, e.g. `"mit-bih-ecg"`.
    pub name: String,
    /// Number of labels.
    pub classes: usize,
    /// Global class prior (sums to 1); encodes the dataset's imbalance.
    pub class_priors: Vec<f64>,
    /// Human-readable label names, parallel to `class_priors`.
    pub label_names: Vec<String>,
    /// Feature dimensionality of the synthetic stand-in.
    pub feature_dim: usize,
    /// Distance of each class mean from the origin (task separability).
    pub separation: f64,
    /// Standard deviation of the within-class Gaussian noise.
    pub noise_std: f64,
    /// Model architecture the paper trains on this dataset (stand-in).
    pub model: ModelSpec,
    /// Number of parties the paper partitions this dataset across.
    pub default_parties: usize,
    /// Total synthetic samples to generate at the default scale.
    pub default_total_samples: usize,
    /// FL round budget (the paper's threshold for "rounds to target").
    pub max_rounds: usize,
    /// Target balanced accuracy (fraction, e.g. 0.60) for
    /// "rounds-to-target" tables.
    pub target_accuracy: f64,
    /// Client learning-rate schedule (the paper decays every 20–30 rounds).
    pub lr_schedule: StepDecay,
    /// Local iterations τ per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
}

impl DatasetProfile {
    /// MIT-BIH ECG stand-in: 5 AAMI beat classes dominated by normal (`N`)
    /// beats — the paper's motivating arrhythmia-detection workload.
    ///
    /// Class priors follow the MIT-BIH beat census (≈89% `N`).
    pub fn ecg() -> Self {
        DatasetProfile {
            name: "mit-bih-ecg".into(),
            classes: 5,
            class_priors: vec![0.890, 0.025, 0.065, 0.008, 0.012],
            label_names: vec!["N".into(), "S".into(), "V".into(), "F".into(), "Q".into()],
            feature_dim: 32,
            separation: 1.8,
            noise_std: 1.0,
            model: ModelSpec::Conv1d { len: 32, kernel: 5, filters: 8, classes: 5 },
            default_parties: 200,
            default_total_samples: 40_000,
            max_rounds: 400,
            target_accuracy: 0.60,
            lr_schedule: StepDecay { initial: 0.03, factor: 0.85, every: 20 },
            local_epochs: 5,
            batch_size: 32,
        }
    }

    /// HAM10000 skin-lesion stand-in: 7 diagnostic categories dominated by
    /// `nv` (melanocytic nevi, ≈67%).
    pub fn ham10000() -> Self {
        DatasetProfile {
            name: "ham10000".into(),
            classes: 7,
            class_priors: vec![0.033, 0.051, 0.110, 0.011, 0.111, 0.670, 0.014],
            label_names: vec![
                "akiec".into(),
                "bcc".into(),
                "bkl".into(),
                "df".into(),
                "mel".into(),
                "nv".into(),
                "vasc".into(),
            ],
            feature_dim: 24,
            separation: 1.8,
            noise_std: 1.0,
            model: ModelSpec::Mlp { dims: vec![24, 32, 7] },
            default_parties: 200,
            default_total_samples: 40_000,
            max_rounds: 400,
            target_accuracy: 0.60,
            lr_schedule: StepDecay { initial: 0.03, factor: 0.85, every: 30 },
            local_epochs: 5,
            batch_size: 32,
        }
    }

    /// FEMNIST stand-in: 10 near-balanced handwritten-character classes
    /// ('a'–'j' subsample). The paper notes this dataset is "more IID".
    pub fn femnist() -> Self {
        DatasetProfile {
            name: "femnist".into(),
            classes: 10,
            class_priors: vec![
                0.104, 0.098, 0.101, 0.097, 0.103, 0.099, 0.102, 0.096, 0.100, 0.100,
            ],
            label_names: ('a'..='j').map(|c| c.to_string()).collect(),
            feature_dim: 16,
            separation: 2.5,
            noise_std: 1.0,
            model: ModelSpec::Mlp { dims: vec![16, 24, 10] },
            default_parties: 200,
            default_total_samples: 40_000,
            max_rounds: 200,
            target_accuracy: 0.80,
            lr_schedule: StepDecay { initial: 0.05, factor: 0.7, every: 50 },
            local_epochs: 2,
            batch_size: 32,
        }
    }

    /// FashionMNIST stand-in: 10 perfectly balanced clothing classes,
    /// partitioned across 100 parties (§4.2).
    pub fn fashion_mnist() -> Self {
        DatasetProfile {
            name: "fashion-mnist".into(),
            classes: 10,
            class_priors: vec![0.1; 10],
            label_names: vec![
                "t-shirt".into(),
                "trouser".into(),
                "pullover".into(),
                "dress".into(),
                "coat".into(),
                "sandal".into(),
                "shirt".into(),
                "sneaker".into(),
                "bag".into(),
                "boot".into(),
            ],
            feature_dim: 16,
            separation: 2.5,
            noise_std: 1.0,
            model: ModelSpec::Mlp { dims: vec![16, 24, 10] },
            default_parties: 100,
            default_total_samples: 30_000,
            max_rounds: 200,
            target_accuracy: 0.80,
            lr_schedule: StepDecay { initial: 0.05, factor: 0.7, every: 50 },
            local_epochs: 2,
            batch_size: 32,
        }
    }

    /// All four paper profiles, in the order the paper lists them.
    pub fn all() -> Vec<DatasetProfile> {
        vec![Self::ecg(), Self::ham10000(), Self::femnist(), Self::fashion_mnist()]
    }

    /// Looks a profile up by its `name`.
    pub fn by_name(name: &str) -> Option<DatasetProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Returns a copy scaled down for fast test/bench runs: `parties`
    /// parties, proportionally fewer samples, `rounds` round budget.
    #[must_use]
    pub fn scaled(&self, parties: usize, rounds: usize) -> DatasetProfile {
        let mut p = self.clone();
        let per_party = self.default_total_samples / self.default_parties.max(1);
        p.default_parties = parties;
        p.default_total_samples = per_party * parties;
        p.max_rounds = rounds;
        p
    }

    /// Validates internal consistency (priors sum to 1, dims agree).
    pub fn validate(&self) -> Result<(), crate::DataError> {
        if self.class_priors.len() != self.classes {
            return Err(crate::DataError::InvalidParameter(format!(
                "{} priors for {} classes",
                self.class_priors.len(),
                self.classes
            )));
        }
        let sum: f64 = self.class_priors.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(crate::DataError::InvalidParameter(format!(
                "class priors sum to {sum}, expected 1"
            )));
        }
        if self.class_priors.iter().any(|&p| p < 0.0) {
            return Err(crate::DataError::InvalidParameter("negative class prior".into()));
        }
        if self.model.num_classes() != self.classes {
            return Err(crate::DataError::InvalidParameter(
                "model class count disagrees with profile".into(),
            ));
        }
        if self.model.input_dim() != self.feature_dim {
            return Err(crate::DataError::InvalidParameter(
                "model input dim disagrees with feature_dim".into(),
            ));
        }
        Ok(())
    }

    /// The label whose prior is smallest — the "underrepresented label"
    /// Figure 13 tracks (arrhythmia beats for ECG, `bcc` analog for HAM).
    pub fn rarest_label(&self) -> usize {
        self.class_priors
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("non-empty priors")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in DatasetProfile::all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn ecg_is_dominated_by_normal_beats() {
        let p = DatasetProfile::ecg();
        assert_eq!(p.classes, 5);
        assert!(p.class_priors[0] > 0.8, "N beats dominate");
        assert_eq!(p.label_names[0], "N");
    }

    #[test]
    fn ham_is_dominated_by_nv() {
        let p = DatasetProfile::ham10000();
        let nv = p.label_names.iter().position(|n| n == "nv").unwrap();
        assert!(p.class_priors[nv] > 0.6);
    }

    #[test]
    fn fashion_is_balanced() {
        let p = DatasetProfile::fashion_mnist();
        assert!(p.class_priors.iter().all(|&x| (x - 0.1).abs() < 1e-9));
        assert_eq!(p.default_parties, 100);
    }

    #[test]
    fn by_name_round_trips() {
        for p in DatasetProfile::all() {
            assert_eq!(DatasetProfile::by_name(&p.name), Some(p.clone()));
        }
        assert_eq!(DatasetProfile::by_name("no-such"), None);
    }

    #[test]
    fn scaled_preserves_per_party_samples() {
        let p = DatasetProfile::ecg().scaled(20, 40);
        assert_eq!(p.default_parties, 20);
        assert_eq!(p.max_rounds, 40);
        assert_eq!(p.default_total_samples, 20 * (40_000 / 200));
        p.validate().unwrap();
    }

    #[test]
    fn rarest_label_is_minimum_prior() {
        let p = DatasetProfile::ecg();
        assert_eq!(p.rarest_label(), 3); // F (fusion) beats, prior 0.008
        let h = DatasetProfile::ham10000();
        assert_eq!(h.label_names[h.rarest_label()], "df");
    }

    #[test]
    fn validate_rejects_bad_priors() {
        let mut p = DatasetProfile::ecg();
        p.class_priors[0] = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_model_mismatch() {
        let mut p = DatasetProfile::ecg();
        p.model = ModelSpec::LogisticRegression { dim: 32, classes: 9 };
        assert!(p.validate().is_err());
    }
}
