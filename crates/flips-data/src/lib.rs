//! # flips-data — synthetic datasets and non-IID partitioning
//!
//! The FLIPS paper evaluates on MIT-BIH ECG, HAM10000, FEMNIST and
//! FashionMNIST, partitioned across 100–200 parties with Dirichlet(α)
//! label allocation (§4.2–4.3). Real datasets cannot ship with this
//! reproduction, so this crate provides:
//!
//! - **class-conditional Gaussian generators** whose *label imbalance*
//!   matches each paper dataset ([`profile`]) — FLIPS's mechanism depends
//!   only on label distributions, so this preserves the evaluated behaviour
//!   (see `DESIGN.md` §1);
//! - the **Dirichlet partitioner** the paper uses to emulate non-IIDness
//!   ([`partition()`]), plus IID and pathological one-label partitioners;
//! - [`LabelDistribution`] — the
//!   semantic party descriptor FLIPS clusters on;
//! - a **balanced global test set** ([`dataset::balanced_test_set`])
//!   mirroring the paper's §4.4 evaluation protocol.
//!
//! # Example
//!
//! Generate a seeded population and split it non-IID across parties:
//!
//! ```
//! use flips_data::dataset::generate_population;
//! use flips_data::{partition, DatasetProfile, PartitionStrategy};
//!
//! let profile = DatasetProfile::femnist().scaled(4, 10);
//! let population = generate_population(&profile, profile.default_total_samples, 7);
//! let parts =
//!     partition(&population, 4, PartitionStrategy::Dirichlet { alpha: 0.5 }, 5, 7).unwrap();
//! assert_eq!(parts.parties.len(), 4);
//! assert!(parts.parties.iter().all(|p| p.len() >= 5), "per-party floor honored");
//! ```

pub mod dataset;
pub mod dist;
pub mod label_distribution;
pub mod partition;
pub mod profile;

pub use dataset::Dataset;
pub use label_distribution::LabelDistribution;
pub use partition::{partition, PartitionStrategy, Partitioned};
pub use profile::DatasetProfile;

/// Errors produced by the data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
    /// A partition request could not be satisfied (e.g. more parties than
    /// samples).
    Unsatisfiable(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            DataError::Unsatisfiable(m) => write!(f, "unsatisfiable partition: {m}"),
        }
    }
}

impl std::error::Error for DataError {}
