//! Probability distributions implemented over `rand` core.
//!
//! Only the base `rand` crate is permitted in this workspace, so Gamma and
//! Dirichlet sampling (needed for the paper's Dirichlet-allocation non-IID
//! emulation, §4.3) are implemented here: Gamma via Marsaglia–Tsang
//! squeeze, Dirichlet as normalized Gamma draws.

use flips_ml::rng::standard_normal;
use rand::Rng;

/// Samples `Gamma(shape, 1)` using the Marsaglia–Tsang method.
///
/// For `shape < 1` the standard boosting identity
/// `Gamma(a) = Gamma(a+1) · U^{1/a}` is applied.
///
/// # Panics
///
/// Panics if `shape <= 0` or is not finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        let x2 = x * x;
        // Squeeze acceptance, then full acceptance.
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples a probability vector from `Dirichlet(alpha, ..., alpha)` of the
/// given dimension (symmetric Dirichlet).
///
/// # Panics
///
/// Panics if `alpha <= 0` or `dim == 0`.
pub fn dirichlet_symmetric<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dirichlet dimension must be positive");
    dirichlet(rng, &vec![alpha; dim])
}

/// Samples from a general `Dirichlet(alphas)`.
///
/// # Panics
///
/// Panics if `alphas` is empty or contains a non-positive entry.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alphas: &[f64]) -> Vec<f64> {
    assert!(!alphas.is_empty(), "dirichlet needs at least one alpha");
    let mut draws: Vec<f64> = alphas.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically possible for tiny alphas: fall back to a one-hot at a
        // uniformly random coordinate, the α→0 limit of the Dirichlet.
        let hot = rng.random_range(0..alphas.len());
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[hot] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

/// Samples an index from a categorical distribution given (possibly
/// unnormalized, non-negative) weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must sum to a positive value");
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Apportions `total` items into integer counts proportional to `props`
/// using largest-remainder rounding, guaranteeing the counts sum to
/// `total` exactly.
pub fn largest_remainder(props: &[f64], total: usize) -> Vec<usize> {
    assert!(!props.is_empty(), "largest_remainder needs proportions");
    let sum: f64 = props.iter().sum();
    if sum <= 0.0 {
        let mut out = vec![0; props.len()];
        out[0] = total;
        return out;
    }
    let exact: Vec<f64> = props.iter().map(|&p| p / sum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut remainder: Vec<(usize, f64)> =
        exact.iter().enumerate().map(|(i, &e)| (i, e - e.floor())).collect();
    remainder.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, _) in remainder.into_iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_ml::rng::seeded;

    #[test]
    fn gamma_mean_and_variance() {
        // Gamma(k, 1): mean = k, var = k.
        let mut rng = seeded(1);
        for &shape in &[0.5, 1.0, 2.5, 9.0] {
            let n = 40_000;
            let samples: Vec<f64> = (0..n).map(|_| gamma(&mut rng, shape)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.1 * shape.max(1.0), "shape {shape}: mean {mean}");
            assert!((var - shape).abs() < 0.2 * shape.max(1.0), "shape {shape}: var {var}");
        }
    }

    #[test]
    fn gamma_is_positive() {
        let mut rng = seeded(2);
        for _ in 0..1000 {
            assert!(gamma(&mut rng, 0.3) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = seeded(3);
        let _ = gamma(&mut rng, 0.0);
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_nonnegative() {
        let mut rng = seeded(4);
        for &alpha in &[0.1, 0.3, 0.6, 1.0, 10.0] {
            let p = dirichlet_symmetric(&mut rng, alpha, 7);
            assert_eq!(p.len(), 7);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        // α = 0.05 should usually put most mass on one coordinate, while
        // α = 100 should be near-uniform — the paper's non-IID dial (§4.3).
        let mut rng = seeded(5);
        let sparse_max: f64 = (0..200)
            .map(|_| dirichlet_symmetric(&mut rng, 0.05, 10).into_iter().fold(0.0, f64::max))
            .sum::<f64>()
            / 200.0;
        let dense_max: f64 = (0..200)
            .map(|_| dirichlet_symmetric(&mut rng, 100.0, 10).into_iter().fold(0.0, f64::max))
            .sum::<f64>()
            / 200.0;
        assert!(sparse_max > 0.65, "sparse mean-max {sparse_max}");
        assert!(dense_max < 0.25, "dense mean-max {dense_max}");
    }

    #[test]
    fn asymmetric_dirichlet_respects_expectation() {
        // E[p_i] = α_i / Σα.
        let mut rng = seeded(6);
        let alphas = [1.0, 3.0];
        let n = 20_000;
        let mean0: f64 = (0..n).map(|_| dirichlet(&mut rng, &alphas)[0]).sum::<f64>() / n as f64;
        assert!((mean0 - 0.25).abs() < 0.02, "mean {mean0}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = seeded(7);
        let weights = [1.0, 0.0, 3.0];
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.75).abs() < 0.02, "frac {frac2}");
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        let counts = largest_remainder(&[0.333, 0.333, 0.334], 100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        let counts = largest_remainder(&[0.5, 0.25, 0.25], 7);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert!(counts[0] >= counts[1] && counts[0] >= counts[2]);
    }

    #[test]
    fn largest_remainder_handles_zero_proportions() {
        let counts = largest_remainder(&[0.0, 0.0, 1.0], 10);
        assert_eq!(counts, vec![0, 0, 10]);
    }
}
