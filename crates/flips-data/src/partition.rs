//! Non-IID data partitioning across FL parties.
//!
//! Implements the paper's §4.3 emulation: **Dirichlet allocation** — for
//! every label `l`, sample party proportions `p_l ~ Dir_N(α)` and allocate
//! that label's samples accordingly. `α → 0` degenerates to one label per
//! party (extreme non-IID); `α ≥ 1` approaches IID. The paper evaluates
//! `α ∈ {0.3, 0.6}`.
//!
//! Two reference strategies are included: [`PartitionStrategy::Iid`]
//! (uniform shuffle-split) and [`PartitionStrategy::OneLabelPerParty`]
//! (the α→0 pathological case, stated explicitly).

use crate::dataset::Dataset;
use crate::dist::{dirichlet_symmetric, largest_remainder};
use crate::label_distribution::LabelDistribution;
use crate::DataError;
use flips_ml::rng::{derive_seed, seeded, shuffle};
use serde::{Deserialize, Serialize};

/// How to split a population across parties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Dirichlet allocation with concentration `alpha` (paper §4.3).
    Dirichlet {
        /// Concentration parameter; smaller = more non-IID.
        alpha: f64,
    },
    /// Uniform IID split.
    Iid,
    /// Each party receives samples of exactly one label (α → 0 extreme).
    OneLabelPerParty,
}

impl PartitionStrategy {
    /// Short name for logs and reports.
    pub fn label(&self) -> String {
        match self {
            PartitionStrategy::Dirichlet { alpha } => format!("dirichlet(α={alpha})"),
            PartitionStrategy::Iid => "iid".into(),
            PartitionStrategy::OneLabelPerParty => "one-label".into(),
        }
    }
}

/// The result of partitioning: one local dataset per party.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partitioned {
    /// Per-party local datasets, index = party id.
    pub parties: Vec<Dataset>,
    /// The strategy that produced this split.
    pub strategy: PartitionStrategy,
}

impl Partitioned {
    /// Number of parties.
    pub fn num_parties(&self) -> usize {
        self.parties.len()
    }

    /// Label distribution of every party — the input to FLIPS clustering.
    pub fn label_distributions(&self) -> Vec<LabelDistribution> {
        self.parties.iter().map(LabelDistribution::from_dataset).collect()
    }

    /// Per-party sample counts (`n_i` in the FedAvg weighting).
    pub fn sample_counts(&self) -> Vec<usize> {
        self.parties.iter().map(Dataset::len).collect()
    }
}

/// Partitions `population` across `num_parties` parties.
///
/// Every party is guaranteed at least `min_per_party` samples (deficit
/// parties take samples from the largest parties), matching how practical
/// FL deployments exclude or pad empty clients.
///
/// # Errors
///
/// Returns [`DataError::Unsatisfiable`] if the population is too small for
/// the guarantee, and [`DataError::InvalidParameter`] for a non-positive
/// `alpha` or zero parties.
pub fn partition(
    population: &Dataset,
    num_parties: usize,
    strategy: PartitionStrategy,
    min_per_party: usize,
    seed: u64,
) -> Result<Partitioned, DataError> {
    if num_parties == 0 {
        return Err(DataError::InvalidParameter("zero parties".into()));
    }
    if let PartitionStrategy::Dirichlet { alpha } = strategy {
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(DataError::InvalidParameter(format!(
                "alpha must be positive, got {alpha}"
            )));
        }
    }
    if population.len() < num_parties * min_per_party {
        return Err(DataError::Unsatisfiable(format!(
            "{} samples cannot give {} parties {} samples each",
            population.len(),
            num_parties,
            min_per_party
        )));
    }

    let mut rng = seeded(derive_seed(seed, 0x9A27));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); num_parties];

    match strategy {
        PartitionStrategy::Iid => {
            let mut order: Vec<usize> = (0..population.len()).collect();
            shuffle(&mut rng, &mut order);
            for (i, idx) in order.into_iter().enumerate() {
                assignment[i % num_parties].push(idx);
            }
        }
        PartitionStrategy::Dirichlet { alpha } => {
            for label in 0..population.classes {
                let indices: Vec<usize> =
                    (0..population.len()).filter(|&i| population.y[i] == label).collect();
                if indices.is_empty() {
                    continue;
                }
                let props = dirichlet_symmetric(&mut rng, alpha, num_parties);
                let counts = largest_remainder(&props, indices.len());
                let mut cursor = 0;
                for (party, &c) in counts.iter().enumerate() {
                    assignment[party].extend_from_slice(&indices[cursor..cursor + c]);
                    cursor += c;
                }
            }
        }
        PartitionStrategy::OneLabelPerParty => {
            // Parties are assigned labels proportionally to label volume so
            // each party's share is roughly equal in size.
            let label_counts = population.label_counts();
            let props: Vec<f64> = label_counts.iter().map(|&c| c as f64).collect();
            let parties_per_label = largest_remainder(&props, num_parties);
            let mut party = 0;
            let mut orphaned: Vec<usize> = Vec::new();
            for (label, &n_parties) in parties_per_label.iter().enumerate() {
                let indices: Vec<usize> =
                    (0..population.len()).filter(|&i| population.y[i] == label).collect();
                if n_parties == 0 {
                    // Fewer parties than labels: this label owns no party;
                    // its samples are spread below so none are lost.
                    orphaned.extend(indices);
                    continue;
                }
                let share = largest_remainder(&vec![1.0; n_parties], indices.len());
                let mut cursor = 0;
                for &c in &share {
                    assignment[party].extend_from_slice(&indices[cursor..cursor + c]);
                    cursor += c;
                    party += 1;
                }
            }
            // Orphaned samples go to the currently smallest parties —
            // purity degrades only when parties < labels, where purity is
            // unattainable anyway.
            for idx in orphaned {
                let smallest =
                    (0..num_parties).min_by_key(|&p| assignment[p].len()).expect("num_parties > 0");
                assignment[smallest].push(idx);
            }
            // Any parties left unassigned (more parties than labels·shares)
            // are topped up by the rebalancing pass below.
        }
    }

    rebalance_minimum(&mut assignment, min_per_party);

    let parties = assignment.iter().map(|idx| population.subset(idx)).collect();
    Ok(Partitioned { parties, strategy })
}

/// Moves samples from the largest parties to any party below the minimum.
fn rebalance_minimum(assignment: &mut [Vec<usize>], min_per_party: usize) {
    if min_per_party == 0 {
        return;
    }
    loop {
        let Some(deficit) = assignment.iter().position(|a| a.len() < min_per_party) else {
            return;
        };
        let donor = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.len())
            .map(|(i, _)| i)
            .expect("non-empty assignment");
        assert_ne!(donor, deficit, "rebalance invariant: donor must differ");
        let moved = assignment[donor].pop().expect("donor non-empty");
        assignment[deficit].push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_population;
    use crate::profile::DatasetProfile;

    fn population() -> Dataset {
        generate_population(&DatasetProfile::femnist(), 2000, 42)
    }

    fn assert_is_partition(pop: &Dataset, parts: &Partitioned) {
        let total: usize = parts.sample_counts().iter().sum();
        assert_eq!(total, pop.len(), "partition must cover the population");
        // Label multiset must be preserved.
        let mut pop_counts = pop.label_counts();
        for p in &parts.parties {
            for (a, b) in pop_counts.iter_mut().zip(p.label_counts()) {
                *a -= b;
            }
        }
        assert!(pop_counts.iter().all(|&c| c == 0), "labels must be conserved");
    }

    #[test]
    fn iid_partition_is_even_and_complete() {
        let pop = population();
        let parts = partition(&pop, 10, PartitionStrategy::Iid, 1, 1).unwrap();
        assert_is_partition(&pop, &parts);
        assert!(parts.sample_counts().iter().all(|&c| c == 200));
    }

    #[test]
    fn dirichlet_partition_is_complete_and_respects_minimum() {
        let pop = population();
        for &alpha in &[0.1, 0.3, 0.6, 1.0] {
            let parts = partition(&pop, 50, PartitionStrategy::Dirichlet { alpha }, 5, 7).unwrap();
            assert_is_partition(&pop, &parts);
            assert!(parts.sample_counts().iter().all(|&c| c >= 5), "alpha {alpha}");
        }
    }

    #[test]
    fn smaller_alpha_is_more_skewed() {
        // Mean per-party label entropy decreases as alpha decreases.
        let pop = population();
        let entropy = |alpha: f64| {
            let parts = partition(&pop, 40, PartitionStrategy::Dirichlet { alpha }, 1, 3).unwrap();
            parts.label_distributions().iter().map(LabelDistribution::entropy).sum::<f64>() / 40.0
        };
        let sparse = entropy(0.1);
        let dense = entropy(5.0);
        assert!(
            sparse < dense - 0.3,
            "entropy at α=0.1 ({sparse}) should be well below α=5 ({dense})"
        );
    }

    #[test]
    fn one_label_per_party_is_pure() {
        let pop = population();
        let parts = partition(&pop, 20, PartitionStrategy::OneLabelPerParty, 1, 9).unwrap();
        assert_is_partition(&pop, &parts);
        // Each party should be dominated by a single label. (The minimum
        // guarantee may move a stray sample, so check near-purity.)
        for ld in parts.label_distributions() {
            let max = *ld.counts().iter().max().unwrap();
            assert!(max as f64 / ld.total() as f64 > 0.9);
        }
    }

    #[test]
    fn partition_is_seed_deterministic() {
        let pop = population();
        let a = partition(&pop, 10, PartitionStrategy::Dirichlet { alpha: 0.3 }, 1, 11).unwrap();
        let b = partition(&pop, 10, PartitionStrategy::Dirichlet { alpha: 0.3 }, 1, 11).unwrap();
        assert_eq!(a.sample_counts(), b.sample_counts());
        assert_eq!(a.parties[3], b.parties[3]);
        let c = partition(&pop, 10, PartitionStrategy::Dirichlet { alpha: 0.3 }, 1, 12).unwrap();
        assert_ne!(a.sample_counts(), c.sample_counts());
    }

    #[test]
    fn rejects_zero_parties_and_bad_alpha() {
        let pop = population();
        assert!(matches!(
            partition(&pop, 0, PartitionStrategy::Iid, 1, 1),
            Err(DataError::InvalidParameter(_))
        ));
        assert!(matches!(
            partition(&pop, 5, PartitionStrategy::Dirichlet { alpha: 0.0 }, 1, 1),
            Err(DataError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_unsatisfiable_minimum() {
        let pop = population();
        assert!(matches!(
            partition(&pop, 300, PartitionStrategy::Iid, 10, 1),
            Err(DataError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn label_distributions_match_parties() {
        let pop = population();
        let parts = partition(&pop, 8, PartitionStrategy::Dirichlet { alpha: 0.3 }, 1, 2).unwrap();
        let lds = parts.label_distributions();
        assert_eq!(lds.len(), 8);
        for (party, ld) in parts.parties.iter().zip(&lds) {
            assert_eq!(ld.total() as usize, party.len());
        }
    }
}
