//! Labelled datasets and the class-conditional Gaussian generator.

use crate::dist::{categorical, largest_remainder};
use crate::profile::DatasetProfile;
use flips_ml::matrix::Matrix;
use flips_ml::rng::{derive_seed, normal, seeded, shuffle};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled dataset: features (rows = samples) and integer labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, `n × d`.
    pub x: Matrix,
    /// Labels, length `n`, each `< classes`.
    pub y: Vec<usize>,
    /// Number of distinct labels in the schema (not necessarily present).
    pub classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label ranges.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or any label is out of range.
    pub fn new(x: Matrix, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "features/labels length mismatch");
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Dataset { x, y, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Per-label sample counts (length = classes).
    pub fn label_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the given sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            classes: self.classes,
        }
    }

    /// Samples a mini-batch of `size` indices uniformly without
    /// replacement (or the whole set if `size >= len`).
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, size: usize) -> Vec<usize> {
        if size >= self.len() {
            return (0..self.len()).collect();
        }
        flips_ml::rng::sample_without_replacement(rng, self.len(), size)
    }
}

/// The class-mean geometry shared by a training population and its test
/// set.
///
/// Class means are sampled once per (profile, seed) so that every party's
/// data and the global test set are drawn from the *same* class-conditional
/// Gaussians. Means are isotropic Gaussian directions scaled to the
/// profile's `separation` radius; with the profiles' dimensionalities the
/// directions are near-orthogonal, giving a task whose difficulty is set by
/// `separation / noise_std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassGeometry {
    /// Per-class mean vectors, `classes × feature_dim`.
    pub means: Matrix,
    /// Within-class noise standard deviation.
    pub noise_std: f64,
}

impl ClassGeometry {
    /// Samples the geometry for a profile. Deterministic in `seed`.
    pub fn for_profile(profile: &DatasetProfile, seed: u64) -> Self {
        let mut rng = seeded(derive_seed(seed, 0x0C1A_55E5));
        let mut means = Matrix::zeros(profile.classes, profile.feature_dim);
        for c in 0..profile.classes {
            let row = means.row_mut(c);
            for slot in row.iter_mut() {
                *slot = normal(&mut rng, 0.0, 1.0) as f32;
            }
            let norm = flips_ml::matrix::l2_norm(row).max(1e-9);
            let scale = profile.separation as f32 / norm;
            for slot in row.iter_mut() {
                *slot *= scale;
            }
        }
        ClassGeometry { means, noise_std: profile.noise_std }
    }

    /// Draws one sample of class `label`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, label: usize) -> Vec<f32> {
        self.means.row(label).iter().map(|&m| m + normal(rng, 0.0, self.noise_std) as f32).collect()
    }

    /// Generates `n` samples with labels drawn i.i.d. from `priors`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, priors: &[f64], n: usize) -> Dataset {
        let classes = self.means.rows();
        assert_eq!(priors.len(), classes, "prior length mismatch");
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let label = categorical(rng, priors);
            rows.push(self.sample(rng, label));
            y.push(label);
        }
        Dataset::new(Matrix::from_rows(&rows), y, classes)
    }

    /// Generates a dataset with *exact* per-class counts.
    pub fn generate_counts<R: Rng + ?Sized>(&self, rng: &mut R, counts: &[usize]) -> Dataset {
        let classes = self.means.rows();
        assert_eq!(counts.len(), classes, "count length mismatch");
        let total: usize = counts.iter().sum();
        let mut rows = Vec::with_capacity(total);
        let mut y = Vec::with_capacity(total);
        for (label, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                rows.push(self.sample(rng, label));
                y.push(label);
            }
        }
        // Shuffle so mini-batches are not label-sorted.
        let mut order: Vec<usize> = (0..total).collect();
        shuffle(rng, &mut order);
        let rows: Vec<Vec<f32>> = order.iter().map(|&i| rows[i].clone()).collect();
        let y: Vec<usize> = order.iter().map(|&i| y[i]).collect();
        if rows.is_empty() {
            return Dataset::new(Matrix::zeros(0, self.means.cols()), y, classes);
        }
        Dataset::new(Matrix::from_rows(&rows), y, classes)
    }
}

/// Generates the profile's full training population: `total` samples whose
/// label counts match the profile's class priors exactly (largest-remainder
/// apportionment). Deterministic in `seed`.
pub fn generate_population(profile: &DatasetProfile, total: usize, seed: u64) -> Dataset {
    let geometry = ClassGeometry::for_profile(profile, seed);
    let counts = largest_remainder(&profile.class_priors, total);
    let mut rng = seeded(derive_seed(seed, 0xDA7A));
    geometry.generate_counts(&mut rng, &counts)
}

/// Builds the paper's global *balanced* test set (§4.4): `per_class`
/// samples of every label, generated from the same class geometry as the
/// training population (same `seed`), unknown to any party.
pub fn balanced_test_set(profile: &DatasetProfile, per_class: usize, seed: u64) -> Dataset {
    let geometry = ClassGeometry::for_profile(profile, seed);
    let mut rng = seeded(derive_seed(seed, 0x7E57));
    geometry.generate_counts(&mut rng, &vec![per_class; profile.classes])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_matches_priors_exactly() {
        let profile = DatasetProfile::ecg();
        let ds = generate_population(&profile, 1000, 42);
        assert_eq!(ds.len(), 1000);
        let counts = ds.label_counts();
        let expected = largest_remainder(&profile.class_priors, 1000);
        let got: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn population_is_seed_deterministic() {
        let profile = DatasetProfile::femnist();
        let a = generate_population(&profile, 200, 7);
        let b = generate_population(&profile, 200, 7);
        assert_eq!(a, b);
        let c = generate_population(&profile, 200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn test_set_is_balanced() {
        let profile = DatasetProfile::ham10000();
        let ts = balanced_test_set(&profile, 30, 42);
        assert_eq!(ts.len(), 30 * 7);
        assert!(ts.label_counts().iter().all(|&c| c == 30));
    }

    #[test]
    fn test_set_shares_geometry_with_population() {
        // Same seed ⇒ same class means ⇒ a classifier trained on the
        // population generalizes to the test set. Verify means line up by
        // comparing per-class sample averages across the two draws.
        let profile = DatasetProfile::fashion_mnist();
        let pop = generate_population(&profile, 4000, 5);
        let ts = balanced_test_set(&profile, 200, 5);
        for class in 0..profile.classes {
            let mean_of = |ds: &Dataset| -> Vec<f32> {
                let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.y[i] == class).collect();
                let sub = ds.x.select_rows(&idx);
                let mut sums = sub.col_sums();
                for s in &mut sums {
                    *s /= idx.len() as f32;
                }
                sums
            };
            let d = flips_ml::matrix::euclidean_distance(&mean_of(&pop), &mean_of(&ts));
            assert!(d < 1.0, "class {class} means differ by {d}");
        }
    }

    #[test]
    fn class_geometry_means_have_separation_radius() {
        let profile = DatasetProfile::ecg();
        let g = ClassGeometry::for_profile(&profile, 3);
        for row in g.means.rows_iter() {
            let norm = flips_ml::matrix::l2_norm(row);
            assert!((norm - profile.separation as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn subset_extracts_requested_samples() {
        let profile = DatasetProfile::femnist();
        let ds = generate_population(&profile, 50, 1);
        let sub = ds.subset(&[0, 10, 20]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.y[1], ds.y[10]);
        assert_eq!(sub.x.row(2), ds.x.row(20));
    }

    #[test]
    fn sample_batch_bounds() {
        let profile = DatasetProfile::femnist();
        let ds = generate_population(&profile, 20, 1);
        let mut rng = seeded(0);
        let b = ds.sample_batch(&mut rng, 8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&i| i < 20));
        let all = ds.sample_batch(&mut rng, 100);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn generate_counts_handles_empty() {
        let profile = DatasetProfile::ecg();
        let g = ClassGeometry::for_profile(&profile, 9);
        let mut rng = seeded(1);
        let ds = g.generate_counts(&mut rng, &[0, 0, 0, 0, 0]);
        assert!(ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn dataset_new_rejects_bad_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }
}
