//! Property-based tests of selection-policy invariants shared by all
//! policies: no duplicates, valid ids, request-size compliance.

use flips_selection::oort::OortConfig;
use flips_selection::tifl::TiflConfig;
use flips_selection::{
    FlipsSelector, GradClusSelector, OortSelector, ParticipantSelector, RandomSelector,
    RoundFeedback, TiflSelector,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds every selector over `n` parties with `clusters` FLIPS clusters.
fn all_selectors(n: usize, clusters: usize, seed: u64) -> Vec<Box<dyn ParticipantSelector>> {
    let cluster_assignment: Vec<Vec<usize>> =
        (0..clusters).map(|c| (0..n).filter(|p| p % clusters == c).collect()).collect();
    vec![
        Box::new(RandomSelector::new(n, seed)),
        Box::new(FlipsSelector::new(cluster_assignment).unwrap()),
        Box::new(OortSelector::new(vec![50; n], OortConfig::default(), seed)),
        Box::new(GradClusSelector::new(n, 8, seed).unwrap()),
        Box::new(
            TiflSelector::new(
                (0..n).map(|i| (i % 7) as f64 + 0.5).collect(),
                TiflConfig::default(),
                seed,
            )
            .unwrap(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn selections_are_valid_distinct_and_sufficient(
        n in 4usize..40,
        seed in 0u64..500,
        rounds in 1usize..8,
    ) {
        let clusters = (n / 4).max(2);
        let target = (n / 3).max(1);
        for mut selector in all_selectors(n, clusters, seed) {
            for round in 0..rounds {
                let picks = selector.select(round, target).unwrap();
                // At least the requested size (overprovisioning may add).
                prop_assert!(
                    picks.len() >= target,
                    "{} returned {} < {target}",
                    selector.name(),
                    picks.len()
                );
                // All ids valid and pairwise distinct.
                let set: HashSet<_> = picks.iter().copied().collect();
                prop_assert_eq!(set.len(), picks.len(), "{} duplicated", selector.name());
                prop_assert!(picks.iter().all(|&p| p < n));
                // Feed back a plausible outcome.
                let feedback = RoundFeedback {
                    round,
                    selected: picks.clone(),
                    completed: picks.clone(),
                    train_loss: picks.iter().map(|&p| (p, 1.0)).collect(),
                    duration: picks.iter().map(|&p| (p, 0.5)).collect(),
                    global_accuracy: 0.5,
                    ..Default::default()
                };
                selector.report(&feedback);
            }
        }
    }

    #[test]
    fn selectors_tolerate_straggler_feedback(
        n in 6usize..30,
        seed in 0u64..300,
    ) {
        let target = (n / 3).max(2);
        for mut selector in all_selectors(n, 3, seed) {
            for round in 0..5 {
                let picks = selector.select(round, target).unwrap();
                let (stragglers, completed): (Vec<_>, Vec<_>) =
                    picks.iter().partition(|&&p| p % 3 == 0);
                let feedback = RoundFeedback {
                    round,
                    selected: picks.clone(),
                    completed: completed.clone(),
                    stragglers,
                    train_loss: completed.iter().map(|&p| (p, 0.8)).collect(),
                    ..Default::default()
                };
                selector.report(&feedback);
            }
            // Still functional after straggler-heavy feedback.
            let picks = selector.select(99, target).unwrap();
            prop_assert!(picks.len() >= target);
        }
    }

    #[test]
    fn flips_pick_counts_stay_balanced_within_clusters(
        per_cluster in 2usize..8,
        clusters in 2usize..6,
        rounds in 2usize..12,
    ) {
        let assignment: Vec<Vec<usize>> = (0..clusters)
            .map(|c| (c * per_cluster..(c + 1) * per_cluster).collect())
            .collect();
        let mut s = FlipsSelector::new(assignment).unwrap();
        let target = clusters; // one per cluster per round
        for round in 0..rounds {
            let _ = s.select(round, target).unwrap();
        }
        // Within every cluster, pick counts differ by at most 1 — the
        // min-heap fairness invariant of Algorithm 1.
        let counts = s.party_pick_counts();
        for c in 0..clusters {
            let members = &counts[c * per_cluster..(c + 1) * per_cluster];
            let min = members.iter().min().unwrap();
            let max = members.iter().max().unwrap();
            prop_assert!(max - min <= 1, "cluster {c} counts {members:?}");
        }
    }

    #[test]
    fn flips_rounds_cover_clusters_equitably(
        clusters in 2usize..8,
        per_cluster in 2usize..6,
    ) {
        let assignment: Vec<Vec<usize>> = (0..clusters)
            .map(|c| (c * per_cluster..(c + 1) * per_cluster).collect())
            .collect();
        let mut s = FlipsSelector::new(assignment).unwrap();
        // Nr = 2 per cluster.
        let target = clusters * 2.min(per_cluster);
        let picks = s.select(0, target).unwrap();
        let mut per = vec![0usize; clusters];
        for p in picks {
            per[p / per_cluster] += 1;
        }
        let min = per.iter().min().unwrap();
        let max = per.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unequal cluster representation {per:?}");
    }
}
