//! Uniform random participant selection — the predominant FL default
//! (FedAvg, FedProx, FedYogi all sample `S(r)` uniformly; paper §2.1) and
//! the primary baseline of the evaluation.

use crate::types::{validate_request, ParticipantSelector, PartyId, RoundFeedback, SelectionError};
use flips_ml::rng::{sample_without_replacement, seeded};
use rand::rngs::StdRng;

/// Selects every party with equal probability, without replacement.
#[derive(Debug)]
pub struct RandomSelector {
    num_parties: usize,
    rng: StdRng,
}

impl RandomSelector {
    /// Creates a selector over `num_parties` parties.
    pub fn new(num_parties: usize, seed: u64) -> Self {
        RandomSelector { num_parties, rng: seeded(seed) }
    }

    /// Creates a selector over a streamed roster — identical to
    /// [`RandomSelector::new`] with the source's party count; random
    /// selection needs no per-party state at all, so a million-party
    /// roster costs this policy nothing.
    pub fn from_source(source: &dyn crate::streaming::CandidateSource, seed: u64) -> Self {
        RandomSelector::new(source.num_parties(), seed)
    }
}

impl ParticipantSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, _round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        validate_request(target, self.num_parties)?;
        Ok(sample_without_replacement(&mut self.rng, self.num_parties, target))
    }

    fn report(&mut self, _feedback: &RoundFeedback) {}

    fn num_parties(&self) -> usize {
        self.num_parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_without_duplicates() {
        let mut s = RandomSelector::new(50, 1);
        let picks = s.select(0, 10).unwrap();
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picks.iter().all(|&p| p < 50));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let mut a = RandomSelector::new(30, 7);
        let mut b = RandomSelector::new(30, 7);
        for round in 0..5 {
            assert_eq!(a.select(round, 6).unwrap(), b.select(round, 6).unwrap());
        }
    }

    #[test]
    fn eventually_covers_all_parties() {
        // The fairness property random selection does guarantee.
        let mut s = RandomSelector::new(20, 3);
        let mut seen = std::collections::HashSet::new();
        for round in 0..100 {
            for p in s.select(round, 5).unwrap() {
                seen.insert(p);
            }
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn rejects_invalid_targets() {
        let mut s = RandomSelector::new(5, 1);
        assert!(s.select(0, 0).is_err());
        assert!(s.select(0, 6).is_err());
    }

    #[test]
    fn is_not_distribution_aware() {
        // Statistical sanity: over many rounds, per-party selection counts
        // are within a loose band of uniform — random selection cannot
        // prioritize anything.
        let mut s = RandomSelector::new(10, 11);
        let mut counts = [0usize; 10];
        for round in 0..1000 {
            for p in s.select(round, 2).unwrap() {
                counts[p] += 1;
            }
        }
        // Expected 200 each.
        for (i, &c) in counts.iter().enumerate() {
            assert!((140..=260).contains(&c), "party {i} picked {c} times");
        }
    }
}
