//! The GradClus baseline — clustered sampling on model updates (Fraboni
//! et al., ICML'21; paper §4.1).
//!
//! GradClus maintains a per-party *gradient sketch*. Sketches start as
//! random vectors and are replaced by (a low-dimensional projection of)
//! the party's real model update whenever the party participates — the
//! paper: "The gradients assigned in the beginning are random numbers and
//! get iteratively updated as the party gets picked." Each round it
//! performs hierarchical clustering over the pairwise similarity matrix of
//! all sketches into `S(r)` clusters and samples **one party per cluster
//! uniformly at random**.

use crate::types::{validate_request, ParticipantSelector, PartyId, RoundFeedback, SelectionError};
use flips_clustering::hierarchical::{hierarchical_from_distances, pairwise_cosine_distance};
use flips_clustering::Linkage;
use flips_ml::rng::{normal, seeded};
use rand::rngs::StdRng;
use rand::Rng;

/// The gradient-clustering participant selector.
#[derive(Debug)]
pub struct GradClusSelector {
    sketches: Vec<Vec<f32>>,
    sketch_dim: usize,
    linkage: Linkage,
    rng: StdRng,
}

impl GradClusSelector {
    /// Creates a selector over `num_parties` parties with
    /// `sketch_dim`-dimensional gradient sketches (initialized randomly).
    ///
    /// # Errors
    ///
    /// Rejects zero parties or a zero sketch dimension.
    pub fn new(num_parties: usize, sketch_dim: usize, seed: u64) -> Result<Self, SelectionError> {
        if num_parties == 0 {
            return Err(SelectionError::InvalidConfiguration("zero parties".into()));
        }
        if sketch_dim == 0 {
            return Err(SelectionError::InvalidConfiguration("zero sketch dim".into()));
        }
        let mut rng = seeded(seed);
        let sketches = (0..num_parties)
            .map(|_| (0..sketch_dim).map(|_| normal(&mut rng, 0.0, 1.0) as f32).collect())
            .collect();
        Ok(GradClusSelector { sketches, sketch_dim, linkage: Linkage::Average, rng })
    }

    /// Creates a selector over a streamed roster — identical to
    /// [`GradClusSelector::new`] with the source's party count. The
    /// per-party sketches (`sketch_dim` f32s each) remain dense: they
    /// *are* the policy's state, refreshed from round feedback.
    ///
    /// # Errors
    ///
    /// Rejects zero parties or a zero sketch dimension.
    pub fn from_source(
        source: &dyn crate::streaming::CandidateSource,
        sketch_dim: usize,
        seed: u64,
    ) -> Result<Self, SelectionError> {
        GradClusSelector::new(source.num_parties(), sketch_dim, seed)
    }

    /// The sketch dimension parties' updates are projected to.
    pub fn sketch_dim(&self) -> usize {
        self.sketch_dim
    }

    /// Current sketch of a party (diagnostics).
    pub fn sketch(&self, party: PartyId) -> &[f32] {
        &self.sketches[party]
    }
}

impl ParticipantSelector for GradClusSelector {
    fn name(&self) -> &'static str {
        "grad_cls"
    }

    fn select(&mut self, _round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        let n = self.sketches.len();
        validate_request(target, n)?;
        // Hierarchical clustering over gradient similarity into `target`
        // clusters; similarity = cosine (direction of the update matters,
        // not its magnitude).
        let distances = pairwise_cosine_distance(&self.sketches)
            .map_err(|e| SelectionError::InvalidConfiguration(e.to_string()))?;
        let labels = hierarchical_from_distances(&distances, target, self.linkage)
            .map_err(|e| SelectionError::InvalidConfiguration(e.to_string()))?;
        let mut clusters: Vec<Vec<PartyId>> = vec![Vec::new(); target];
        for (party, &c) in labels.iter().enumerate() {
            clusters[c].push(party);
        }
        // One uniform pick per cluster.
        let mut selected = Vec::with_capacity(target);
        for members in clusters.iter().filter(|m| !m.is_empty()) {
            selected.push(members[self.rng.random_range(0..members.len())]);
        }
        Ok(selected)
    }

    fn report(&mut self, feedback: &RoundFeedback) {
        for (&party, sketch) in &feedback.update_sketch {
            if party < self.sketches.len() && sketch.len() == self.sketch_dim {
                self.sketches[party] = sketch.clone();
            }
        }
    }

    fn num_parties(&self) -> usize {
        self.sketches.len()
    }
}

/// Projects a flat model update onto `dim` buckets by strided averaging —
/// the sketch the FL runtime reports for GradClus.
///
/// Deterministic and cheap: bucket `b` averages coordinates
/// `b, b+dim, b+2·dim, ...`, preserving coarse update direction.
pub fn sketch_update(update: &[f32], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "sketch dimension must be positive");
    let mut out = vec![0.0f32; dim];
    let mut counts = vec![0u32; dim];
    for (i, &v) in update.iter().enumerate() {
        out[i % dim] += v;
        counts[i % dim] += 1;
    }
    for (o, c) in out.iter_mut().zip(counts) {
        if c > 0 {
            *o /= c as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn selects_requested_count_without_duplicates() {
        let mut s = GradClusSelector::new(30, 8, 1).unwrap();
        let picks = s.select(0, 10).unwrap();
        assert_eq!(picks.len(), 10);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn picks_one_party_per_gradient_group() {
        // Construct sketches forming two clear direction groups, then ask
        // for 2 clusters: exactly one pick per group.
        let mut s = GradClusSelector::new(10, 4, 2).unwrap();
        let mut fb = RoundFeedback::default();
        for p in 0..10 {
            let dir = if p < 5 { vec![1.0, 1.0, 0.0, 0.0] } else { vec![0.0, 0.0, -1.0, 1.0] };
            fb.update_sketch.insert(p, dir);
        }
        s.report(&fb);
        for round in 0..10 {
            let picks = s.select(round, 2).unwrap();
            assert_eq!(picks.len(), 2);
            let groups: HashSet<bool> = picks.iter().map(|&p| p < 5).collect();
            assert_eq!(groups.len(), 2, "round {round}: picks {picks:?} not diverse");
        }
    }

    #[test]
    fn report_updates_sketches() {
        let mut s = GradClusSelector::new(5, 3, 3).unwrap();
        let before = s.sketch(2).to_vec();
        let mut fb = RoundFeedback::default();
        fb.update_sketch.insert(2, vec![9.0, 9.0, 9.0]);
        s.report(&fb);
        assert_ne!(s.sketch(2), &before[..]);
        assert_eq!(s.sketch(2), &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn report_ignores_malformed_sketches() {
        let mut s = GradClusSelector::new(5, 3, 4).unwrap();
        let before = s.sketch(1).to_vec();
        let mut fb = RoundFeedback::default();
        fb.update_sketch.insert(1, vec![1.0]); // wrong dim
        fb.update_sketch.insert(99, vec![1.0, 1.0, 1.0]); // unknown party
        s.report(&fb);
        assert_eq!(s.sketch(1), &before[..]);
    }

    #[test]
    fn sketch_update_strided_average() {
        let update = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sk = sketch_update(&update, 2);
        // Bucket 0: (1+3+5)/3, bucket 1: (2+4+6)/3.
        assert_eq!(sk, vec![3.0, 4.0]);
    }

    #[test]
    fn sketch_update_handles_short_input() {
        let sk = sketch_update(&[2.0], 4);
        assert_eq!(sk, vec![2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn similar_updates_produce_similar_sketches() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let mut b = a.clone();
        b[0] += 0.01;
        let sa = sketch_update(&a, 8);
        let sb = sketch_update(&b, 8);
        assert!(flips_ml::matrix::euclidean_distance(&sa, &sb) < 0.01);
    }

    #[test]
    fn rejects_invalid_configs_and_targets() {
        assert!(GradClusSelector::new(0, 8, 1).is_err());
        assert!(GradClusSelector::new(8, 0, 1).is_err());
        let mut s = GradClusSelector::new(5, 2, 1).unwrap();
        assert!(s.select(0, 0).is_err());
        assert!(s.select(0, 6).is_err());
    }

    #[test]
    fn deterministic_per_seed_and_feedback() {
        let run = || {
            let mut s = GradClusSelector::new(20, 4, 77).unwrap();
            let mut all = Vec::new();
            for round in 0..4 {
                let picks = s.select(round, 5).unwrap();
                let mut fb = RoundFeedback::default();
                for &p in &picks {
                    fb.update_sketch.insert(p, vec![p as f32, 1.0, -(p as f32), 0.5]);
                }
                s.report(&fb);
                all.push(picks);
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn initial_random_sketches_give_near_random_selection() {
        // Before any feedback, sketches are random noise: selection should
        // still return valid, diverse parties.
        let mut s = GradClusSelector::new(25, 6, 5).unwrap();
        let mut seen: HashMap<PartyId, usize> = HashMap::new();
        for round in 0..20 {
            for p in s.select(round, 5).unwrap() {
                *seen.entry(p).or_default() += 1;
            }
        }
        assert!(seen.len() > 10, "selection collapsed to {} parties", seen.len());
    }
}
