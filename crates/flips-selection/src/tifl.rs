//! The TiFL baseline — tier-based federated learning (Chai et al.,
//! HPDC'20; paper §4.1).
//!
//! TiFL groups parties into **latency tiers** from profiled training
//! times and, each round, picks one tier and samples all `Nr` parties from
//! it, so a round is never slower than its slowest tier — the straggler
//! mitigation. Two refinements from the paper:
//!
//! - **credits** bound how often each tier may be chosen, preserving
//!   fairness across tiers;
//! - **adaptive tier selection** re-weights the tier-choice probability
//!   toward tiers whose observed global-model accuracy is lagging, and
//!   re-tiers parties from freshly observed durations on the fly.

use crate::types::{validate_request, ParticipantSelector, PartyId, RoundFeedback, SelectionError};
use flips_ml::rng::{sample_without_replacement, seeded};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Tunables of the TiFL policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiflConfig {
    /// Number of latency tiers (the paper's default is 5).
    pub num_tiers: usize,
    /// Selection credits granted to each tier.
    pub credits_per_tier: usize,
    /// Re-tier from observed durations every this many rounds
    /// (0 disables adaptive re-tiering).
    pub retier_every: usize,
    /// EWMA weight for per-tier accuracy estimates.
    pub accuracy_ewma: f64,
}

impl Default for TiflConfig {
    fn default() -> Self {
        TiflConfig { num_tiers: 5, credits_per_tier: 50, retier_every: 20, accuracy_ewma: 0.5 }
    }
}

/// The TiFL participant selector.
#[derive(Debug)]
pub struct TiflSelector {
    config: TiflConfig,
    /// Latest latency estimate per party (profiled, then updated online).
    latencies: Vec<f64>,
    /// Tier id per party (0 = fastest).
    tier_of: Vec<usize>,
    /// Members per tier.
    tiers: Vec<Vec<PartyId>>,
    /// Remaining credits per tier.
    credits: Vec<usize>,
    /// EWMA of global accuracy observed when each tier was used.
    tier_accuracy: Vec<Option<f64>>,
    /// The tier charged for the in-flight round.
    last_tier: Option<usize>,
    rng: StdRng,
}

impl TiflSelector {
    /// Creates a selector from profiled per-party training latencies
    /// (seconds) — the output of TiFL's profiling phase.
    ///
    /// # Errors
    ///
    /// Rejects an empty profile or a zero tier count.
    pub fn new(latencies: Vec<f64>, config: TiflConfig, seed: u64) -> Result<Self, SelectionError> {
        if latencies.is_empty() {
            return Err(SelectionError::InvalidConfiguration("no parties profiled".into()));
        }
        if config.num_tiers == 0 {
            return Err(SelectionError::InvalidConfiguration("zero tiers".into()));
        }
        let num_tiers = config.num_tiers.min(latencies.len());
        let (tiers, tier_of) = build_tiers(&latencies, num_tiers);
        Ok(TiflSelector {
            credits: vec![config.credits_per_tier; tiers.len()],
            tier_accuracy: vec![None; tiers.len()],
            tiers,
            tier_of,
            latencies,
            config,
            last_tier: None,
            rng: seeded(seed),
        })
    }

    /// Creates a selector over a streamed roster, pulling each party's
    /// profiled latency from the source — bit-identical to
    /// [`TiflSelector::new`] fed the same profile. Tier membership and
    /// latency estimates stay dense (≈48 B/party: TiFL re-tiers from
    /// them online), but no caller-side profile vector is materialized.
    ///
    /// # Errors
    ///
    /// Rejects an empty roster or a zero tier count.
    pub fn from_source(
        source: &dyn crate::streaming::CandidateSource,
        config: TiflConfig,
        seed: u64,
    ) -> Result<Self, SelectionError> {
        let latencies = (0..source.num_parties()).map(|p| source.latency_hint(p)).collect();
        TiflSelector::new(latencies, config, seed)
    }

    /// Current tier membership (diagnostics; tier 0 is fastest).
    pub fn tiers(&self) -> &[Vec<PartyId>] {
        &self.tiers
    }

    /// Remaining credits per tier.
    pub fn credits(&self) -> &[usize] {
        &self.credits
    }

    /// Adaptive tier-choice weights: unevaluated tiers weigh highest;
    /// evaluated tiers weigh by accuracy rank (worst accuracy → largest
    /// weight), per TiFL §4.3.
    fn tier_weights(&self) -> Vec<f64> {
        let m = self.tiers.len();
        // Rank evaluated tiers by accuracy ascending.
        let mut evaluated: Vec<(usize, f64)> = self
            .tier_accuracy
            .iter()
            .enumerate()
            .filter_map(|(t, acc)| acc.map(|a| (t, a)))
            .collect();
        evaluated.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut weights = vec![m as f64; m]; // unevaluated default: max weight
        for (rank, &(t, _)) in evaluated.iter().enumerate() {
            weights[t] = (m - rank) as f64;
        }
        // Zero out tiers without credits or members.
        for (t, w) in weights.iter_mut().enumerate() {
            if self.credits[t] == 0 || self.tiers[t].is_empty() {
                *w = 0.0;
            }
        }
        weights
    }

    fn retier(&mut self) {
        let num_tiers = self.config.num_tiers.min(self.latencies.len());
        let (tiers, tier_of) = build_tiers(&self.latencies, num_tiers);
        self.tiers = tiers;
        self.tier_of = tier_of;
        // Credits and accuracy estimates carry over per tier index; resize
        // defensively in case the tier count changed.
        self.credits.resize(self.tiers.len(), self.config.credits_per_tier);
        self.tier_accuracy.resize(self.tiers.len(), None);
    }
}

/// Sorts parties by latency and splits them into `num_tiers` equal bands.
fn build_tiers(latencies: &[f64], num_tiers: usize) -> (Vec<Vec<PartyId>>, Vec<usize>) {
    let mut order: Vec<PartyId> = (0..latencies.len()).collect();
    order.sort_by(|&a, &b| {
        latencies[a].partial_cmp(&latencies[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut tiers = vec![Vec::new(); num_tiers];
    let per = latencies.len().div_ceil(num_tiers);
    let mut tier_of = vec![0usize; latencies.len()];
    for (i, &p) in order.iter().enumerate() {
        let t = (i / per).min(num_tiers - 1);
        tiers[t].push(p);
        tier_of[p] = t;
    }
    (tiers, tier_of)
}

impl ParticipantSelector for TiflSelector {
    fn name(&self) -> &'static str {
        "tifl"
    }

    fn select(&mut self, round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        validate_request(target, self.latencies.len())?;
        if self.config.retier_every > 0
            && round > 0
            && round.is_multiple_of(self.config.retier_every)
        {
            self.retier();
        }
        let mut weights = self.tier_weights();
        if weights.iter().all(|&w| w == 0.0) {
            // All credits exhausted: TiFL would stop; a long-running job
            // refreshes credits instead (documented deviation for round
            // budgets exceeding total credits).
            self.credits.iter_mut().for_each(|c| *c = self.config.credits_per_tier);
            weights = self.tier_weights();
        }
        let tier = flips_data::dist::categorical(&mut self.rng, &weights);
        self.credits[tier] = self.credits[tier].saturating_sub(1);
        self.last_tier = Some(tier);

        // Sample within the tier; top up from the next-fastest tiers when
        // the tier is smaller than the round.
        let mut selected = Vec::with_capacity(target);
        let mut tier_order: Vec<usize> =
            std::iter::once(tier).chain((0..self.tiers.len()).filter(|&t| t != tier)).collect();
        tier_order[1..].sort_unstable();
        for t in tier_order {
            if selected.len() >= target {
                break;
            }
            let members = &self.tiers[t];
            let want = (target - selected.len()).min(members.len());
            if want == 0 {
                continue;
            }
            let picks = sample_without_replacement(&mut self.rng, members.len(), want);
            selected.extend(picks.into_iter().map(|i| members[i]));
        }
        Ok(selected)
    }

    fn report(&mut self, feedback: &RoundFeedback) {
        // Online latency refresh for adaptive re-tiering.
        for (&p, &d) in &feedback.duration {
            if p < self.latencies.len() {
                self.latencies[p] = d;
            }
        }
        // Stragglers observably exceeded the deadline: inflate their
        // estimate so re-tiering demotes them.
        for &p in &feedback.stragglers {
            if p < self.latencies.len() {
                self.latencies[p] *= 2.0;
            }
        }
        if let Some(t) = self.last_tier.take() {
            let acc = feedback.global_accuracy;
            self.tier_accuracy[t] = Some(match self.tier_accuracy[t] {
                Some(prev) => {
                    (1.0 - self.config.accuracy_ewma) * prev + self.config.accuracy_ewma * acc
                }
                None => acc,
            });
        }
    }

    fn num_parties(&self) -> usize {
        self.latencies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// 25 parties with latency equal to party id (5 clean tiers of 5).
    fn selector() -> TiflSelector {
        let latencies: Vec<f64> = (0..25).map(|i| i as f64).collect();
        TiflSelector::new(latencies, TiflConfig::default(), 3).unwrap()
    }

    #[test]
    fn tiers_band_by_latency() {
        let s = selector();
        assert_eq!(s.tiers().len(), 5);
        for (t, members) in s.tiers().iter().enumerate() {
            assert_eq!(members.len(), 5);
            for &p in members {
                assert_eq!(p / 5, t, "party {p} in tier {t}");
            }
        }
    }

    #[test]
    fn a_round_draws_from_one_tier_when_it_fits() {
        let mut s = selector();
        for round in 0..10 {
            let picks = s.select(round, 4).unwrap();
            assert_eq!(picks.len(), 4);
            let tiers: HashSet<usize> = picks.iter().map(|&p| s.tier_of[p]).collect();
            assert_eq!(tiers.len(), 1, "round {round} mixed tiers: {picks:?}");
        }
    }

    #[test]
    fn oversized_round_spills_into_other_tiers() {
        let mut s = selector();
        let picks = s.select(0, 12).unwrap();
        assert_eq!(picks.len(), 12);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn credits_are_consumed_and_refreshed() {
        let latencies: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let cfg =
            TiflConfig { num_tiers: 2, credits_per_tier: 1, retier_every: 0, ..Default::default() };
        let mut s = TiflSelector::new(latencies, cfg, 1).unwrap();
        let _ = s.select(0, 3).unwrap();
        let _ = s.select(1, 3).unwrap();
        assert_eq!(s.credits(), &[0, 0]);
        // Third round triggers a refresh rather than a panic.
        let picks = s.select(2, 3).unwrap();
        assert_eq!(picks.len(), 3);
        assert!(s.credits().iter().sum::<usize>() > 0);
    }

    #[test]
    fn lagging_tiers_gain_weight() {
        let mut s = selector();
        // Tell the selector tier 0 performs great and tier 4 poorly.
        for (tier, acc) in [(0usize, 0.9f64), (4, 0.2)] {
            s.last_tier = Some(tier);
            s.report(&RoundFeedback { global_accuracy: acc, ..Default::default() });
        }
        let w = s.tier_weights();
        assert!(w[4] > w[0], "lagging tier must outweigh leading tier: {w:?}");
        // Unevaluated tiers keep the maximum weight.
        assert_eq!(w[1], 5.0);
    }

    #[test]
    fn straggler_latency_inflation_demotes_on_retier() {
        let latencies: Vec<f64> = vec![1.0; 10];
        let cfg = TiflConfig { num_tiers: 2, retier_every: 1, ..Default::default() };
        let mut s = TiflSelector::new(latencies, cfg, 5).unwrap();
        // Party 0 straggles hard, repeatedly.
        for round in 0..3 {
            let _ = s.select(round, 2).unwrap();
            s.report(&RoundFeedback { round, stragglers: vec![0], ..Default::default() });
        }
        let _ = s.select(3, 2).unwrap(); // triggers retier
        assert_eq!(s.tier_of[0], 1, "chronic straggler must land in the slow tier");
    }

    #[test]
    fn accuracy_ewma_blends() {
        let mut s = selector();
        s.last_tier = Some(2);
        s.report(&RoundFeedback { global_accuracy: 0.4, ..Default::default() });
        s.last_tier = Some(2);
        s.report(&RoundFeedback { global_accuracy: 0.8, ..Default::default() });
        let acc = s.tier_accuracy[2].unwrap();
        assert!((acc - 0.6).abs() < 1e-9, "0.5-EWMA of 0.4 then 0.8 is 0.6, got {acc}");
    }

    #[test]
    fn rejects_bad_configs_and_targets() {
        assert!(TiflSelector::new(vec![], TiflConfig::default(), 1).is_err());
        assert!(TiflSelector::new(vec![1.0], TiflConfig { num_tiers: 0, ..Default::default() }, 1)
            .is_err());
        let mut s = selector();
        assert!(s.select(0, 0).is_err());
        assert!(s.select(0, 26).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let latencies: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
            let mut s = TiflSelector::new(latencies, TiflConfig::default(), 11).unwrap();
            (0..6).map(|r| s.select(r, 5).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_tiers_than_parties_is_clamped() {
        let s = TiflSelector::new(vec![1.0, 2.0], TiflConfig::default(), 1).unwrap();
        assert_eq!(s.tiers().len(), 2);
    }
}
