//! # flips-selection — participant-selection policies
//!
//! The paper's evaluation (§4.1) compares five ways of choosing the `Nr`
//! parties that train in each FL round:
//!
//! | policy | module | idea |
//! |---|---|---|
//! | Random | [`random`] | uniform sampling without replacement (FedAvg default) |
//! | **FLIPS** | [`flips`] | Algorithm 1 — equitable round-robin over label-distribution clusters, pick-count fairness, straggler overprovisioning from straggler clusters |
//! | Oort | [`oort`] | Lai et al. (OSDI'21) — statistical × system utility with ε-greedy exploration |
//! | GradClus | [`gradclus`] | Fraboni et al. (ICML'21) — hierarchical clustering of gradient sketches, one pick per cluster |
//! | TiFL | [`tifl`] | Chai et al. (HPDC'20) — latency tiers with credits and adaptive accuracy-driven tier probabilities |
//!
//! All policies implement [`types::ParticipantSelector`]; the FL runtime
//! drives them through a select → train → report loop and is
//! policy-agnostic.
//!
//! # Example
//!
//! Every selector answers the same question — which parties train this
//! round:
//!
//! ```
//! use flips_selection::{ParticipantSelector, RandomSelector};
//!
//! let mut selector = RandomSelector::new(10, 7);
//! let cohort = selector.select(0, 3).unwrap();
//! assert_eq!(cohort.len(), 3);
//! assert!(cohort.iter().all(|&p| p < 10), "cohort drawn from the roster");
//! ```

pub mod flips;
pub mod gradclus;
pub mod oort;
pub mod random;
pub mod streaming;
pub mod tifl;
pub mod types;

pub use flips::FlipsSelector;
pub use gradclus::GradClusSelector;
pub use oort::OortSelector;
pub use random::RandomSelector;
pub use streaming::{BoundedTopK, CandidateSource, Reservoir, VecSource};
pub use tifl::TiflSelector;
pub use types::{ParticipantSelector, PartyId, RoundFeedback, SelectionError, SelectorKind};
