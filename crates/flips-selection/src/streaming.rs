//! Streaming candidate pools — selector construction without a
//! materialized roster.
//!
//! The flat path hands every selector dense per-party vectors built by
//! the caller (sample counts, latency profiles, label distributions).
//! That is fine at 10³ parties and fatal at 10⁶: the roster no longer
//! fits in one allocation, and most of it is cold at any given round.
//! This module inverts the dependency — a [`CandidateSource`] *streams*
//! per-party descriptors to whoever is constructing a selector, and two
//! bounded passes ([`BoundedTopK`], [`Reservoir`]) extract what a policy
//! actually needs from the stream in O(k) memory.
//!
//! Determinism contract: every helper here is either *exactly*
//! equivalent to the dense computation it replaces ([`BoundedTopK`]
//! yields the same parties in the same order as a full sort;
//! `from_source` constructors reproduce the flat constructor
//! bit-for-bit when fed the same descriptors) or is a seeded, documented
//! approximation ([`Reservoir`] capping the FLIPS clustering pool). The
//! scale-equivalence suite pins the former against the selector goldens.

use crate::types::PartyId;
use flips_ml::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;

/// A streamed view of the registered-party roster: everything selector
/// construction needs, fetched per party instead of materialized by the
/// caller.
///
/// Implementations are expected to be cheap per call and to tolerate
/// repeated visits (a spill-backed store pages segments in and out —
/// see `flips_fl::RosterStore`, the canonical implementation).
pub trait CandidateSource {
    /// Registered parties; ids are dense in `0..num_parties()`.
    fn num_parties(&self) -> usize;

    /// Party `party`'s local sample count (Oort's public metadata and
    /// the FedAvg weight).
    fn data_size(&self, party: PartyId) -> u64;

    /// Profiled training latency for `party`, seconds (TiFL's tiering
    /// input and Oort's preferred-duration calibration).
    fn latency_hint(&self, party: PartyId) -> f64;

    /// Streams each party's raw per-label datapoint counts, in party-id
    /// order. The slice is only valid for the duration of the callback —
    /// a spill-backed source reuses its segment buffer.
    fn visit_label_distributions(&self, visit: &mut dyn FnMut(PartyId, &[u64]));
}

/// Dense in-memory [`CandidateSource`] — the adapter for callers that
/// already hold flat vectors (tests, small simulations).
#[derive(Debug, Clone, Default)]
pub struct VecSource {
    /// Per-party sample counts.
    pub data_sizes: Vec<u64>,
    /// Per-party latency hints, seconds.
    pub latencies: Vec<f64>,
    /// Per-party label counts (may be empty when no policy needs them).
    pub label_counts: Vec<Vec<u64>>,
}

impl CandidateSource for VecSource {
    fn num_parties(&self) -> usize {
        self.data_sizes.len()
    }

    fn data_size(&self, party: PartyId) -> u64 {
        self.data_sizes[party]
    }

    fn latency_hint(&self, party: PartyId) -> f64 {
        self.latencies[party]
    }

    fn visit_label_distributions(&self, visit: &mut dyn FnMut(PartyId, &[u64])) {
        for (p, counts) in self.label_counts.iter().enumerate() {
            visit(p, counts);
        }
    }
}

/// Streaming top-`k` by `(score descending, id ascending)` — the total
/// order Oort's exploit ranking uses. Pushing all `n` candidates and
/// draining yields *exactly* the first `k` elements a full
/// sort-then-truncate would, in the same order, in O(k) memory and
/// O(n log k) time.
///
/// Scores are compared with `partial_cmp(..).unwrap_or(Equal)`,
/// mirroring the dense comparator it replaces, so NaN behaves the same
/// in both paths (ties broken by ascending id either way).
#[derive(Debug)]
pub struct BoundedTopK {
    k: usize,
    /// Max-heap ordered worst-first: the root is the weakest candidate
    /// currently kept, so a stronger push evicts it in O(log k).
    heap: std::collections::BinaryHeap<WorstFirst>,
}

/// Heap entry ordered so the *worst* candidate (lowest score, then
/// highest id) is `Greater` — i.e. at the root of a max-heap.
#[derive(Debug)]
struct WorstFirst {
    score: f64,
    id: PartyId,
}

impl WorstFirst {
    /// "Better-first" total order: score descending, id ascending —
    /// byte-for-byte the comparator in Oort's dense ranking.
    fn better_first(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.better_first(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `better_first` already ranks a worse entry `Greater`, which is
        // exactly what puts it at the root of the max-heap.
        self.better_first(other)
    }
}

impl BoundedTopK {
    /// A collector that keeps the best `k` candidates seen.
    pub fn new(k: usize) -> Self {
        BoundedTopK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers one candidate.
    pub fn push(&mut self, score: f64, id: PartyId) {
        if self.k == 0 {
            return;
        }
        self.heap.push(WorstFirst { score, id });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Candidates currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains to ids in best-first order — identical to
    /// `sort_by(better_first); truncate(k)` over every pushed candidate.
    pub fn into_sorted_ids(self) -> Vec<PartyId> {
        let mut kept = self.heap.into_vec();
        kept.sort_by(|a, b| a.better_first(b));
        kept.into_iter().map(|e| e.id).collect()
    }
}

/// Seeded reservoir sampler (Algorithm R): a uniform `k`-subset of a
/// stream of unknown length in O(k) memory. Used to *cap* the FLIPS
/// clustering pool when the roster exceeds what private clustering can
/// hold — a documented approximation, never silently applied below the
/// cap (the caller collects exactly when `n <= k`).
#[derive(Debug)]
pub struct Reservoir<T> {
    k: usize,
    seen: u64,
    kept: Vec<T>,
    rng: StdRng,
}

impl<T> Reservoir<T> {
    /// A reservoir of capacity `k` with its own derived RNG stream.
    pub fn new(k: usize, seed: u64) -> Self {
        Reservoir { k, seen: 0, kept: Vec::with_capacity(k.min(1024)), rng: seeded(seed) }
    }

    /// Offers one item from the stream.
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        if self.kept.len() < self.k {
            self.kept.push(item);
            return;
        }
        let j = self.rng.random_range(0..self.seen);
        if (j as usize) < self.k {
            self.kept[j as usize] = item;
        }
    }

    /// Items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled subset, in retention order.
    pub fn into_kept(self) -> Vec<T> {
        self.kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_rank(mut scored: Vec<(f64, PartyId)>, k: usize) -> Vec<PartyId> {
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        scored.into_iter().take(k).map(|(_, p)| p).collect()
    }

    #[test]
    fn topk_matches_full_sort() {
        let mut rng = seeded(17);
        for trial in 0..50 {
            let n = 1 + (trial % 40);
            let scored: Vec<(f64, PartyId)> = (0..n)
                .map(|p| {
                    // Coarse grid forces plenty of score ties.
                    ((rng.random::<u32>() % 8) as f64, p)
                })
                .collect();
            for k in [0, 1, n / 2, n, n + 3] {
                let mut topk = BoundedTopK::new(k);
                for &(s, p) in &scored {
                    topk.push(s, p);
                }
                assert_eq!(
                    topk.into_sorted_ids(),
                    dense_rank(scored.clone(), k),
                    "trial {trial}, k {k}"
                );
            }
        }
    }

    #[test]
    fn topk_keeps_at_most_k() {
        let mut topk = BoundedTopK::new(3);
        for p in 0..100 {
            topk.push(p as f64, p);
        }
        assert_eq!(topk.len(), 3);
        assert_eq!(topk.into_sorted_ids(), vec![99, 98, 97]);
    }

    #[test]
    fn reservoir_is_exhaustive_under_capacity() {
        let mut r = Reservoir::new(10, 3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.into_kept(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_is_uniform_enough() {
        // Each of 20 items should land in a k=5 reservoir ~25% of the
        // time across seeds.
        let mut hits = [0u32; 20];
        for seed in 0..2000 {
            let mut r = Reservoir::new(5, seed);
            for i in 0..20usize {
                r.push(i);
            }
            for i in r.into_kept() {
                hits[i] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((350..=650).contains(&h), "item {i} kept {h}/2000 times");
        }
    }

    #[test]
    fn reservoir_is_seeded() {
        let run = |seed| {
            let mut r = Reservoir::new(4, seed);
            for i in 0..100 {
                r.push(i);
            }
            r.into_kept()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn vec_source_round_trips() {
        let src = VecSource {
            data_sizes: vec![10, 20],
            latencies: vec![0.5, 1.5],
            label_counts: vec![vec![1, 0], vec![0, 3]],
        };
        assert_eq!(src.num_parties(), 2);
        assert_eq!(src.data_size(1), 20);
        assert_eq!(src.latency_hint(0), 0.5);
        let mut seen = Vec::new();
        src.visit_label_distributions(&mut |p, c| seen.push((p, c.to_vec())));
        assert_eq!(seen, vec![(0, vec![1, 0]), (1, vec![0, 3])]);
    }
}
