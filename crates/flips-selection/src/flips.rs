//! The FLIPS selector — Algorithm 1 of the paper.
//!
//! Given clusters of parties with similar label distributions (produced
//! inside the TEE — see `flips-core`), each round is filled by visiting
//! clusters **round-robin in order of how often each cluster has been
//! picked**, and within a cluster picking the **least-picked party**, so
//! that:
//!
//! 1. every unique label distribution is represented as equally as
//!    possible in every round (data diversity), and
//! 2. every party inside a cluster gets a fair opportunity to participate
//!    (participant fairness).
//!
//! Straggler handling (lines 27–31, 33–45): parties that fail to return an
//! update are remembered in `H_s` with their clusters in `H_sc`; while any
//! straggler is outstanding, the next round overprovisions
//! `int(strg · Nr)` extra parties drawn from the clusters with the most
//! stragglers, choosing non-straggler members, so the straggling clusters'
//! label distributions stay represented.
//!
//! ## Fidelity note
//!
//! Line 45 of Algorithm 1 updates the straggler-rate estimate as
//! `strg = (strg·Nr + count_strg)/Nr`, which is monotone non-decreasing
//! (it can only grow as rounds accumulate stragglers). We implement the
//! same blend but normalize the contribution of the current round —
//! an exponentially-weighted average `strg ← (1−β)·strg + β·rate(r)` with
//! `β = 0.2` — so the estimate can also recover when stragglers disappear;
//! with persistent stragglers both formulas converge to the true rate.

use crate::types::{validate_request, ParticipantSelector, PartyId, RoundFeedback, SelectionError};
use std::collections::HashSet;

/// Smoothing weight of the straggler-rate EWMA (see the fidelity note).
const STRAGGLER_EWMA_BETA: f64 = 0.2;

/// The FLIPS participant selector (paper Algorithm 1, aggregator side).
#[derive(Debug, Clone)]
pub struct FlipsSelector {
    /// Cluster id → member parties.
    clusters: Vec<Vec<PartyId>>,
    /// Party → cluster id.
    party_cluster: Vec<usize>,
    /// `p.picks` — how often each party has been selected.
    party_picks: Vec<u64>,
    /// `c.picks` — how often each cluster has been visited.
    cluster_picks: Vec<u64>,
    /// `H_s` — parties currently known to be straggling.
    straggler_parties: HashSet<PartyId>,
    /// `H_sc` — outstanding straggler count per cluster (the max-heap).
    straggler_cluster_counts: Vec<usize>,
    /// `strg` — smoothed straggler-rate estimate.
    straggler_rate: f64,
    /// `Stragglers` flag — any straggler outstanding.
    stragglers_active: bool,
    /// Whether overprovisioning is enabled (disable for the ablation).
    overprovision: bool,
    num_parties: usize,
}

impl FlipsSelector {
    /// Creates a selector from a cluster assignment.
    ///
    /// `clusters[c]` lists the parties of cluster `c`; every party
    /// `0..num_parties` must appear in exactly one cluster.
    ///
    /// # Errors
    ///
    /// Returns [`SelectionError::InvalidConfiguration`] if the clusters do
    /// not partition `0..num_parties` or any cluster is empty.
    pub fn new(clusters: Vec<Vec<PartyId>>) -> Result<Self, SelectionError> {
        if clusters.is_empty() {
            return Err(SelectionError::InvalidConfiguration("no clusters".into()));
        }
        if clusters.iter().any(Vec::is_empty) {
            return Err(SelectionError::InvalidConfiguration("empty cluster".into()));
        }
        let num_parties: usize = clusters.iter().map(Vec::len).sum();
        let mut party_cluster = vec![usize::MAX; num_parties];
        for (c, members) in clusters.iter().enumerate() {
            for &p in members {
                if p >= num_parties {
                    return Err(SelectionError::InvalidConfiguration(format!(
                        "party {p} out of range for {num_parties} parties"
                    )));
                }
                if party_cluster[p] != usize::MAX {
                    return Err(SelectionError::InvalidConfiguration(format!(
                        "party {p} appears in multiple clusters"
                    )));
                }
                party_cluster[p] = c;
            }
        }
        let num_clusters = clusters.len();
        Ok(FlipsSelector {
            clusters,
            party_cluster,
            party_picks: vec![0; num_parties],
            cluster_picks: vec![0; num_clusters],
            straggler_parties: HashSet::new(),
            straggler_cluster_counts: vec![0; num_clusters],
            straggler_rate: 0.0,
            stragglers_active: false,
            overprovision: true,
            num_parties,
        })
    }

    /// Disables straggler overprovisioning (ablation switch).
    #[must_use]
    pub fn without_overprovisioning(mut self) -> Self {
        self.overprovision = false;
        self
    }

    /// The clusters driving this selector.
    pub fn clusters(&self) -> &[Vec<PartyId>] {
        &self.clusters
    }

    /// The current smoothed straggler-rate estimate (`strg`).
    pub fn straggler_rate(&self) -> f64 {
        self.straggler_rate
    }

    /// How often each party has been selected so far.
    pub fn party_pick_counts(&self) -> &[u64] {
        &self.party_picks
    }

    /// EXTRACT-MIN over the cluster heap: the least-picked cluster that
    /// still has a selectable member (ties → lowest id, matching a stable
    /// binary heap seeded in id order).
    fn next_cluster(&self, chosen: &HashSet<PartyId>, exclude: &HashSet<PartyId>) -> Option<usize> {
        self.cluster_picks
            .iter()
            .enumerate()
            .filter(|&(c, _)| {
                self.clusters[c].iter().any(|p| !chosen.contains(p) && !exclude.contains(p))
            })
            .min_by_key(|&(c, &picks)| (picks, c))
            .map(|(c, _)| c)
    }

    /// EXTRACT-MIN over a cluster's party heap: the least-picked member
    /// not yet chosen and not excluded.
    fn next_party(
        &self,
        cluster: usize,
        chosen: &HashSet<PartyId>,
        exclude: &HashSet<PartyId>,
    ) -> Option<PartyId> {
        self.clusters[cluster]
            .iter()
            .copied()
            .filter(|p| !chosen.contains(p) && !exclude.contains(p))
            .min_by_key(|&p| (self.party_picks[p], p))
    }

    fn commit_pick(&mut self, party: PartyId) {
        self.party_picks[party] += 1;
        self.cluster_picks[self.party_cluster[party]] += 1;
    }
}

impl ParticipantSelector for FlipsSelector {
    fn name(&self) -> &'static str {
        "flips"
    }

    fn select(&mut self, _round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        validate_request(target, self.num_parties)?;
        let mut selected = Vec::with_capacity(target);
        let mut chosen: HashSet<PartyId> = HashSet::with_capacity(target * 2);
        let no_exclusion = HashSet::new();

        // Lines 22–26: fill the round cluster-by-cluster, fairest first.
        while selected.len() < target {
            let cluster = self
                .next_cluster(&chosen, &no_exclusion)
                .expect("target <= num_parties guarantees a selectable party");
            let party = self
                .next_party(cluster, &chosen, &no_exclusion)
                .expect("next_cluster only returns clusters with candidates");
            self.commit_pick(party);
            chosen.insert(party);
            selected.push(party);
        }

        // Lines 27–31: overprovision from the clusters with the most
        // outstanding stragglers, skipping straggler parties themselves.
        if self.overprovision && self.stragglers_active {
            let extra = (self.straggler_rate * target as f64) as usize;
            let mut counts = self.straggler_cluster_counts.clone();
            for _ in 0..extra {
                // EXTRACT-MAX over H_sc.
                let Some((cluster, _)) = counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .max_by_key(|&(c, &n)| (n, std::cmp::Reverse(c)))
                else {
                    break;
                };
                counts[cluster] -= 1;
                // Line 30: pick a non-straggler member of the straggling
                // cluster. If it has no eligible member left, this slot is
                // skipped — representation cannot be restored from
                // elsewhere without changing the label mix.
                let Some(party) = self.next_party(cluster, &chosen, &self.straggler_parties) else {
                    continue;
                };
                self.commit_pick(party);
                chosen.insert(party);
                selected.push(party);
            }
        }

        Ok(selected)
    }

    fn report(&mut self, feedback: &RoundFeedback) {
        // Lines 33–42: update H_s / H_sc from arrivals and absences.
        for &p in &feedback.stragglers {
            if self.straggler_parties.insert(p) {
                self.straggler_cluster_counts[self.party_cluster[p]] += 1;
            }
        }
        for &p in &feedback.completed {
            if self.straggler_parties.remove(&p) {
                let c = self.party_cluster[p];
                self.straggler_cluster_counts[c] =
                    self.straggler_cluster_counts[c].saturating_sub(1);
            }
        }
        self.stragglers_active = !self.straggler_parties.is_empty();

        // Line 45 (stabilized — see module docs): update strg.
        if !feedback.selected.is_empty() {
            let rate = feedback.stragglers.len() as f64 / feedback.selected.len() as f64;
            // First observation adopts the observed rate directly (as the
            // paper's formula does from strg = 0); later rounds blend.
            self.straggler_rate = if self.straggler_rate == 0.0 {
                rate
            } else {
                (1.0 - STRAGGLER_EWMA_BETA) * self.straggler_rate + STRAGGLER_EWMA_BETA * rate
            };
        }
    }

    fn num_parties(&self) -> usize {
        self.num_parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 clusters × 5 parties: cluster c owns parties 5c..5c+5.
    fn four_clusters() -> FlipsSelector {
        let clusters: Vec<Vec<PartyId>> = (0..4).map(|c| (c * 5..(c + 1) * 5).collect()).collect();
        FlipsSelector::new(clusters).unwrap()
    }

    fn cluster_of(p: PartyId) -> usize {
        p / 5
    }

    #[test]
    fn round_spreads_across_all_clusters() {
        let mut s = four_clusters();
        // Nr = 8 = 2 per cluster.
        let picks = s.select(0, 8).unwrap();
        let mut per_cluster = [0usize; 4];
        for &p in &picks {
            per_cluster[cluster_of(p)] += 1;
        }
        assert_eq!(per_cluster, [2, 2, 2, 2], "equitable representation");
    }

    #[test]
    fn fewer_parties_than_clusters_rotates_clusters() {
        let mut s = four_clusters();
        // Nr = 2 < 4 clusters: rounds must rotate through clusters via the
        // cluster pick counts.
        let mut cluster_visits = [0usize; 4];
        for round in 0..6 {
            for p in s.select(round, 2).unwrap() {
                cluster_visits[cluster_of(p)] += 1;
            }
        }
        assert_eq!(cluster_visits, [3, 3, 3, 3], "cluster-level fairness");
    }

    #[test]
    fn parties_within_cluster_get_equal_opportunity() {
        let mut s = four_clusters();
        // 5 rounds × 4 picks = one visit per party.
        let mut seen = HashSet::new();
        for round in 0..5 {
            for p in s.select(round, 4).unwrap() {
                assert!(seen.insert(p), "party {p} repeated before full rotation");
            }
        }
        assert_eq!(seen.len(), 20);
        assert!(s.party_pick_counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn no_duplicates_within_a_round() {
        let mut s = four_clusters();
        let picks = s.select(0, 17).unwrap();
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), picks.len());
    }

    #[test]
    fn selection_is_deterministic() {
        let mut a = four_clusters();
        let mut b = four_clusters();
        for round in 0..10 {
            assert_eq!(a.select(round, 7).unwrap(), b.select(round, 7).unwrap());
        }
    }

    #[test]
    fn overprovisions_from_straggler_clusters() {
        let mut s = four_clusters();
        let picks = s.select(0, 8).unwrap();
        // Parties of cluster 0 straggle.
        let stragglers: Vec<PartyId> =
            picks.iter().copied().filter(|&p| cluster_of(p) == 0).collect();
        let completed: Vec<PartyId> =
            picks.iter().copied().filter(|&p| cluster_of(p) != 0).collect();
        let fb = RoundFeedback {
            round: 0,
            selected: picks.clone(),
            completed,
            stragglers: stragglers.clone(),
            ..Default::default()
        };
        s.report(&fb);
        assert!(s.straggler_rate() > 0.0);

        let next = s.select(1, 8).unwrap();
        assert!(next.len() > 8, "must overprovision while stragglers outstanding");
        // The extras must come from cluster 0 (the straggler cluster) and
        // must not be the stragglers themselves.
        let extras = &next[8..];
        for &p in extras {
            assert_eq!(cluster_of(p), 0, "extra {p} not from straggler cluster");
            assert!(!stragglers.contains(&p), "extra {p} is itself a straggler");
        }
    }

    #[test]
    fn straggler_recovery_clears_overprovisioning() {
        let mut s = four_clusters();
        let picks = s.select(0, 8).unwrap();
        let fb = RoundFeedback {
            round: 0,
            selected: picks.clone(),
            completed: picks[1..].to_vec(),
            stragglers: vec![picks[0]],
            ..Default::default()
        };
        s.report(&fb);
        // The straggler comes back in the next round.
        let fb2 = RoundFeedback {
            round: 1,
            selected: vec![picks[0]],
            completed: vec![picks[0]],
            stragglers: vec![],
            ..Default::default()
        };
        s.report(&fb2);
        assert!(!s.stragglers_active);
        let next = s.select(2, 8).unwrap();
        assert_eq!(next.len(), 8, "no overprovisioning once H_s is empty");
    }

    #[test]
    fn straggler_rate_recovers_when_stragglers_stop() {
        let mut s = four_clusters();
        for round in 0..5 {
            let picks = s.select(round, 10).unwrap();
            let (str_, comp): (Vec<_>, Vec<_>) = picks.iter().partition(|&&p| p % 2 == 0);
            s.report(&RoundFeedback {
                round,
                selected: picks.clone(),
                completed: comp,
                stragglers: str_,
                ..Default::default()
            });
        }
        let high = s.straggler_rate();
        assert!(high > 0.2);
        for round in 5..30 {
            let picks = s.select(round, 10).unwrap();
            s.report(&RoundFeedback {
                round,
                selected: picks.clone(),
                completed: picks,
                stragglers: vec![],
                ..Default::default()
            });
        }
        assert!(s.straggler_rate() < 0.01, "rate must decay: {}", s.straggler_rate());
    }

    #[test]
    fn rejects_bad_cluster_configurations() {
        assert!(FlipsSelector::new(vec![]).is_err());
        assert!(FlipsSelector::new(vec![vec![0], vec![]]).is_err());
        assert!(FlipsSelector::new(vec![vec![0, 1], vec![1]]).is_err(), "duplicate party");
        assert!(FlipsSelector::new(vec![vec![0, 7]]).is_err(), "party out of range");
    }

    #[test]
    fn rejects_invalid_targets() {
        let mut s = four_clusters();
        assert!(s.select(0, 0).is_err());
        assert!(s.select(0, 21).is_err());
    }

    #[test]
    fn ablation_switch_disables_overprovisioning() {
        let mut s = four_clusters().without_overprovisioning();
        let picks = s.select(0, 8).unwrap();
        s.report(&RoundFeedback {
            round: 0,
            selected: picks.clone(),
            completed: vec![],
            stragglers: picks,
            ..Default::default()
        });
        assert_eq!(s.select(1, 8).unwrap().len(), 8);
    }

    #[test]
    fn skewed_cluster_sizes_still_get_cluster_fairness() {
        // One big cluster (10 parties), two tiny ones (1 each).
        let s = FlipsSelector::new(vec![(0..10).collect(), vec![10], vec![11]]);
        let mut s = s.unwrap();
        let mut tiny_picks = 0usize;
        for round in 0..4 {
            let picks = s.select(round, 3).unwrap();
            tiny_picks += picks.iter().filter(|&&p| p >= 10).count();
        }
        // Clusters are visited equally: 4 rounds × 3 = 12 visits, 4 per
        // cluster ⇒ parties 10 and 11 each picked 4 times.
        assert_eq!(tiny_picks, 8, "tiny clusters must be visited every round");
    }
}
