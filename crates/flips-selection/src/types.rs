//! Shared types of the selection layer.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A party's identifier: its index in the job's party roster.
pub type PartyId = usize;

/// Errors produced by selection policies.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionError {
    /// The requested round size cannot be satisfied (more parties than
    /// exist, zero parties, ...).
    InvalidRequest(String),
    /// The selector was constructed with inconsistent inputs.
    InvalidConfiguration(String),
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::InvalidRequest(m) => write!(f, "invalid selection request: {m}"),
            SelectionError::InvalidConfiguration(m) => {
                write!(f, "invalid selector configuration: {m}")
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// What the aggregator observed in one completed round — the feedback
/// adaptive selectors learn from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundFeedback {
    /// The round this feedback describes (0-based).
    pub round: usize,
    /// Parties that were dispatched the global model.
    pub selected: Vec<PartyId>,
    /// Parties whose updates arrived within the round deadline.
    pub completed: Vec<PartyId>,
    /// Parties that straggled (selected but no update in time).
    pub stragglers: Vec<PartyId>,
    /// Mean local training loss per completed party (Oort's statistical
    /// utility signal).
    pub train_loss: HashMap<PartyId, f64>,
    /// Simulated wall-clock training duration per completed party, seconds
    /// (Oort's system utility and TiFL's tiering signal).
    pub duration: HashMap<PartyId, f64>,
    /// Low-dimensional sketch of each completed party's model update
    /// (GradClus's clustering signal).
    pub update_sketch: HashMap<PartyId, Vec<f32>>,
    /// Global-model balanced accuracy after this round's aggregation
    /// (TiFL's adaptive-tier signal).
    pub global_accuracy: f64,
}

impl RoundFeedback {
    /// Starts the feedback record a coordinator builds at round close:
    /// the cohort outcome plus the post-aggregation accuracy, with the
    /// per-party signal maps (loss, duration, sketches) left for the
    /// caller to fill from the round's accepted updates.
    pub fn for_round(
        round: usize,
        selected: Vec<PartyId>,
        completed: Vec<PartyId>,
        stragglers: Vec<PartyId>,
        global_accuracy: f64,
    ) -> Self {
        RoundFeedback {
            round,
            selected,
            completed,
            stragglers,
            global_accuracy,
            ..Default::default()
        }
    }
}

/// A participant-selection policy.
///
/// The FL runtime calls [`select`](Self::select) at the start of each
/// round and [`report`](Self::report) once the round resolves. Selectors
/// are deterministic given their construction seed and the feedback
/// sequence.
pub trait ParticipantSelector: Send {
    /// Short policy name (`"flips"`, `"oort"`, ...), used in reports.
    fn name(&self) -> &'static str;

    /// Chooses the parties for `round`. `target` is the paper's `Nr`.
    ///
    /// Implementations may return *more* than `target` parties when they
    /// overprovision against stragglers (FLIPS Algorithm 1 lines 27–31;
    /// Oort's 1.3× rule), and must never return duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`SelectionError::InvalidRequest`] when `target` is zero or
    /// exceeds the population.
    fn select(&mut self, round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError>;

    /// Delivers the outcome of a completed round.
    fn report(&mut self, feedback: &RoundFeedback);

    /// Total number of parties this selector draws from.
    fn num_parties(&self) -> usize;

    /// Notifies the policy of a roster change: `party` joined
    /// (`available == true`) or left the population. The default is a
    /// no-op — policies that keep no per-party exclusion state simply
    /// keep drawing from the full roster, and the coordinator filters
    /// departed parties from every pick, so churn stays correct (and
    /// deterministic) regardless of whether a policy listens.
    fn set_available(&mut self, _party: PartyId, _available: bool) {}
}

/// Validates a `select` request against the population size.
pub(crate) fn validate_request(target: usize, num_parties: usize) -> Result<(), SelectionError> {
    if target == 0 {
        return Err(SelectionError::InvalidRequest("target of zero parties".into()));
    }
    if target > num_parties {
        return Err(SelectionError::InvalidRequest(format!(
            "target {target} exceeds population {num_parties}"
        )));
    }
    Ok(())
}

/// Which selection policy to instantiate — the unit the benchmark harness
/// sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Uniform random selection.
    Random,
    /// FLIPS label-distribution cluster selection (Algorithm 1).
    Flips,
    /// Oort guided selection.
    Oort,
    /// Gradient-clustering selection.
    GradClus,
    /// Tier-based selection.
    Tifl,
}

impl SelectorKind {
    /// All policies, in the paper's comparison order.
    pub fn all() -> [SelectorKind; 5] {
        [
            SelectorKind::Random,
            SelectorKind::Flips,
            SelectorKind::Oort,
            SelectorKind::GradClus,
            SelectorKind::Tifl,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::Flips => "flips",
            SelectorKind::Oort => "oort",
            SelectorKind::GradClus => "grad_cls",
            SelectorKind::Tifl => "tifl",
        }
    }
}

impl std::fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_request_bounds() {
        assert!(validate_request(1, 10).is_ok());
        assert!(validate_request(10, 10).is_ok());
        assert!(validate_request(0, 10).is_err());
        assert!(validate_request(11, 10).is_err());
    }

    #[test]
    fn selector_kind_labels_match_paper() {
        assert_eq!(SelectorKind::GradClus.label(), "grad_cls");
        assert_eq!(SelectorKind::all().len(), 5);
        assert_eq!(SelectorKind::Flips.to_string(), "flips");
    }

    #[test]
    fn for_round_carries_cohort_and_leaves_signals_empty() {
        let fb = RoundFeedback::for_round(3, vec![0, 1, 2], vec![0, 2], vec![1], 0.5);
        assert_eq!(fb.round, 3);
        assert_eq!(fb.selected, vec![0, 1, 2]);
        assert_eq!(fb.completed, vec![0, 2]);
        assert_eq!(fb.stragglers, vec![1]);
        assert_eq!(fb.global_accuracy, 0.5);
        assert!(fb.train_loss.is_empty() && fb.duration.is_empty() && fb.update_sketch.is_empty());
    }

    #[test]
    fn feedback_default_is_empty() {
        let fb = RoundFeedback::default();
        assert!(fb.selected.is_empty());
        assert!(fb.train_loss.is_empty());
        assert_eq!(fb.global_accuracy, 0.0);
    }
}
