//! The Oort baseline — guided participant selection (Lai et al.,
//! OSDI'21; paper §4.1).
//!
//! Oort scores each party by the product of:
//!
//! - **statistical utility** — `|B_i| · √(Σ_{b∈B_i} loss(b)² / |B_i|)`:
//!   parties whose data currently incurs high loss contribute more to
//!   convergence. With per-party mean loss `ℓ_i` reported by the runtime
//!   this evaluates to `n_i · ℓ_i` (the within-party loss spread is not
//!   observable from aggregate feedback — the standard approximation);
//! - **system utility** — `(T / t_i)^α` for parties slower than the
//!   developer-preferred round duration `T` (α = 2), 1 otherwise;
//! - an **exploration bonus** `√(0.1 · ln r / Δr_i)` rewarding parties not
//!   selected recently (Δr_i = rounds since last selection).
//!
//! Each round, `(1 − ε)` of the budget exploits the top-utility parties
//! (utilities clipped at the 95th percentile) and `ε` explores parties
//! never selected before; `ε` decays from 0.9 by ×0.98 per round with a
//! 0.2 floor. Under straggler regimes Oort overprovisions 1.3× (paper
//! §5.3). Stragglers have their utility halved, mirroring Oort's
//! de-prioritization of unreliable clients.

use crate::types::{validate_request, ParticipantSelector, PartyId, RoundFeedback, SelectionError};
use flips_ml::rng::{sample_without_replacement, seeded};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Tunables of the Oort policy (defaults follow the OSDI'21 artifact).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OortConfig {
    /// Initial exploration fraction ε.
    pub epsilon_init: f64,
    /// Multiplicative ε decay per round.
    pub epsilon_decay: f64,
    /// ε floor.
    pub epsilon_min: f64,
    /// System-utility penalty exponent α.
    pub alpha: f64,
    /// Developer-preferred round duration `T` (seconds).
    pub preferred_duration: f64,
    /// Utility clipping quantile.
    pub clip_quantile: f64,
    /// Round-size multiplier (1.3 under stragglers, per the paper).
    pub overprovision: f64,
    /// Utility penalty factor applied to stragglers.
    pub straggler_penalty: f64,
}

impl Default for OortConfig {
    fn default() -> Self {
        OortConfig {
            epsilon_init: 0.9,
            epsilon_decay: 0.98,
            epsilon_min: 0.2,
            alpha: 2.0,
            preferred_duration: 1.0,
            clip_quantile: 0.95,
            overprovision: 1.0,
            straggler_penalty: 0.5,
        }
    }
}

impl OortConfig {
    /// The configuration the paper runs under straggler regimes:
    /// "OORT selects 1.3x the parties in FL at each round to overprovision
    /// for straggler parties" (§5.3).
    pub fn with_straggler_overprovisioning() -> Self {
        OortConfig { overprovision: 1.3, ..Default::default() }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PartyStats {
    /// Latest statistical utility (n_i · ℓ_i), straggler-penalized.
    utility: f64,
    /// Latest observed duration (seconds).
    duration: Option<f64>,
    /// Last round this party was *reported* on.
    last_round: Option<usize>,
    /// Whether the party has ever been selected.
    explored: bool,
}

/// The Oort participant selector.
#[derive(Debug)]
pub struct OortSelector {
    config: OortConfig,
    data_sizes: Vec<usize>,
    stats: Vec<PartyStats>,
    epsilon: f64,
    rng: StdRng,
}

impl OortSelector {
    /// Creates a selector; `data_sizes[i]` is party `i`'s sample count
    /// (public metadata in Oort).
    pub fn new(data_sizes: Vec<usize>, config: OortConfig, seed: u64) -> Self {
        let n = data_sizes.len();
        OortSelector {
            epsilon: config.epsilon_init,
            config,
            data_sizes,
            stats: vec![PartyStats::default(); n],
            rng: seeded(seed),
        }
    }

    /// Creates a selector over a streamed roster, pulling each party's
    /// sample count from the source — bit-identical to
    /// [`OortSelector::new`] fed the same counts. Oort's online state
    /// stays dense (≈48 B/party: the score inputs must survive between
    /// rounds), but no caller-side roster vector is materialized.
    pub fn from_source(
        source: &dyn crate::streaming::CandidateSource,
        config: OortConfig,
        seed: u64,
    ) -> Self {
        let data_sizes = (0..source.num_parties()).map(|p| source.data_size(p) as usize).collect();
        OortSelector::new(data_sizes, config, seed)
    }

    /// Current exploration fraction ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn system_utility(&self, party: PartyId) -> f64 {
        match self.stats[party].duration {
            Some(t) if t > self.config.preferred_duration => {
                (self.config.preferred_duration / t).powf(self.config.alpha)
            }
            _ => 1.0,
        }
    }

    /// Exploitation score of an explored party at `round`.
    fn score(&self, party: PartyId, round: usize, clip: f64) -> f64 {
        let s = &self.stats[party];
        let stat = s.utility.min(clip);
        let staleness = match s.last_round {
            Some(last) => {
                let gap = (round.saturating_sub(last)).max(1) as f64;
                (0.1 * ((round + 2) as f64).ln() * gap).sqrt()
            }
            None => 0.0,
        };
        (stat + staleness) * self.system_utility(party)
    }

    /// The clipping threshold: `clip_quantile` of current utilities.
    fn clip_threshold(&self) -> f64 {
        let mut utils: Vec<f64> =
            self.stats.iter().filter(|s| s.last_round.is_some()).map(|s| s.utility).collect();
        if utils.is_empty() {
            return f64::INFINITY;
        }
        utils.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((utils.len() as f64 - 1.0) * self.config.clip_quantile).round() as usize;
        utils[idx]
    }
}

impl ParticipantSelector for OortSelector {
    fn name(&self) -> &'static str {
        "oort"
    }

    fn select(&mut self, round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        let n = self.data_sizes.len();
        validate_request(target, n)?;
        let total =
            (((target as f64) * self.config.overprovision).ceil() as usize).clamp(target, n);

        let explored: Vec<PartyId> = (0..n).filter(|&p| self.stats[p].explored).collect();
        let unexplored: Vec<PartyId> = (0..n).filter(|&p| !self.stats[p].explored).collect();

        let explore_want = ((self.epsilon * total as f64).round() as usize).min(unexplored.len());
        let exploit_want = total - explore_want;

        let mut selected: Vec<PartyId> = Vec::with_capacity(total);
        let mut chosen: HashSet<PartyId> = HashSet::with_capacity(total);

        // Exploit: top-scoring explored parties via a bounded streaming
        // pass — same (score desc, id asc) total order as a full sort,
        // O(exploit_want) memory instead of an O(n) ranked vector.
        let clip = self.clip_threshold();
        let mut ranked = crate::streaming::BoundedTopK::new(exploit_want);
        for &p in &explored {
            ranked.push(self.score(p, round, clip), p);
        }
        for p in ranked.into_sorted_ids() {
            if chosen.insert(p) {
                selected.push(p);
            }
        }

        // Explore: uniform over never-selected parties.
        if explore_want > 0 {
            let picks = sample_without_replacement(&mut self.rng, unexplored.len(), explore_want);
            for i in picks {
                let p = unexplored[i];
                if chosen.insert(p) {
                    selected.push(p);
                }
            }
        }

        // Top up from any remaining parties (exploit pool smaller than
        // requested early in the job).
        if selected.len() < total {
            let mut rest: Vec<PartyId> = (0..n).filter(|p| !chosen.contains(p)).collect();
            // Shuffle for unbiased top-up.
            flips_ml::rng::shuffle(&mut self.rng, &mut rest);
            for p in rest {
                if selected.len() >= total {
                    break;
                }
                chosen.insert(p);
                selected.push(p);
            }
        }

        for &p in &selected {
            self.stats[p].explored = true;
        }
        self.epsilon = (self.epsilon * self.config.epsilon_decay).max(self.config.epsilon_min);
        Ok(selected)
    }

    fn report(&mut self, feedback: &RoundFeedback) {
        for &p in &feedback.completed {
            let s = &mut self.stats[p];
            if let Some(&loss) = feedback.train_loss.get(&p) {
                s.utility = self.data_sizes[p] as f64 * loss.max(0.0);
            }
            if let Some(&d) = feedback.duration.get(&p) {
                s.duration = Some(d);
            }
            s.last_round = Some(feedback.round);
        }
        for &p in &feedback.stragglers {
            let s = &mut self.stats[p];
            s.utility *= self.config.straggler_penalty;
            s.last_round = Some(feedback.round);
            // A straggler observably exceeded the deadline.
            let slow = self.config.preferred_duration * 2.0;
            s.duration = Some(s.duration.map_or(slow, |d| d.max(slow)));
        }
    }

    fn num_parties(&self) -> usize {
        self.data_sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn selector(n: usize) -> OortSelector {
        OortSelector::new(vec![100; n], OortConfig::default(), 42)
    }

    fn feedback(
        round: usize,
        completed: &[PartyId],
        losses: &[(PartyId, f64)],
        stragglers: &[PartyId],
    ) -> RoundFeedback {
        RoundFeedback {
            round,
            selected: completed.iter().chain(stragglers).copied().collect(),
            completed: completed.to_vec(),
            stragglers: stragglers.to_vec(),
            train_loss: losses.iter().copied().collect::<HashMap<_, _>>(),
            ..Default::default()
        }
    }

    #[test]
    fn selects_requested_count_without_duplicates() {
        let mut s = selector(40);
        let picks = s.select(0, 10).unwrap();
        assert_eq!(picks.len(), 10);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut s = selector(40);
        for round in 0..200 {
            let _ = s.select(round, 5).unwrap();
        }
        assert!((s.epsilon() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn high_loss_parties_are_prioritized() {
        let mut s = selector(20);
        // Make every party explored with known losses: party 7 has a much
        // higher loss than everyone else.
        let all: Vec<PartyId> = (0..20).collect();
        let losses: Vec<(PartyId, f64)> =
            (0..20).map(|p| (p, if p == 7 { 5.0 } else { 0.1 + 0.01 * p as f64 })).collect();
        s.report(&feedback(0, &all, &losses, &[]));
        for st in &mut s.stats {
            st.explored = true;
        }
        // With ε at its floor after many decays, exploitation dominates.
        s.epsilon = 0.0;
        let mut count7 = 0;
        for round in 1..20 {
            let picks = s.select(round, 4).unwrap();
            if picks.contains(&7) {
                count7 += 1;
            }
            s.report(&feedback(round, &picks, &[(7, 5.0)], &[]));
        }
        assert!(count7 >= 15, "high-loss party picked only {count7}/19 rounds");
    }

    #[test]
    fn slow_parties_are_deprioritized() {
        let mut s = selector(10);
        let all: Vec<PartyId> = (0..10).collect();
        let losses: Vec<(PartyId, f64)> = (0..10).map(|p| (p, 1.0)).collect();
        let mut fb = feedback(0, &all, &losses, &[]);
        // Party 3 is 10x slower than the preferred duration.
        for p in 0..10 {
            fb.duration.insert(p, if p == 3 { 10.0 } else { 0.5 });
        }
        s.report(&fb);
        s.epsilon = 0.0;
        let picks = s.select(1, 5).unwrap();
        assert!(!picks.contains(&3), "slow party must rank below equal-loss fast parties");
    }

    #[test]
    fn stragglers_lose_utility() {
        let mut s = selector(10);
        let all: Vec<PartyId> = (0..10).collect();
        let losses: Vec<(PartyId, f64)> = (0..10).map(|p| (p, 1.0)).collect();
        s.report(&feedback(0, &all, &losses, &[]));
        let before = s.stats[4].utility;
        s.report(&feedback(1, &[], &[], &[4]));
        assert!(s.stats[4].utility < before);
        assert!(s.stats[4].duration.unwrap() >= 2.0);
    }

    #[test]
    fn overprovisioning_selects_extra() {
        let mut s =
            OortSelector::new(vec![100; 40], OortConfig::with_straggler_overprovisioning(), 1);
        let picks = s.select(0, 10).unwrap();
        assert_eq!(picks.len(), 13, "1.3x overprovisioning");
    }

    #[test]
    fn overprovisioning_is_capped_at_population() {
        let mut s = OortSelector::new(
            vec![10; 10],
            OortConfig { overprovision: 5.0, ..Default::default() },
            1,
        );
        let picks = s.select(0, 9).unwrap();
        assert_eq!(picks.len(), 10);
    }

    #[test]
    fn exploration_prefers_unexplored_parties() {
        let mut s = selector(30);
        let first = s.select(0, 10).unwrap();
        let second = s.select(1, 10).unwrap();
        // With ε ≈ 0.9 the second round must still be mostly new parties.
        let repeats = second.iter().filter(|p| first.contains(p)).count();
        assert!(repeats <= 3, "second round repeated {repeats} parties at high ε");
    }

    #[test]
    fn clipping_caps_outlier_utilities() {
        let mut s = selector(20);
        let all: Vec<PartyId> = (0..20).collect();
        let mut losses: Vec<(PartyId, f64)> = (0..20).map(|p| (p, 1.0)).collect();
        losses[0].1 = 1e9; // absurd outlier
        s.report(&feedback(0, &all, &losses, &[]));
        let clip = s.clip_threshold();
        assert!(clip < 1e9 * 100.0, "clip threshold must exclude the outlier");
        let score0 = s.score(0, 1, clip);
        let score1 = s.score(1, 1, clip);
        assert!(score0 / score1 < 10.0, "outlier dominance must be bounded");
    }

    #[test]
    fn rejects_invalid_targets() {
        let mut s = selector(5);
        assert!(s.select(0, 0).is_err());
        assert!(s.select(0, 6).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = OortSelector::new(vec![50; 25], OortConfig::default(), 9);
        let mut b = OortSelector::new(vec![50; 25], OortConfig::default(), 9);
        for round in 0..5 {
            assert_eq!(a.select(round, 8).unwrap(), b.select(round, 8).unwrap());
        }
    }
}
