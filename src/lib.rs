//! # FLIPS — Federated Learning using Intelligent Participant Selection
//!
//! This is the facade crate of the FLIPS reproduction workspace. It
//! re-exports the public API of [`flips_core`], which in turn ties together
//! the substrates:
//!
//! - [`flips_core::ml`] — the neural-network training stack,
//! - [`flips_core::data`] — synthetic datasets and non-IID partitioning,
//! - [`flips_core::clustering`] — K-Means++, Davies-Bouldin, hierarchical,
//! - [`flips_core::tee`] — the simulated trusted execution environment,
//! - [`flips_core::selection`] — FLIPS and baseline participant selectors,
//! - [`flips_core::fl`] — the federated-learning aggregator runtime.
//!
//! ## Quickstart
//!
//! ```
//! use flips::prelude::*;
//!
//! let report = SimulationBuilder::new(DatasetProfile::femnist())
//!     .parties(16)
//!     .rounds(8)
//!     .participation(0.25)
//!     .alpha(0.3)
//!     .algorithm(FlAlgorithm::fedyogi())
//!     .selector(SelectorKind::Flips)
//!     .clustering_restarts(3)
//!     .test_per_class(10)
//!     .seed(7)
//!     .run()
//!     .expect("simulation runs");
//! assert_eq!(report.history.len(), 8);
//! ```
pub use flips_core::*;
