//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with parking_lot's panic-free `lock()`
//! signature (poisoning is ignored: a panicked holder does not wedge the
//! lock, matching parking_lot semantics closely enough for this
//! workspace's simulation state).

use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_mutates_state() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
