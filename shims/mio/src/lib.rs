//! Offline stand-in for `mio`.
//!
//! Implements the subset the `flips-net` event loop uses: a [`Poll`] /
//! [`Registry`] pair over Linux `epoll`, [`Token`]-keyed registration of
//! anything [`AsRawFd`], [`Interest`] flags, and an [`Events`] buffer.
//! Unlike upstream mio this shim is **level-triggered** (no `EPOLLET`):
//! every consumer in this workspace drains its sockets to `WouldBlock`
//! on each readiness callback, and level triggering removes the whole
//! missed-edge class of bugs for no throughput cost at this scale.
//!
//! On non-Linux targets the shim degrades to a portable stub that
//! reports every registered token as ready after a short sleep — a
//! correct (if busy) schedule for the readiness loops built on it, so
//! the workspace still builds and tests off-Linux.

use std::io;
use std::os::unix::io::AsRawFd;
use std::time::Duration;

/// An opaque registration key, echoed back on every readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event: which token, and what it is ready for.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the ready source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is ready for reading (includes hangup/error —
    /// a read will surface the condition instead of blocking).
    pub fn is_readable(&self) -> bool {
        self.readable || self.closed
    }

    /// Whether the source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Whether the peer hung up or the source errored.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// A reusable buffer of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    events: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Self {
        Events { events: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// The events the last poll produced.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Whether the last poll produced no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events the last poll produced.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::unix::io::RawFd;

    // Raw epoll bindings. The std runtime already links libc, so
    // declaring the symbols is enough — no crates.io `libc` needed in
    // this offline workspace.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Shared registration surface of a [`Poll`] (Linux: an epoll fd).
    #[derive(Debug)]
    pub struct Registry {
        epfd: RawFd,
    }

    impl Registry {
        fn epoll_mask(interest: Interest) -> u32 {
            let mut mask = EPOLLRDHUP;
            if interest.is_readable() {
                mask |= EPOLLIN;
            }
            if interest.is_writable() {
                mask |= EPOLLOUT;
            }
            mask
        }

        fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: Token) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask, data: token.0 as u64 };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `source` for `interest`, keyed by `token`.
        pub fn register(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Self::epoll_mask(interest), token)
        }

        /// Replaces an existing registration's interest (and token).
        pub fn reregister(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Self::epoll_mask(interest), token)
        }

        /// Removes a registration.
        pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, Token(0))
        }
    }

    /// The readiness selector: wraps one epoll instance.
    #[derive(Debug)]
    pub struct Poll {
        registry: Registry,
    }

    impl Poll {
        /// A fresh selector.
        ///
        /// # Errors
        ///
        /// Surfaces `epoll_create1` failure (fd exhaustion).
        pub fn new() -> io::Result<Poll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poll { registry: Registry { epfd } })
        }

        /// The registration surface.
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Blocks until at least one registered source is ready or the
        /// timeout elapses (`None` = wait indefinitely), filling
        /// `events`. Spurious empty wake-ups are surfaced as an empty
        /// buffer, like upstream mio.
        ///
        /// # Errors
        ///
        /// Surfaces `epoll_wait` failure (other than `EINTR`, which
        /// reads as an empty poll).
        pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut raw = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
            let n = unsafe {
                epoll_wait(self.registry.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &raw[..n as usize] {
                let mask = ev.events;
                events.events.push(Event {
                    token: Token(ev.data as usize),
                    readable: mask & EPOLLIN != 0,
                    writable: mask & EPOLLOUT != 0,
                    closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poll {
        fn drop(&mut self) {
            unsafe { close(self.registry.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::*;
    use std::sync::Mutex;

    /// Portable stub registry: remembers registrations.
    #[derive(Debug)]
    pub struct Registry {
        registered: Mutex<Vec<(i32, Token, Interest)>>,
    }

    impl Registry {
        /// Registers `source` for `interest`, keyed by `token`.
        pub fn register(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.lock().unwrap().push((source.as_raw_fd(), token, interest));
            Ok(())
        }

        /// Replaces an existing registration's interest (and token).
        pub fn reregister(
            &self,
            source: &impl AsRawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let fd = source.as_raw_fd();
            let mut reg = self.registered.lock().unwrap();
            reg.retain(|(f, _, _)| *f != fd);
            reg.push((fd, token, interest));
            Ok(())
        }

        /// Removes a registration.
        pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
            let fd = source.as_raw_fd();
            self.registered.lock().unwrap().retain(|(f, _, _)| *f != fd);
            Ok(())
        }
    }

    /// Portable stub selector: reports every registration ready after a
    /// short sleep (a correct, if busy, readiness schedule).
    #[derive(Debug)]
    pub struct Poll {
        registry: Registry,
    }

    impl Poll {
        /// A fresh selector.
        pub fn new() -> io::Result<Poll> {
            Ok(Poll { registry: Registry { registered: Mutex::new(Vec::new()) } })
        }

        /// The registration surface.
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// Reports every registered source ready after a short sleep.
        pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.events.clear();
            let nap = timeout.unwrap_or(Duration::from_millis(10)).min(Duration::from_millis(10));
            std::thread::sleep(nap);
            for (_, token, interest) in self.registry.registered.lock().unwrap().iter() {
                events.events.push(Event {
                    token: *token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    closed: false,
                });
                if events.events.len() >= events.capacity {
                    break;
                }
            }
            Ok(())
        }
    }
}

pub use sys::{Poll, Registry};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn tcp_pair() -> Option<(TcpStream, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0").ok()?;
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        Some((client, server))
    }

    #[test]
    fn read_readiness_fires_when_bytes_arrive() {
        let Some((mut client, server)) = tcp_pair() else { return };
        let mut poll = Poll::new().unwrap();
        poll.registry().register(&server, Token(7), Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing written yet: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "spurious readiness on an idle socket");

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token() == Token(7)).expect("readiness event");
        assert!(ev.is_readable());
    }

    #[test]
    fn write_interest_reports_writable_and_reregister_narrows_it() {
        let Some((client, _server)) = tcp_pair() else { return };
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&client, Token(3), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token() == Token(3)).expect("event");
        assert!(ev.is_writable(), "an idle socket has send-buffer space");

        // Narrow to read interest: writability must stop reporting.
        poll.registry().reregister(&client, Token(3), Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(
            events.iter().all(|e| !e.is_writable()),
            "writable event after write interest was dropped"
        );
    }

    #[test]
    fn deregistered_sources_stop_reporting() {
        let Some((mut client, mut server)) = tcp_pair() else { return };
        let mut poll = Poll::new().unwrap();
        poll.registry().register(&server, Token(1), Interest::READABLE).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(!events.is_empty());
        let mut buf = [0u8; 8];
        let _ = server.read(&mut buf);

        poll.registry().deregister(&server).unwrap();
        client.write_all(b"y").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(1)), "deregistered socket still reported");
    }

    #[test]
    fn peer_hangup_reads_as_readable_and_closed() {
        let Some((client, server)) = tcp_pair() else { return };
        let mut poll = Poll::new().unwrap();
        poll.registry().register(&server, Token(9), Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1000))).unwrap();
        let ev = events.iter().find(|e| e.token() == Token(9)).expect("hangup event");
        assert!(ev.is_readable(), "hangup must wake a reader so it can observe EOF");
        assert!(ev.is_closed());
    }

    #[test]
    fn interest_flags_combine() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
