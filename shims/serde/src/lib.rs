//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names this workspace imports
//! — as marker traits in the type namespace and as no-op derives in the
//! macro namespace (the same dual-name arrangement real serde uses). No
//! serialization machinery exists: every codec in the workspace is
//! hand-rolled (see `flips-fl::message`), and the derives only mark types
//! as wire-ready for a future format crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no methods in the offline stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no methods in the offline stand-in).
pub trait Deserialize<'de>: Sized {}
