//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatible annotation — no serde data format ships in the
//! build environment, and every wire codec is hand-rolled on `bytes`.
//! The derives therefore expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
