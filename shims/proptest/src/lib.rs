//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `prop_map` / `prop_flat_map`, `collection::vec`,
//! the `proptest!` test macro with `#![proptest_config]`, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG (seeded from the test path), so failures reproduce
//! exactly; there is no shrinking — the failing case's inputs are
//! reported as generated.

pub mod test_runner {
    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case generator (xoshiro256**, seeded from the
    /// test path and case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for one `(test, case)` pair.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut z = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut w = z;
                w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                w ^ (w >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform `u64` in `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of arbitrary values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain range of a 64-bit type.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// `usize` range.
    pub trait IntoLenRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy { element, min_len, max_len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min_len == self.max_len {
                self.min_len
            } else {
                self.min_len + rng.below((self.max_len - self.min_len + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-suite configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0f32..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&($lhs), &($rhs));
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&($lhs), &($rhs));
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&($lhs), &($rhs));
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds (counts as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (1usize..=8, -2.0f32..2.0).prop_map(|(n, x)| (n, x));
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("t", 4));
        assert_ne!(a, c);
    }

    #[test]
    fn vec_respects_length_bounds() {
        let s = crate::collection::vec(0u64..10, 3..6);
        let mut rng = TestRng::for_case("lens", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0usize..10, v in crate::collection::vec(1u32..5, 2..4)) {
            prop_assume!(x != 100);
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(v.len().min(3), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
