//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal subset of the `rand` 0.9 API surface it actually
//! uses: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`], uniform
//! `random::<T>()` for the primitive types the codebase samples, and
//! `random_range` over integer ranges.
//!
//! The generator is xoshiro256** (Blackman & Vigna, public domain),
//! seeded through the SplitMix64 expander — the exact construction the
//! reference xoshiro implementation recommends. It is deterministic,
//! `Clone`, and statistically strong enough for the moment/uniformity
//! assertions in this workspace's test suite. Note the stream differs
//! from upstream `StdRng` (ChaCha12); all seeds in this repository were
//! chosen against *this* generator.

/// A source of randomness over 64-bit words plus typed sampling helpers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a primitive type from its standard uniform
    /// distribution (`[0, 1)` for floats, full range for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one standard-uniform sample.
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self;
}

impl StandardUniform for u64 {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u128 {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        ((g.next_u64() as u128) << 64) | g.next_u64() as u128
    }
}

impl StandardUniform for f64 {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<G: Rng + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`; `hi > lo` guaranteed by callers.
    fn sample_below<G: Rng + ?Sized>(g: &mut G, lo: Self, hi: Self) -> Self;
    /// The successor, saturating at the type maximum (for `..=` ranges).
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_below<G: Rng + ?Sized>(g: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); the rejection loop
                // terminates with overwhelming probability per iteration.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = g.next_u64();
                    if x < zone || zone == 0 {
                        let hi128 = ((x as u128 * span as u128) >> 64) as u64;
                        return lo.wrapping_add(hi128 as $t);
                    }
                }
            }
            fn saturating_succ(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T: UniformInt> {
    /// Samples one value from the range.
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_below(g, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: Rng + ?Sized>(self, g: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_below(g, lo, hi.saturating_succ())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut w = z;
                w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                w ^ (w >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(StdRng::seed_from_u64(1).next_u64(), StdRng::seed_from_u64(2).next_u64());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_hit_every_bucket_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.random_range(5..=9usize);
            assert!((5..=9).contains(&v));
        }
    }
}
