//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation — with a simple but honest measurement loop:
//! a warm-up, then `sample_size` samples of an auto-calibrated batch of
//! iterations, reporting the median per-iteration time (and derived
//! throughput). Set `FLIPS_BENCH_FAST=1` to shrink sampling for smoke
//! runs.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored by the stand-in's timer —
/// setup is always excluded from measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`name`, optionally `/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/bench`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: default_sample_size(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(id.to_string(), default_sample_size(), None, f);
        self.results.push(result);
        self
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the summary table (called by `criterion_main!`).
    pub fn final_summary(&self) {
        if !self.results.is_empty() {
            eprintln!("-- {} benchmarks measured --", self.results.len());
        }
    }
}

fn default_sample_size() -> usize {
    if std::env::var_os("FLIPS_BENCH_FAST").is_some() {
        10
    } else {
        30
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let result = run_bench(full, self.sample_size, self.throughput, f);
        self.parent.results.push(result);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    // Warm-up & calibration: time one iteration, then size batches so a
    // sample lasts ≥ ~2 ms (or a single iteration if it is slower).
    let mut probe = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut probe);
    let once = probe.elapsed.max(Duration::from_nanos(1));
    let per_sample = Duration::from_millis(2);
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median_ns = samples_ns[samples_ns.len() / 2];

    let mut line = format!("bench: {id:<56} median {:>12} ns/iter", format_ns(median_ns));
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let gib = bytes as f64 / median_ns * 1e9 / (1u64 << 30) as f64;
        line.push_str(&format!("  ({gib:.2} GiB/s)"));
    }
    eprintln!("{line}");
    BenchResult { id, median_ns, throughput }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records_medians() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("nop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 3);
        assert!(c.results().iter().all(|r| r.median_ns >= 0.0));
        assert_eq!(c.results()[1].id, "g/sum/8");
    }
}
