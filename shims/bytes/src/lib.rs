//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codecs use: [`Bytes`] as a
//! cheaply-cloneable, consumable view over shared storage, [`BytesMut`]
//! as a growable write buffer, and the little-endian cursor methods of
//! [`Buf`] / [`BufMut`].

use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes, returning them as a slice-backed copy.
    fn copy_take(&mut self, n: usize) -> Vec<u8>;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_take(1)[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_take(4).try_into().expect("4 bytes"))
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_take(8).try_into().expect("8 bytes"))
    }

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.copy_take(4).try_into().expect("4 bytes"))
    }

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_take(8).try_into().expect("8 bytes"))
    }
}

/// Write-side cursor operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, cheaply-cloneable byte buffer with cursor semantics.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copied — the stand-in keeps one storage kind).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the unconsumed view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the unconsumed view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The unconsumed view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of the unconsumed range (shares storage).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off the first `n` unconsumed bytes as a shared view,
    /// advancing this cursor past them — a zero-copy alternative to
    /// [`Buf::copy_take`] for length-prefixed payload sections.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "buffer underflow: need {n}, have {}", self.len());
        let out = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + n };
        self.start += n;
        out
    }

    /// Copies the unconsumed view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Bytes {
    /// Consumes `N` bytes as a fixed-size array without allocating —
    /// the scalar `get_*` cursor methods ride on this, which matters:
    /// decoding a model message reads ~10⁵ scalars, and the trait's
    /// `copy_take` default would heap-allocate for every one.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "buffer underflow: need {N}, have {}", self.len());
        let out: [u8; N] =
            self.data[self.start..self.start + N].try_into().expect("length checked");
        self.start += N;
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_take(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow: need {n}, have {}", self.len());
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// A growable write buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes the buffer can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves room for at least `additional` more bytes — encoders
    /// reserve a message's full size ahead so the `put_*` stream below
    /// never reallocates mid-message (grow-only, capacity is kept).
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Clears the contents, keeping capacity — the reuse point for a
    /// caller-owned encode scratch buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// The scalar `put_*` writes are overridden with fixed-size-array
/// appends (the write-side twin of [`Bytes`]' `take_array` reads):
/// encoding a model message writes ~10⁵ scalars, and with the message's
/// size reserved ahead each append is a bounds check plus a word store —
/// no reallocation, no per-scalar temporary.
impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_le_primitives() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds_checks() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "slicing must not consume the parent");
    }

    #[test]
    fn split_to_shares_storage_and_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        assert_eq!(b.get_u8(), 3, "cursor continues after the split");
    }

    #[test]
    fn writes_within_reserved_capacity_never_reallocate() {
        // The reserve-ahead contract: after reserving a message's size,
        // the whole put_* stream lands in place — same backing pointer,
        // same capacity, no mid-encode reallocation.
        let total = 1 + 4 + 8 + 4 + 8 + 7;
        let mut w = BytesMut::new();
        w.reserve(total);
        let cap = w.capacity();
        assert!(cap >= total);
        w.put_u8(1);
        let ptr = w.as_slice().as_ptr();
        w.put_u32_le(2);
        w.put_u64_le(3);
        w.put_f32_le(4.0);
        w.put_f64_le(5.0);
        w.put_slice(&[6; 7]);
        assert_eq!(w.len(), total);
        assert_eq!(w.capacity(), cap, "capacity grew despite reserve-ahead");
        assert_eq!(w.as_slice().as_ptr(), ptr, "buffer moved despite sufficient capacity");
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(&[1; 48]);
        let cap = w.capacity();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), cap, "clear must be grow-only");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
